"""Shared machinery for the per-figure benchmark targets.

Each ``bench_*.py`` module reproduces one table or figure of the paper
under ``pytest-benchmark`` timing, asserts the paper's qualitative shape
checks, and writes the rendered rows/series to ``benchmarks/output/`` so
the reproduced artefacts can be inspected and diffed after a run.

Grid resolution and workload length are tunable through environment
variables (defaults keep the full suite in the minutes range)::

    REPRO_BENCH_POINTS=33 REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import inspect
import os
from pathlib import Path

from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult

#: Heap-grid points per sweep (the paper used 33).
POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "7"))
#: Workload length multiplier.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

OUTPUT_DIR = Path(__file__).parent / "output"


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment at the configured resolution and persist it."""
    fn = ALL_EXPERIMENTS[name]
    kwargs = {}
    signature = inspect.signature(fn)
    if "points" in signature.parameters:
        kwargs["points"] = POINTS
    if "scale" in signature.parameters:
        kwargs["scale"] = SCALE
    result = fn(**kwargs)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    checks = "\n".join(
        f"  [{'PASS' if ok else 'FAIL'}] {check}" for check, ok in result.checks.items()
    )
    path.write_text(f"{result.text}\n\nShape checks:\n{checks}\n")
    return result


def assert_shape(result: ExperimentResult) -> None:
    assert result.all_checks_pass, (
        f"{result.name}: failed shape checks {result.failed_checks()}\n{result.text}"
    )
