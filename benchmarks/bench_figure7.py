"""Benchmark target reproducing the paper's Figure 7.

Incrementality in Beltway: X.X.100 is robust to increment size except for very small increments (10), which degrade.
"""

from _util import assert_shape, run_experiment


def test_figure7(benchmark):
    """Regenerate Figure 7 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure7",), rounds=1, iterations=1)
    assert_shape(result)
