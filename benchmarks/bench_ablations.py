"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three mechanisms §3.3 credits for making Beltway efficient are switched
off one at a time and measured on the jess workload:

* **dynamic conservative copy reserve** (§3.3.4) → replaced by the classic
  fixed half-heap reserve: the minimum heap grows (utilisation ablation);
* **collect-together optimisation** (§3.3.2) → disabled: the same heap
  sizes still work (escalation is the correctness path) but tight heaps
  do strictly more copying work;
* **nursery trigger** (§3.3.3) → a multi-increment nursery instead of a
  single bounded increment: still correct, different GC cadence.
"""

import dataclasses

from _util import OUTPUT_DIR, SCALE

from repro.core.config import BeltwayConfig
from repro.harness.runner import RunOptions, run

BENCHMARK = "jess"


def _variants():
    base = BeltwayConfig.parse("25.25.100")
    no_reserve = dataclasses.replace(
        base, name="25.25.100-halfreserve", fixed_half_reserve=True
    )
    no_combine = dataclasses.replace(
        base, name="25.25.100-nocombine", enable_combine=False
    )
    multi_nursery = dataclasses.replace(
        base,
        name="25.25.100-multinursery",
        belts=(
            dataclasses.replace(base.belts[0], max_increments=None),
        ) + base.belts[1:],
    )
    return [base, no_reserve, no_combine, multi_nursery]


def _measure():
    rows = []
    baseline_min = None
    for config in _variants():
        minimum = _min_heap_for(config)
        if baseline_min is None:
            baseline_min = minimum
        # measure every variant at the same heap (1.5x the baseline's min)
        stats = _run(config, int(1.5 * baseline_min))
        rows.append((config.name, minimum, stats))
    return rows, baseline_min


def _min_heap_for(config) -> int:
    """find_min_heap for a BeltwayConfig object (not just a name)."""
    from repro.harness.runner import FRAME_BYTES
    from repro.bench.spec import benchmark_spec

    spec = benchmark_spec(BENCHMARK, SCALE)
    lo = max(4 * FRAME_BYTES, spec.total_alloc_bytes // 64)
    lo = (lo // FRAME_BYTES) * FRAME_BYTES

    def completes(heap_bytes):
        return _run(config, heap_bytes).completed

    hi = lo
    while not completes(hi):
        hi *= 2
        if hi > 4 * 1024 * 1024:
            raise AssertionError("no heap size works")
    if hi == lo:
        while lo > 2 * FRAME_BYTES and completes(lo - FRAME_BYTES):
            lo -= FRAME_BYTES
        return lo
    lo = hi // 2
    while hi - lo > FRAME_BYTES:
        mid = ((lo + hi) // 2 // FRAME_BYTES) * FRAME_BYTES
        if mid in (lo, hi):
            break
        if completes(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _run(config, heap_bytes):
    return run(
        BENCHMARK, config, heap_bytes, options=RunOptions(scale=SCALE)
    ).stats


def test_ablations(benchmark):
    rows, baseline_min = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    lines = [f"Ablations on {BENCHMARK} (min heap; GCs measured at 1.5x the baseline minimum)"]
    by_name = {}
    for name, minimum, stats in rows:
        by_name[name] = (minimum, stats)
        lines.append(
            f"  {name:28s} min={minimum / 1024:6.1f}KB  "
            f"GCs={stats.collections:4d}  gc_cycles={stats.gc_cycles:12.0f}"
        )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablations.txt").write_text("\n".join(lines) + "\n")

    base_min, base_stats = by_name["25.25.100"]
    half_min, half_stats = by_name["25.25.100-halfreserve"]
    # The dynamic reserve buys heap *utilisation*: with the classic fixed
    # half-heap reserve, usable memory shrinks, collections come more
    # often, and GC work rises substantially at the same heap size.
    assert half_stats.collections > base_stats.collections
    assert half_stats.gc_cycles > 1.2 * base_stats.gc_cycles
    # Every ablated variant still completes (they are optimisations, not
    # correctness mechanisms).
    for name, (minimum, stats) in by_name.items():
        assert stats.completed, name
