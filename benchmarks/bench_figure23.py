"""Benchmark target reproducing the paper's Figures 2 and 3.

Structural traces of the belt/increment organisation of BSS, Appel, BOFM, BOF, Beltway X.X and Beltway X.X.100 over successive collections.
"""

from _util import assert_shape, run_experiment


def test_figure23(benchmark):
    """Regenerate Figures 2 and 3 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure23",), rounds=1, iterations=1)
    assert_shape(result)
