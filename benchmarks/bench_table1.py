"""Benchmark target reproducing the paper's Table 1.

Benchmark characteristics under the Appel baseline: minimum heap size, total allocation, and collection counts at the minimum and at 3x the minimum heap.
"""

from _util import assert_shape, run_experiment


def test_table1(benchmark):
    """Regenerate Table 1 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("table1",), rounds=1, iterations=1)
    assert_shape(result)
