"""Benchmark target reproducing the paper's Figure 11.

Responsiveness: minimum mutator utilisation curves for javac at two heap sizes; small-increment configurations give shorter pauses and better MMU than Appel, and pauses grow with the heap (increments scale with usable memory).
"""

from _util import assert_shape, run_experiment


def test_figure11(benchmark):
    """Regenerate Figure 11 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure11",), rounds=1, iterations=1)
    assert_shape(result)
