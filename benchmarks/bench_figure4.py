"""Benchmark target reproducing the paper's Figure 4.

Write-barrier path statistics: the frame-based unidirectional barrier executes on every pointer store but takes its slow path (a remset insert) rarely; the gctk boundary barrier is shown alongside.
"""

from _util import assert_shape, run_experiment


def test_figure4(benchmark):
    """Regenerate Figure 4 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure4",), rounds=1, iterations=1)
    assert_shape(result)
