"""Benchmark target reproducing the paper's Figure 9.

The headline result: Beltway 25.25.100 beats both the Appel-style and fixed-size-nursery generational collectors at small-to-moderate heap sizes and stays competitive at large ones.
"""

from _util import assert_shape, run_experiment


def test_figure9(benchmark):
    """Regenerate Figure 9 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure9",), rounds=1, iterations=1)
    assert_shape(result)
