"""Benchmark target for the MOS (train algorithm) extension.

The paper leaves this to future work (§3.2, §5): replace the X.X.100
third belt with Mature Object Space rules to obtain completeness
*without* full-heap collections.  Two measurements:

1. **Cyclic-garbage stress** (the pathology behind the javac anecdote):
   cross-increment cycles are built, aged and dropped under memory
   pressure.  25.25 retains them forever (or dies); 25.25.MOS keeps
   running — and does so without a single full-heap collection, which is
   where it improves on 25.25.100.
2. **javac**: the full synthetic workload, comparing worst-case pauses —
   MOS's are bounded by one car plus the lower belts, below the
   full-heap pauses 25.25.100 pays for its completeness.
"""

from _util import OUTPUT_DIR, SCALE

from repro.errors import OutOfMemory
from repro.harness.experiments import min_heap
from repro.harness.runner import RunOptions, run
from repro.runtime import VM, MutatorContext

CONFIGS = ("25.25", "25.25.100", "25.25.MOS")
STRESS_HEAP = 18 * 1024


def _cycle_stress(config):
    """Cross-increment cycles under pressure; returns (completed, floor)."""
    vm = VM(heap_bytes=STRESS_HEAP, collector=config)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    pending = None
    window = []
    try:
        for generation in range(120):
            ring = [mu.alloc(node) for _ in range(4)]
            for i, h in enumerate(ring):
                mu.write(h, 0, ring[(i + 1) % 4])
            if pending is not None:
                mu.write(ring[0], 1, pending)
                mu.write(pending, 1, ring[0])
                pending.drop()
                pending = None
            else:
                pending = mu.copy_handle(ring[0])
            for h in ring:
                h.drop()
            for i in range(300):  # pressure with survivors
                junk = mu.alloc(node)
                if i % 6 == 0:
                    window.append(junk)
                    if len(window) > 40:
                        window.pop(0).drop()
                else:
                    junk.drop()
    except OutOfMemory:
        return vm.finish(completed=False, failure="OOM")
    return vm.finish()


def _measure():
    stress = {config: _cycle_stress(config) for config in CONFIGS}
    minimum = min_heap("javac", SCALE)
    javac = {
        config: run(
            "javac", config, int(1.5 * minimum), options=RunOptions(scale=SCALE)
        ).stats
        for config in CONFIGS
    }
    return stress, javac


def test_mos_extension(benchmark):
    stress, javac = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [f"Cyclic-garbage stress ({STRESS_HEAP // 1024}KB heap):"]
    for config, stats in stress.items():
        status = "ok" if stats.completed else "FAIL"
        lines.append(
            f"  {config:10s} {status:5s} GCs={stats.collections:4d} "
            f"floor={stats.late_occupancy_floor():6d}B "
            f"full-heap GCs={stats.full_heap_collections}"
        )
    lines.append("javac @1.5x min heap:")
    for config, stats in javac.items():
        lines.append(
            f"  {config:10s} GCs={stats.collections:4d} "
            f"maxpause={stats.max_pause_cycles:10.0f} "
            f"total={stats.total_cycles:12.0f}"
        )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "mos_extension.txt").write_text("\n".join(lines) + "\n")

    # Completeness under cycle stress: MOS completes; the incomplete
    # configuration either dies or retains far more garbage.
    mos_stress = stress["25.25.MOS"]
    xx_stress = stress["25.25"]
    assert mos_stress.completed
    assert mos_stress.full_heap_collections == 0
    if xx_stress.completed:
        assert (
            xx_stress.late_occupancy_floor()
            > 1.3 * mos_stress.late_occupancy_floor()
        )
    # Incrementality on javac: bounded pauses, below 25.25.100's
    # full-heap collections.
    assert javac["25.25.MOS"].completed
    assert (
        javac["25.25.MOS"].max_pause_cycles
        < 0.95 * javac["25.25.100"].max_pause_cycles
    )
    assert javac["25.25.MOS"].full_heap_collections == 0
