"""Benchmark target for the responsiveness/throughput sweep (extension).

The paper's §4.3 shows Beltway "can be adjusted to provide better
responsiveness" but leaves the tuning strategy open.  This target sweeps
the X.X.100 increment size at a fixed heap and asserts the knob works:
maximum pause grows monotonically with the increment size, collection
counts shrink, and the smallest increments beat the Appel baseline's
worst pause.
"""

from _util import assert_shape, run_experiment


def test_responsiveness(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("responsiveness",), rounds=1, iterations=1
    )
    assert_shape(result)
