"""Benchmark target reproducing the paper's Figure 5.

Beltway as Appel: Beltway 100.100 performs the same as the independent Appel-style baseline, and a third generation alone (100.100.100) is not the source of X.X.100's improvement.
"""

from _util import assert_shape, run_experiment


def test_figure5(benchmark):
    """Regenerate Figure 5 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure5",), rounds=1, iterations=1)
    assert_shape(result)
