"""Benchmark target reproducing the paper's Figure 1.

The cost of GC under the Appel-style baseline: (a) the fraction of time spent collecting versus heap size; (b) total time relative to the per-benchmark best, showing that the largest heap is not always the fastest (pseudojbb pages).
"""

from _util import assert_shape, run_experiment


def test_figure1(benchmark):
    """Regenerate Figure 1 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure1",), rounds=1, iterations=1)
    assert_shape(result)
