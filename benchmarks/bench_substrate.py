#!/usr/bin/env python3
"""Substrate throughput benchmark: the perf trajectory of the hot paths.

Times the simulated-memory fast paths every experiment funnels through —
allocation, write-barrier stores, single-word loads/stores, the bulk copy
kernel — plus a small end-to-end sweep, and writes the numbers to
``BENCH_substrate.json`` at the repository root so later PRs have a
baseline to regress against.

Usage::

    PYTHONPATH=src python benchmarks/bench_substrate.py            # full run, writes baseline
    PYTHONPATH=src python benchmarks/bench_substrate.py --quick    # short timing windows
    PYTHONPATH=src python benchmarks/bench_substrate.py --quick \\
        --check BENCH_substrate.json                               # CI regression gate

With ``--check`` the run compares its throughput metrics against the given
baseline file and exits non-zero if any regresses by more than
``--threshold`` (default 30%); the baseline file is left untouched unless
``--output`` is passed explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.sweep import heap_multipliers, sweep  # noqa: E402
from repro.bench.engine import SyntheticMutator  # noqa: E402
from repro.bench.spec import benchmark_spec  # noqa: E402
from repro.core.remset import RememberedSets  # noqa: E402
from repro.harness.runner import RunOptions, run as run_cell  # noqa: E402
from repro.heap.objectmodel import ObjectModel, TypeRegistry  # noqa: E402
from repro.heap.space import AddressSpace  # noqa: E402
from repro.kernels import TIER_ENV, available, resolve  # noqa: E402
from repro.runtime.mutator import MutatorContext  # noqa: E402
from repro.runtime.vm import VM  # noqa: E402

#: Throughput of the seed (pre-rewrite, list-backed, word-at-a-time)
#: substrate, measured on the same container immediately before the typed
#: storage + bulk-kernel rewrite landed.  Kept here so the JSON artefact
#: always records how far the substrate has come since the seed.
PRE_CHANGE = {
    "copied_words_per_s": 2_195_206.0,
    "store_words_per_s": 4_107_859.0,
    "load_words_per_s": 4_486_097.0,
    "allocs_per_s": 267_543.0,
    "barrier_stores_per_s": 588_357.0,
}

#: Metrics gated by ``--check`` (end-to-end seconds are too noisy to gate).
#: Collection-critical fast paths (ISSUE 2) are gated alongside the seed
#: substrate metrics; ``check`` skips keys a baseline file predates.
GATED_METRICS = tuple(PRE_CHANGE) + (
    "remset_inserts_per_s",
    "remset_drain_slots_per_s",
    "beltway_traced_words_per_s",
    "gctk_traced_words_per_s",
    "grid_store_lookups_per_s",
    "grid_dispatch_jobs_per_s",
)


def _time_loop(fn, min_seconds: float):
    """Run ``fn`` in doubling batches until the batch exceeds the window."""
    fn()  # warm-up
    n = 1
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return n, elapsed
        n *= 2


def _best_of(fn, min_seconds: float) -> float:
    """Best (minimum) single-call wall time of ``fn`` over a window.

    The substrate-kernel metrics run at microsecond granularity where a
    shared runner's scheduling noise swamps a windowed average; the
    minimum is the standard robust estimator (same rationale as the
    best-of-rounds timing in :func:`bench_telemetry`).
    """
    fn()  # warm-up
    best = float("inf")
    deadline = time.perf_counter() + min_seconds
    while time.perf_counter() < deadline:
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def bench_copy_words(min_seconds: float) -> float:
    """Copied words/s of the bulk evacuation kernel (frame-sized bodies)."""
    space = AddressSpace(heap_frames=8, frame_shift=12)
    model = ObjectModel(space, TypeRegistry())
    src = space.acquire_frame("src")
    dst = space.acquire_frame("dst")
    a, b = space.frame_base(src), space.frame_base(dst)
    nwords = space.frame_words
    for i in range(nwords):
        space.store(a + i * 4, i)
    n, elapsed = _time_loop(lambda: model.copy_words(a, b, nwords), min_seconds)
    return n * nwords / elapsed


def bench_store_words(min_seconds: float) -> float:
    """Single-word store throughput (the barrier's memory half)."""
    space = AddressSpace(heap_frames=8, frame_shift=12)
    base = space.frame_base(space.acquire_frame("s"))
    nwords = space.frame_words

    def step():
        store = space.store
        for i in range(nwords):
            store(base + i * 4, i)

    n, elapsed = _time_loop(step, min_seconds)
    return n * nwords / elapsed


def bench_load_words(min_seconds: float) -> float:
    """Single-word load throughput (the scan loop's memory half)."""
    space = AddressSpace(heap_frames=8, frame_shift=12)
    base = space.frame_base(space.acquire_frame("s"))
    nwords = space.frame_words

    def step():
        load = space.load
        for i in range(nwords):
            load(base + i * 4)

    n, elapsed = _time_loop(step, min_seconds)
    return n * nwords / elapsed


def bench_alloc(min_seconds: float) -> float:
    """Allocations/s through a full VM (bump pointer + header + barrier),
    including the nursery collections the churn provokes."""

    def step():
        vm = VM(heap_bytes=64 * 1024, collector="25.25.100")
        node = vm.define_type("node", nrefs=2, nscalars=1)
        mu = MutatorContext(vm)
        for _ in range(2000):
            mu.alloc(node).drop()

    n, elapsed = _time_loop(step, min_seconds)
    return n * 2000 / elapsed


def bench_barrier(min_seconds: float, tier: str = None) -> float:
    """Barriered reference stores/s (the paper's Fig. 4 fast path).

    Re-pointed (ISSUE 6) at the batched mutator API: ``write_ref_batch``
    is the substrate-kernel tier's store path — counter-bit-identical to
    the scalar loop and vectorised on numpy/cffi tiers, falling back to
    the exact scalar sequence on the python tier.
    """
    batch = 4096
    vm = VM(heap_bytes=256 * 1024, collector="25.25.100", tier=tier)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    a = mu.alloc(node)
    b = mu.alloc(node)
    try:
        import numpy as np

        objs = np.full(batch, a.addr, dtype=np.int64)
        idxs = np.zeros(batch, dtype=np.int64)
        vals = np.full(batch, b.addr, dtype=np.int64)
    except ImportError:  # pragma: no cover - numpy is baked into the image
        objs = [a.addr] * batch
        idxs = [0] * batch
        vals = [b.addr] * batch

    best = _best_of(lambda: vm.write_ref_batch(objs, idxs, vals), min_seconds)
    return batch / best


def bench_remset_insert(min_seconds: float) -> float:
    """Remset inserts/s (the barrier slow path's SSB append)."""
    inserts_per_step = 1024

    def step():
        rs = RememberedSets()
        insert = rs.insert
        for src in range(32):
            base = src << 10
            for k in range(32):
                insert(src, (src + 1 + (k & 7)) & 31, base + (k << 2))

    n, elapsed = _time_loop(step, min_seconds)
    return n * inserts_per_step / elapsed


def bench_remset_drain(min_seconds: float) -> float:
    """Drained slots/s of ``slots_into`` over a populated table (the
    collection-time remset walk, exercising the target-frame index)."""
    rs = RememberedSets()
    for src in range(2, 66):
        for k in range(16):
            rs.insert(src, 1, (src << 10) + (k << 2))  # into the target
        rs.insert(src, src + 100, src << 10)  # noise pair, other target
    targets = {1}
    slots = sum(1 for _ in rs.slots_into(targets, set()))

    def step():
        for _ in rs.slots_into(targets, set()):
            pass

    n, elapsed = _time_loop(step, min_seconds)
    return n * slots / elapsed


def _bench_trace(collector: str, min_seconds: float, tier: str = None) -> float:
    """Words evacuated/s by forced collections over a linked object graph
    (the Cheney scan + copy loop — compiled on the cffi tier).

    2000 nodes (ISSUE 6: grown from the seed's 400) so the per-collection
    fixed costs — result bookkeeping, reclaim, the C view export — are
    amortised over enough copied words to measure the trace loop itself,
    and 4KB frames (the geometry the other substrate benches use) so the
    measurement is the scan/copy loop rather than per-frame grow
    bookkeeping — at the experiments' 64-word frames a 6-word object
    crosses a frame boundary every ~10 copies and refill accounting
    dominates every tier equally.  The python-tier number is nearly
    geometry-independent, so the speedup vs the pre-kernel baseline
    stays like-for-like.
    """
    vm = VM(heap_bytes=1024 * 1024, collector=collector, frame_shift=12,
            tier=tier)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    handles = [mu.alloc(node) for _ in range(2000)]
    for i, h in enumerate(handles):
        mu.write(h, 0, handles[i - 1])
    per_call = vm.collect().copied_words  # constant: every node survives

    best = _best_of(lambda: vm.collect(), min_seconds)
    return per_call / best


#: Hard ceiling on the telemetry-disabled overhead of the ``run()`` API
#: versus driving the engine directly — the "compiled out when disabled"
#: acceptance criterion.  Gated on the *deterministic* interpreter-call
#: ratio (see :func:`bench_telemetry`), which is exact and immune to the
#: ±5% wall-clock noise of shared CI runners.
TELEMETRY_DISABLED_MAX_OVERHEAD = 0.02


def _count_calls(fn) -> int:
    """Python + C calls executed by ``fn`` (``sys.setprofile`` hook).

    The workloads are fully seeded, so the count is deterministic — a
    noise-free proxy for "work done": any telemetry leaking into the
    disabled path (an event per store/alloc/collection) shows up as a
    percent-level jump where wall clock on a busy runner could not
    resolve it.  The cyclic GC is paused so finalizer timing cannot
    perturb the count.
    """
    import gc

    count = 0

    def hook(frame, event, arg):
        nonlocal count
        if event == "call" or event == "c_call":
            count += 1

    was_enabled = gc.isenabled()
    gc.disable()
    sys.setprofile(hook)
    try:
        fn()
    finally:
        sys.setprofile(None)
        if was_enabled:
            gc.enable()
    return count


def bench_telemetry(quick: bool) -> dict:
    """Telemetry overhead: bus disabled vs a subscribed JSONL sink.

    Three variants of the identical fixed-seed workload:

    * ``raw``  — VM + SyntheticMutator driven directly (pre-API shape);
    * ``run``  — through ``run()`` with no telemetry requested;
    * ``jsonl`` — through ``run()`` streaming every event to a JSONL sink.

    The *gated* disabled-mode number is the interpreter-call overhead
    (``run``/``raw`` call-count ratio, deterministic — see
    :func:`_count_calls`); wall-clock seconds and their ratios are also
    reported, but informationally: on shared runners single-run timing
    noise is ±5%, far above the 2% acceptance bound.
    """
    import io

    benchmark, heap, scale, seed = "jess", 48 * 1024, 0.2, 13
    rounds = 5 if quick else 9

    def run_raw():
        spec = benchmark_spec(benchmark, scale)
        vm = VM(heap, collector="25.25.100", locality=spec.locality,
                benchmark_name=spec.name)
        SyntheticMutator(vm, spec, seed=seed).run()

    def run_api():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed))

    def run_jsonl():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed,
                                    trace=io.StringIO()))

    variants = {"raw": run_raw, "run": run_api, "jsonl": run_jsonl}
    for fn in variants.values():
        fn()  # warm-up
    calls = {name: _count_calls(fn) for name, fn in variants.items()}
    best = {name: float("inf") for name in variants}
    for _ in range(rounds):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return {
        "telemetry_raw_seconds": best["raw"],
        "telemetry_run_api_seconds": best["run"],
        "telemetry_jsonl_seconds": best["jsonl"],
        "telemetry_raw_calls": calls["raw"],
        "telemetry_run_api_calls": calls["run"],
        "telemetry_jsonl_calls": calls["jsonl"],
        "telemetry_disabled_overhead_frac":
            calls["run"] / calls["raw"] - 1.0,
        "telemetry_jsonl_overhead_frac":
            calls["jsonl"] / calls["raw"] - 1.0,
        "telemetry_disabled_wall_frac": best["run"] / best["raw"] - 1.0,
        "telemetry_jsonl_wall_frac": best["jsonl"] / best["raw"] - 1.0,
    }


#: Hard ceiling on the sanitizer-disabled overhead of the ``run()`` API —
#: a VM that never attaches the sanitizer must execute structurally
#: untouched code (DESIGN §11).  Gated on the same deterministic
#: interpreter-call ratio as the telemetry gate.
SANITIZER_DISABLED_MAX_OVERHEAD = 0.02


def bench_sanitizer(quick: bool) -> dict:
    """Sanitizer overhead: unattached (gated) vs fully attached.

    Three variants of the identical fixed-seed workload:

    * ``raw`` — VM + SyntheticMutator driven directly;
    * ``off`` — through ``run()`` with the sanitizer available but not
      attached: the path the 2% gate protects (its entire footprint is
      one class-attribute ``is None`` test per mutator context plus two
      falsy option checks per run);
    * ``on``  — through ``run()`` with the shadow graph, differential
      checker and invariant suite attached.  Informational only: full
      checking costs what it costs (every mutator op is mirrored and
      every collection boundary walks the heap) and is reported so the
      trajectory is visible, not bounded.
    """
    benchmark, heap, scale, seed = "jess", 48 * 1024, 0.2, 13
    rounds = 3 if quick else 5

    def run_raw():
        spec = benchmark_spec(benchmark, scale)
        vm = VM(heap, collector="25.25.100", locality=spec.locality,
                benchmark_name=spec.name)
        SyntheticMutator(vm, spec, seed=seed).run()

    def run_off():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed))

    def run_on():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed, sanitize=True))

    variants = {"raw": run_raw, "off": run_off, "on": run_on}
    for fn in variants.values():
        fn()  # warm-up
    calls = {name: _count_calls(fn) for name, fn in variants.items()}
    best = {name: float("inf") for name in variants}
    for _ in range(rounds):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return {
        "sanitizer_raw_seconds": best["raw"],
        "sanitizer_off_seconds": best["off"],
        "sanitizer_on_seconds": best["on"],
        "sanitizer_raw_calls": calls["raw"],
        "sanitizer_off_calls": calls["off"],
        "sanitizer_on_calls": calls["on"],
        "sanitizer_disabled_overhead_frac":
            calls["off"] / calls["raw"] - 1.0,
        "sanitizer_attached_overhead_frac":
            calls["on"] / calls["raw"] - 1.0,
        "sanitizer_attached_wall_frac": best["on"] / best["raw"] - 1.0,
    }


#: Hard ceiling on the profiler-detached overhead of the ``run()`` API —
#: a VM that never attaches the profiler must execute structurally
#: untouched code (DESIGN §12).  Gated on the same deterministic
#: interpreter-call ratio as the telemetry and sanitizer gates.
PROFILER_DISABLED_MAX_OVERHEAD = 0.02


def bench_profiler(quick: bool) -> dict:
    """Profiler overhead: detached (gated) vs fully attached.

    Three variants of the identical fixed-seed workload:

    * ``raw`` — VM + SyntheticMutator driven directly;
    * ``off`` — through ``run()`` with the profiler available but not
      attached: the path the 2% gate protects (its entire footprint is
      two falsy option checks per run — the profiler module is not even
      imported);
    * ``on``  — through ``run(profile="full")`` with birth stamping,
      release-frame census walks, streaming percentiles/MMU, geometry
      sampling and cost attribution all live.  Informational only: the
      census prices what it prices (one dict insert per allocation, one
      status-word read per stamped object per frame release) and is
      reported so the trajectory stays visible, not bounded.
    """
    benchmark, heap, scale, seed = "jess", 48 * 1024, 0.2, 13
    rounds = 3 if quick else 5

    def run_raw():
        spec = benchmark_spec(benchmark, scale)
        vm = VM(heap, collector="25.25.100", locality=spec.locality,
                benchmark_name=spec.name)
        SyntheticMutator(vm, spec, seed=seed).run()

    def run_off():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed))

    def run_on():
        run_cell(benchmark, "25.25.100", heap,
                 options=RunOptions(scale=scale, seed=seed, profile="full"))

    variants = {"raw": run_raw, "off": run_off, "on": run_on}
    for fn in variants.values():
        fn()  # warm-up
    calls = {name: _count_calls(fn) for name, fn in variants.items()}
    best = {name: float("inf") for name in variants}
    for _ in range(rounds):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return {
        "profiler_raw_seconds": best["raw"],
        "profiler_off_seconds": best["off"],
        "profiler_on_seconds": best["on"],
        "profiler_raw_calls": calls["raw"],
        "profiler_off_calls": calls["off"],
        "profiler_on_calls": calls["on"],
        "profiler_disabled_overhead_frac":
            calls["off"] / calls["raw"] - 1.0,
        "profiler_attached_overhead_frac":
            calls["on"] / calls["raw"] - 1.0,
        "profiler_attached_wall_frac": best["on"] / best["raw"] - 1.0,
    }


def bench_sweep(quick: bool, parallel: bool) -> dict:
    """Wall-clock of a small end-to-end sweep, serial and parallel."""
    points = 3 if quick else 5
    scale = 0.2 if quick else 0.5
    multipliers = heap_multipliers(points)
    out = {}
    for label, par in (("serial", False), ("parallel", True)):
        if par and not parallel:
            continue
        start = time.perf_counter()
        result = sweep(
            "jess", "25.25.100", 24 * 1024, multipliers, scale=scale, parallel=par
        )
        out[f"sweep_seconds_{label}"] = time.perf_counter() - start
        out[f"sweep_completed_{label}"] = sum(r.completed for r in result.runs)
        out[f"sweep_mode_{label}"] = result.execution_mode
    return out


def bench_grid_store(min_seconds: float) -> float:
    """Warm-store lookups/s: ``ResultStore.get`` including deserialisation.

    This is the whole cost of a warm campaign cell (DESIGN §14), so it
    bounds how fast a cached figure can replay.
    """
    import shutil
    import tempfile

    from repro.grid import ResultStore, cell_key

    stats = run_cell(
        "jess", "25.25.100", 24 * 1024, options=RunOptions(scale=0.2)
    ).stats
    root = tempfile.mkdtemp(prefix="grid-bench-store-")
    try:
        with ResultStore(root) as store:
            keys = [
                cell_key("jess", "25.25.100", 24 * 1024, 0.2, seed)
                for seed in range(128)
            ]
            for key in keys:
                store.put(key, stats)
        warm = ResultStore(root)

        def step():
            get = warm.get
            for key in keys:
                get(key)

        n, elapsed = _time_loop(step, min_seconds)
        return n * len(keys) / elapsed
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_grid_dispatch(min_seconds: float) -> float:
    """Jobs/s through ``execute_jobs`` with a no-op cell runner: pure
    executor overhead (keying, cost ordering, bookkeeping, events off)."""
    from repro.grid import execute_jobs
    from repro.sim.stats import RunStats

    jobs = [("jess", "25.25.100", (16 + i) * 1024, 0.2, 13) for i in range(64)]
    stub = RunStats(benchmark="jess", collector="25.25.100", heap_bytes=0)

    def step():
        execute_jobs(jobs, parallel=False, cell_runner=lambda job: stub)

    n, elapsed = _time_loop(step, min_seconds)
    return n * len(jobs) / elapsed


def bench_tiers(min_seconds: float) -> dict:
    """The three kernel-sensitive metrics, once per *available* tier.

    Keys are ``metric@tier`` and land in ``metrics`` so the ``--check``
    gate covers each backend individually (ISSUE 6 satellite: a tier that
    silently loses its kernels regresses its own gated entries, not just
    the auto-tier headline numbers).
    """
    out = {}
    for tier, status in available().items():
        if not status.startswith("ok"):
            continue
        out[f"barrier_stores_per_s@{tier}"] = bench_barrier(min_seconds, tier)
        out[f"beltway_traced_words_per_s@{tier}"] = _bench_trace(
            "25.25.100", min_seconds, tier
        )
        out[f"gctk_traced_words_per_s@{tier}"] = _bench_trace(
            "gctk:SS", min_seconds, tier
        )
    return out


def run(quick: bool, parallel: bool = True) -> dict:
    min_seconds = 0.1 if quick else 0.4
    metrics = {
        "copied_words_per_s": bench_copy_words(min_seconds),
        "store_words_per_s": bench_store_words(min_seconds),
        "load_words_per_s": bench_load_words(min_seconds),
        "allocs_per_s": bench_alloc(min_seconds),
        "barrier_stores_per_s": bench_barrier(min_seconds),
        "remset_inserts_per_s": bench_remset_insert(min_seconds),
        "remset_drain_slots_per_s": bench_remset_drain(min_seconds),
        "beltway_traced_words_per_s": _bench_trace("25.25.100", min_seconds),
        "gctk_traced_words_per_s": _bench_trace("gctk:SS", min_seconds),
        "grid_store_lookups_per_s": bench_grid_store(min_seconds),
        "grid_dispatch_jobs_per_s": bench_grid_dispatch(min_seconds),
    }
    metrics.update(bench_tiers(min_seconds))
    return {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "substrate_tier": resolve(None).name,
        "tiers_available": available(),
        "metrics": metrics,
        "telemetry": bench_telemetry(quick),
        "sanitizer": bench_sanitizer(quick),
        "profiler": bench_profiler(quick),
        "end_to_end": bench_sweep(quick, parallel),
        "pre_change": PRE_CHANGE,
        "speedup_vs_pre_change": {
            key: metrics[key] / PRE_CHANGE[key] for key in PRE_CHANGE
        },
    }


def check(report: dict, baseline_path: Path, threshold: float) -> int:
    """Exit status 1 if any gated metric regressed more than ``threshold``."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    # Gate the fixed metric list plus every per-tier ``metric@tier`` entry
    # the baseline recorded (skipping tiers this runner lacks, so a
    # python-only environment still checks cleanly against a full baseline).
    gated = list(GATED_METRICS) + sorted(
        key for key in baseline.get("metrics", {})
        if "@" in key and key in report["metrics"]
    )
    for key in gated:
        base = baseline.get("metrics", {}).get(key)
        now = report["metrics"][key]
        if not base:
            continue
        ratio = now / base
        status = "OK" if ratio >= 1.0 - threshold else "REGRESSED"
        print(f"  {key:<30} {now:14.0f} vs baseline {base:14.0f}  "
              f"({ratio:5.2f}x) {status}")
        if ratio < 1.0 - threshold:
            failures.append(key)
    # Telemetry disabled-mode overhead: an absolute gate, not a baseline
    # ratio — the run() API must stay within 2% of driving the engine raw.
    # Measured as the deterministic interpreter-call ratio, so the gate
    # never flakes on a noisy runner.
    overhead = report.get("telemetry", {}).get("telemetry_disabled_overhead_frac")
    if overhead is not None:
        ok = overhead <= TELEMETRY_DISABLED_MAX_OVERHEAD
        print(f"  {'telemetry_disabled_overhead':<24} {overhead:14.4f} "
              f"(limit {TELEMETRY_DISABLED_MAX_OVERHEAD:.2f})  "
              f"{'OK' if ok else 'REGRESSED'}")
        if not ok:
            failures.append("telemetry_disabled_overhead_frac")
    # Sanitizer unattached-mode overhead: same absolute, deterministic
    # gate — a never-attached VM must stay within 2% of raw (DESIGN §11).
    # The attached-mode numbers are reported above, informationally.
    overhead = report.get("sanitizer", {}).get("sanitizer_disabled_overhead_frac")
    if overhead is not None:
        ok = overhead <= SANITIZER_DISABLED_MAX_OVERHEAD
        print(f"  {'sanitizer_disabled_overhead':<24} {overhead:14.4f} "
              f"(limit {SANITIZER_DISABLED_MAX_OVERHEAD:.2f})  "
              f"{'OK' if ok else 'REGRESSED'}")
        if not ok:
            failures.append("sanitizer_disabled_overhead_frac")
    # Profiler detached-mode overhead: same absolute, deterministic gate —
    # a never-attached VM must stay within 2% of raw (DESIGN §12).  The
    # attached-mode numbers are reported above, informationally.
    overhead = report.get("profiler", {}).get("profiler_disabled_overhead_frac")
    if overhead is not None:
        ok = overhead <= PROFILER_DISABLED_MAX_OVERHEAD
        print(f"  {'profiler_disabled_overhead':<24} {overhead:14.4f} "
              f"(limit {PROFILER_DISABLED_MAX_OVERHEAD:.2f})  "
              f"{'OK' if ok else 'REGRESSED'}")
        if not ok:
            failures.append("profiler_disabled_overhead_frac")
    if failures:
        print(f"FAIL: throughput regressed >{threshold:.0%} on: "
              f"{', '.join(failures)}")
        return 1
    print(f"PASS: no gated metric regressed more than {threshold:.0%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short timing windows (CI smoke)")
    parser.add_argument("--check", metavar="BASELINE", type=Path,
                        help="compare against a baseline JSON instead of "
                             "overwriting it; exit 1 on regression")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the JSON report (default: "
                             "BENCH_substrate.json at the repo root; "
                             "suppressed in --check mode unless given)")
    parser.add_argument("--no-parallel", action="store_true",
                        help="skip the parallel end-to-end sweep timing")
    parser.add_argument("--tier", choices=("python", "numpy", "cffi", "auto"),
                        help="force the substrate-kernel tier for the "
                             "headline metrics (sets " + TIER_ENV + ")")
    args = parser.parse_args(argv)
    if args.tier:
        os.environ[TIER_ENV] = args.tier
    if args.check and not args.check.is_file():
        parser.error(f"baseline file not found: {args.check}")

    report = run(args.quick, parallel=not args.no_parallel)
    for key, value in report["metrics"].items():
        speedup = report["speedup_vs_pre_change"].get(key)
        suffix = f"   ({speedup:6.1f}x vs pre-change)" if speedup else ""
        print(f"{key:<28} {value:14.0f} /s{suffix}")
    for key, value in report["telemetry"].items():
        print(f"{key:<34} {value:10.4f}")
    for key, value in report["sanitizer"].items():
        print(f"{key:<34} {value:10.4f}")
    for key, value in report["profiler"].items():
        print(f"{key:<34} {value:10.4f}")
    for key, value in report["end_to_end"].items():
        print(f"{key:<24} {value:14.3f}" if isinstance(value, float)
              else f"{key:<24} {value:>14}")

    if args.check:
        status = check(report, args.check, args.threshold)
        if args.output:
            args.output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        return status

    output = args.output or REPO_ROOT / "BENCH_substrate.json"
    output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
