"""Benchmark target reproducing the paper's Figure 10.

Per-benchmark total execution time for Beltway 25.25.100, Appel and Fixed-25: Beltway wins at each benchmark's smallest completing heaps, and Appel needs substantially more memory to catch up.
"""

from _util import assert_shape, run_experiment


def test_figure10(benchmark):
    """Regenerate Figure 10 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure10",), rounds=1, iterations=1)
    assert_shape(result)
