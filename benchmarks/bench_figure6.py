"""Benchmark target reproducing the paper's Figure 6.

Incrementality in generational collectors: the flexible Appel nursery beats every fixed-size nursery, and fixed nurseries fail outright at small heap sizes.
"""

from _util import assert_shape, run_experiment


def test_figure6(benchmark):
    """Regenerate Figure 6 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure6",), rounds=1, iterations=1)
    assert_shape(result)
