"""Benchmark target reproducing the paper's Figure 8.

Completeness trade-off: Beltway 25.25 and 25.25.100 perform the same on the geometric mean, but javac punishes 25.25's incompleteness (a cross-increment cyclic structure is never reclaimed).
"""

from _util import assert_shape, run_experiment


def test_figure8(benchmark):
    """Regenerate Figure 8 and assert its qualitative shape."""
    result = benchmark.pedantic(run_experiment, args=("figure8",), rounds=1, iterations=1)
    assert_shape(result)
