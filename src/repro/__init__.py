"""repro — a faithful Python reproduction of *Beltway: Getting Around
Garbage Collection Gridlock* (Blackburn, Jones, McKinley, Moss; PLDI 2002).

The package implements, from scratch:

* a simulated word-addressed heap with frames, an object model and a boot
  image (:mod:`repro.heap`);
* the Beltway framework itself — belts, increments, the frame write
  barrier, per-frame-pair remembered sets, collection triggers and the
  dynamic conservative copy reserve (:mod:`repro.core`);
* independent baseline collectors: semi-space, Appel generational and
  fixed-size-nursery generational (:mod:`repro.gctk`);
* six synthetic SPEC-like workloads scaled 1024x down from the paper's
  benchmarks (:mod:`repro.bench`);
* a deterministic cost model and clock (:mod:`repro.sim`), analysis tools
  including MMU curves (:mod:`repro.analysis`), and one harness entry
  point per table/figure of the paper (:mod:`repro.harness`).

Quick start::

    from repro import VM, MutatorContext

    vm = VM(heap_bytes=64 * 1024, collector="25.25.100")
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    head = mu.alloc(node)           # a rooted handle
    child = mu.alloc(node)
    mu.write(head, 0, child)        # barriered pointer store
    stats = vm.finish()             # cost-model run statistics
"""

from .core.beltway import BeltwayHeap
from .core.config import PAPER_CONFIGS, BeltSpec, BeltwayConfig, PromotionStyle
from .errors import (
    BarrierError,
    ConfigError,
    HeapCorruption,
    InvalidAddress,
    OutOfMemory,
    ReproError,
)
from .runtime.mutator import MutatorContext
from .runtime.roots import Handle
from .runtime.vm import VM
from .sim.stats import RunStats

__version__ = "1.0.0"

__all__ = [
    "BarrierError",
    "BeltSpec",
    "BeltwayConfig",
    "BeltwayHeap",
    "ConfigError",
    "Handle",
    "HeapCorruption",
    "InvalidAddress",
    "MutatorContext",
    "OutOfMemory",
    "PAPER_CONFIGS",
    "PromotionStyle",
    "ReproError",
    "RunStats",
    "VM",
    "__version__",
]
