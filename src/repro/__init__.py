"""repro — a faithful Python reproduction of *Beltway: Getting Around
Garbage Collection Gridlock* (Blackburn, Jones, McKinley, Moss; PLDI 2002).

The package implements, from scratch:

* a simulated word-addressed heap with frames, an object model and a boot
  image (:mod:`repro.heap`);
* the Beltway framework itself — belts, increments, the frame write
  barrier, per-frame-pair remembered sets, collection triggers and the
  dynamic conservative copy reserve (:mod:`repro.core`);
* independent baseline collectors: semi-space, Appel generational and
  fixed-size-nursery generational (:mod:`repro.gctk`);
* six synthetic SPEC-like workloads scaled 1024x down from the paper's
  benchmarks (:mod:`repro.bench`);
* a deterministic cost model and clock (:mod:`repro.sim`), analysis tools
  including MMU curves (:mod:`repro.analysis`), a streaming telemetry bus
  (:mod:`repro.obs`), and one harness entry point per table/figure of the
  paper (:mod:`repro.harness`).

Stable public surface
---------------------

The five names most users need are re-exported here:

* :func:`run` — one (benchmark, collector, heap) run → :class:`RunReport`;
  telemetry (tracing/profiling/counters) selected via :class:`RunOptions`;
* :func:`run_many` — a batch of runs, process-parallel and bit-identical
  to the serial loop;
* :func:`sweep` — one collector across a heap-size grid (the shape every
  figure is built from);
* :func:`find_min_heap` — the paper's "smallest heap that completes";
* :class:`ResultStore` / :func:`find_min_heaps` — the content-addressed
  on-disk result store and the batched minimum-heap search
  (:mod:`repro.grid`): pass ``store=ResultStore(path)`` to any of the
  above and reruns replay from disk instead of recomputing;
* :class:`SLOBound` / :func:`sweep_frontier` / :func:`max_sustainable_rate`
  — SLO-driven evaluation of server workloads (:mod:`repro.slo`):
  throughput–latency frontiers with distilled GC cost, and the knee of
  the frontier under a declared objective;
* :func:`attach_tracer` — event tracing for a hand-built :class:`VM`;
* :func:`build_timeline` / :class:`TraceExportSink` — the span model
  (:mod:`repro.obs.trace`): fold any telemetry stream into hierarchical
  run → gc → phase spans and export Chrome trace-event / Perfetto JSON;
  :func:`compare_artefacts` diffs two trace/report artefacts
  (``beltway-bench compare``);
* :func:`load_spec` / :func:`load_workload` — unified spec acquisition
  (:mod:`repro.specs`): one loader resolving benchmark names, declarative
  ``.json``/``.yaml`` workload files and spec objects, used by every entry
  point above.  Server workloads (:class:`ServerWorkloadSpec`,
  :mod:`repro.workloads`) run open-loop and report request-latency
  percentiles (:class:`RequestStats`) alongside :class:`RunStats`.

Quick start::

    import repro

    report = repro.run("jess", "25.25.100", 48 * 1024)
    print(report.stats.summary_row())

or, driving a VM by hand::

    from repro import VM, MutatorContext

    vm = VM(heap_bytes=64 * 1024, collector="25.25.100")
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    head = mu.alloc(node)           # a rooted handle
    child = mu.alloc(node)
    mu.write(head, 0, child)        # barriered pointer store
    stats = vm.finish()             # cost-model run statistics
"""

from .analysis.compare import (
    ArtefactError,
    CompareResult,
    compare_artefacts,
    compare_metrics,
    extract_metrics,
)
from .analysis.sweep import sweep
from .core.beltway import BeltwayHeap
from .core.config import PAPER_CONFIGS, BeltSpec, BeltwayConfig, PromotionStyle
from .errors import (
    BarrierError,
    ConfigError,
    HeapCorruption,
    InvalidAddress,
    OutOfMemory,
    ReproError,
)
from .grid import ResultStore, cell_key, find_min_heaps
from .harness.runner import (
    RunOptions,
    RunReport,
    find_min_heap,
    run,
    run_many,
)
from .obs import (
    CounterSink,
    Event,
    JsonlLoadReport,
    JsonlSink,
    ProfileOptions,
    ProfileReport,
    Profiler,
    RingBufferSink,
    TelemetryBus,
    attach_profiler,
    iter_jsonl,
    load_jsonl,
)
from .obs.trace import (
    Span,
    Timeline,
    TraceExportSink,
    build_timeline,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
)
from .runtime.mutator import MutatorContext
from .runtime.roots import Handle
from .runtime.vm import VM
from .sanitizer import (
    FaultSpec,
    Sanitizer,
    SanitizerReport,
    SanitizerViolation,
    arm_faults,
    attach_sanitizer,
)
from .sim.stats import RunStats
from .sim.trace import Tracer, attach_tracer
from .slo import (
    Frontier,
    FrontierPoint,
    SLOBound,
    max_sustainable_rate,
    sweep_frontier,
)
from .specs import fingerprint, load as load_spec
from .workloads import (
    ArrivalSpec,
    RequestStats,
    RequestTask,
    ServerWorkloadSpec,
    load_file as load_workload,
)

__version__ = "1.7.0"

__all__ = [
    # consolidated run API
    "run",
    "run_many",
    "sweep",
    "find_min_heap",
    "RunOptions",
    "RunReport",
    # unified spec acquisition + server workloads
    "load_spec",
    "fingerprint",
    "load_workload",
    "ServerWorkloadSpec",
    "RequestTask",
    "ArrivalSpec",
    "RequestStats",
    # grid store + batched search
    "ResultStore",
    "cell_key",
    "find_min_heaps",
    # SLO-driven evaluation
    "SLOBound",
    "Frontier",
    "FrontierPoint",
    "sweep_frontier",
    "max_sustainable_rate",
    # telemetry
    "attach_tracer",
    "Tracer",
    "TelemetryBus",
    "Event",
    "JsonlSink",
    "RingBufferSink",
    "CounterSink",
    "load_jsonl",
    "iter_jsonl",
    "JsonlLoadReport",
    # span model + trace export
    "Span",
    "Timeline",
    "TraceExportSink",
    "build_timeline",
    "to_perfetto",
    "validate_perfetto",
    "write_perfetto",
    # artefact comparison
    "ArtefactError",
    "CompareResult",
    "compare_artefacts",
    "compare_metrics",
    "extract_metrics",
    # profiler
    "attach_profiler",
    "Profiler",
    "ProfileOptions",
    "ProfileReport",
    # sanitizer
    "attach_sanitizer",
    "Sanitizer",
    "SanitizerReport",
    "SanitizerViolation",
    "FaultSpec",
    "arm_faults",
    # VM building blocks
    "VM",
    "MutatorContext",
    "Handle",
    "RunStats",
    "BeltwayHeap",
    "BeltwayConfig",
    "BeltSpec",
    "PromotionStyle",
    "PAPER_CONFIGS",
    # errors
    "ReproError",
    "ConfigError",
    "OutOfMemory",
    "HeapCorruption",
    "InvalidAddress",
    "BarrierError",
    "__version__",
]
