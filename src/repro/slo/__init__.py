"""SLO-driven evaluation: frontiers, distilled GC cost, max-rate search.

The paper's headline metrics — throughput and MMU at a fixed heap — say
how a collector behaves at one operating point.  A production question is
shaped differently: *what offered load can this collector sustain while
the service keeps its latency objective?*  This package answers it with
three instruments built on the grid executor (every run a cacheable,
resumable cell):

* :func:`sweep_frontier` — run a server workload over a ladder of offered
  rates and emit the throughput–latency frontier (p50/p99/p99.9, GC
  overhead, MMU per point);
* distilled GC cost — every measured cell is paired with an idealised
  *no-GC reference* (same spec, same arrivals, heap sized so nothing ever
  collects) and the difference is reported as latency inflation
  attributable to collection (:mod:`repro.slo.distill`);
* :func:`max_sustainable_rate` — the knee of the frontier under a
  declared :class:`SLOBound`, found by the same doubling/bisection state
  machine the minimum-heap search uses
  (:class:`repro.grid.monotone.MonotoneSearch`), probing O(log n) rates
  instead of walking the ladder.
"""

from .bounds import SLOBound
from .distill import DistilledCost, baseline_heap_bytes, distill
from .frontier import Frontier, FrontierPoint, sweep_frontier
from .search import SearchResult, max_sustainable_rate, max_sustainable_rates

__all__ = [
    "DistilledCost",
    "Frontier",
    "FrontierPoint",
    "SLOBound",
    "SearchResult",
    "baseline_heap_bytes",
    "distill",
    "max_sustainable_rate",
    "max_sustainable_rates",
    "sweep_frontier",
]
