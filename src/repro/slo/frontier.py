"""Throughput–latency frontiers over a ladder of offered rates.

One :func:`sweep_frontier` call runs a server workload at every rate of a
ladder against one (collector, heap) operating point and returns the
frontier: offered rate → request percentiles, GC overhead, and MMU.  All
cells — the measured ladder *and* the per-rate no-GC references the
distillation subtracts — go through the grid executor as **one batch**,
so a warm store replays a whole frontier without executing a single run,
an interrupted sweep resumes from its checkpointed cells, and the ladder
parallelises like any other campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.mmu import mmu
from ..errors import ConfigError
from ..grid.executor import execute_jobs
from ..grid.store import ResultStore
from ..specs import load as load_spec
from ..workloads.model import ServerWorkloadSpec
from .bounds import SLOBound
from .distill import DistilledCost, baseline_heap_bytes
from .distill import distill as _distill

__all__ = ["Frontier", "FrontierPoint", "sweep_frontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One operating point: the workload at one offered rate."""

    rate_rps: float
    completed: bool
    requests: int
    offered: int
    p50_cycles: float
    p90_cycles: float
    p99_cycles: float
    p999_cycles: float
    max_cycles: float
    mean_cycles: float
    queue_peak: int
    paused_requests: int
    collections: int
    gc_fraction: float
    #: Minimum mutator utilisation at the frontier's window fraction.
    mmu: float
    distilled: Optional[DistilledCost] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "rate_rps": self.rate_rps,
            "completed": self.completed,
            "requests": self.requests,
            "offered": self.offered,
            "p50_cycles": self.p50_cycles,
            "p90_cycles": self.p90_cycles,
            "p99_cycles": self.p99_cycles,
            "p999_cycles": self.p999_cycles,
            "max_cycles": self.max_cycles,
            "mean_cycles": self.mean_cycles,
            "queue_peak": self.queue_peak,
            "paused_requests": self.paused_requests,
            "collections": self.collections,
            "gc_fraction": self.gc_fraction,
            "mmu": self.mmu,
        }
        if self.distilled is not None:
            out["distilled"] = self.distilled.to_dict()
        return out

    def meets(self, slo: SLOBound) -> bool:
        """Point-level SLO check from the recorded fields.

        The MMU clause is checked against this point's stored ``mmu``
        (computed at the *frontier's* window fraction) — declare the
        bound with the same fraction the sweep used.
        """
        if not self.completed:
            return False
        for bound, observed in (
            (slo.p50_cycles, self.p50_cycles),
            (slo.p99_cycles, self.p99_cycles),
            (slo.p999_cycles, self.p999_cycles),
        ):
            if bound is not None and observed > bound:
                return False
        if slo.min_mmu is not None and self.mmu < slo.min_mmu:
            return False
        return True


@dataclass
class Frontier:
    """The full rate ladder of one (workload, collector, heap) cell."""

    benchmark: str
    collector: str
    heap_bytes: int
    scale: float
    seed: int
    mmu_window_fraction: float
    points: List[FrontierPoint] = field(default_factory=list)
    #: Grid accounting of the sweep that produced this frontier.
    executed: int = 0
    cached: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "collector": self.collector,
            "heap_bytes": self.heap_bytes,
            "scale": self.scale,
            "seed": self.seed,
            "mmu_window_fraction": self.mmu_window_fraction,
            "points": [p.to_dict() for p in self.points],
        }

    def knee(self, slo: SLOBound) -> Optional[float]:
        """Highest ladder rate that meets the SLO (None: none does)."""
        sustainable = [p.rate_rps for p in self.points if p.meets(slo)]
        return max(sustainable) if sustainable else None

    def point_lines(self) -> List[str]:
        """Greppable full-precision lines, one per point (CI goldens)."""
        lines = []
        for p in self.points:
            overhead = (
                None if p.distilled is None else p.distilled.overhead_pct
            )
            lines.append(
                f"slo-frontier {self.benchmark}/{self.collector}"
                f"@{p.rate_rps:g}rps: p50={p.p50_cycles!r} "
                f"p99={p.p99_cycles!r} p99.9={p.p999_cycles!r} "
                f"mmu={p.mmu!r} overhead_pct={overhead!r}"
            )
        return lines


def _point_from_stats(stats, rate: float, window_fraction: float,
                      distilled: Optional[DistilledCost]) -> FrontierPoint:
    req = stats.requests
    total = stats.total_cycles
    point_mmu = (
        mmu(stats.pause_intervals(), total, window_fraction * total)
        if total > 0
        else 1.0
    )
    return FrontierPoint(
        rate_rps=rate,
        completed=stats.completed,
        requests=req.count if req else 0,
        offered=req.offered if req else 0,
        p50_cycles=req.p50_cycles if req else 0.0,
        p90_cycles=req.p90_cycles if req else 0.0,
        p99_cycles=req.p99_cycles if req else 0.0,
        p999_cycles=req.p999_cycles if req else 0.0,
        max_cycles=req.max_cycles if req else 0.0,
        mean_cycles=req.mean_cycles if req else 0.0,
        queue_peak=req.queue_peak if req else 0,
        paused_requests=req.paused_requests if req else 0,
        collections=stats.collections,
        gc_fraction=stats.gc_fraction,
        mmu=point_mmu,
        distilled=distilled,
    )


def sweep_frontier(
    spec_ref,
    collector: str,
    heap_bytes: int,
    rates: Sequence[float],
    *,
    scale: float = 1.0,
    seed: int = 13,
    store: Optional[ResultStore] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    bus=None,
    distill: bool = True,
    mmu_window_fraction: float = 0.01,
    cell_runner=None,
    force_pool: bool = False,
) -> Frontier:
    """The throughput–latency frontier of one (collector, heap) point.

    ``spec_ref`` is anything :func:`repro.specs.load` resolves to a
    :class:`~repro.workloads.model.ServerWorkloadSpec`; ``scale`` shrinks
    the observation window before the ladder is applied, so every rate
    runs the same scaled scenario.  ``rates`` is deduplicated and sorted
    ascending.  With ``distill`` (default), each rate also runs the no-GC
    reference cell and the point carries a
    :class:`~repro.slo.distill.DistilledCost`.  With a ``bus``, one
    ``slo.point`` event is emitted per point.
    """
    spec = load_spec(spec_ref, scale)
    if not isinstance(spec, ServerWorkloadSpec):
        raise ConfigError(
            f"frontier sweeps need a server workload, got {type(spec).__name__}"
        )
    ladder = sorted({float(r) for r in rates})
    if not ladder:
        raise ConfigError("frontier sweeps need at least one rate")
    for rate in ladder:
        if rate <= 0:
            raise ConfigError(f"offered rates must be positive, got {rate:g}")

    jobs = [
        (spec.with_rate(rate), collector, heap_bytes, 1.0, seed)
        for rate in ladder
    ]
    base_heap = baseline_heap_bytes(spec)
    if distill:
        jobs.extend(
            (spec.with_rate(rate), collector, base_heap, 1.0, seed)
            for rate in ladder
        )
    report = execute_jobs(
        jobs,
        store=store,
        parallel=parallel,
        max_workers=max_workers,
        bus=bus,
        cell_runner=cell_runner,
        force_pool=force_pool,
    )
    measured = report.results[: len(ladder)]
    references = report.results[len(ladder):] if distill else [None] * len(ladder)

    frontier = Frontier(
        benchmark=spec.name,
        collector=collector,
        heap_bytes=heap_bytes,
        scale=scale,
        seed=seed,
        mmu_window_fraction=mmu_window_fraction,
        executed=len(report.executed),
        cached=report.cached,
    )
    for i, (rate, stats, ref) in enumerate(zip(ladder, measured, references)):
        cost = _distill(stats, ref) if distill else None
        point = _point_from_stats(stats, rate, mmu_window_fraction, cost)
        frontier.points.append(point)
        if bus is not None:
            payload = {
                "benchmark": spec.name,
                "collector": collector,
                "heap_bytes": heap_bytes,
                "seed": seed,
                "rate_rps": rate,
                "completed": stats.completed,
                "p50_cycles": point.p50_cycles,
                "p99_cycles": point.p99_cycles,
                "p999_cycles": point.p999_cycles,
                "mmu": point.mmu,
                "gc_fraction": point.gc_fraction,
            }
            if cost is not None:
                payload["overhead_pct"] = cost.overhead_pct
                payload["p99_inflation"] = cost.p99_inflation
            bus.emit("slo.point", float(i), payload)
    return frontier
