"""Service-level objectives as a declarative, checkable bound.

An :class:`SLOBound` is the contract side of the frontier: latency
ceilings on the request percentiles (in cycles, the cost model's unit,
with millisecond constructors for humans) and an optional minimum
mutator utilisation.  ``evaluate`` turns one run's
:class:`~repro.sim.stats.RunStats` into a verdict plus the list of
violated clauses — the monotone predicate the rate search bisects over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.mmu import mmu
from ..sim.cost import CYCLES_PER_SECOND

__all__ = ["SLOBound"]


def _ms_to_cycles(ms: float) -> float:
    return ms * 1e-3 * CYCLES_PER_SECOND


@dataclass(frozen=True)
class SLOBound:
    """Latency/utilisation objective one run either meets or violates.

    All latency bounds are **cycles** (``None`` = unconstrained); use
    :meth:`from_ms` to declare them in milliseconds.  ``min_mmu`` bounds
    the minimum mutator utilisation at a window of
    ``mmu_window_fraction`` of the run's total time — a fraction rather
    than an absolute window so one bound is meaningful across scales.
    A run that did not complete (OOM, grid failure) or produced no
    request statistics violates every objective by definition.
    """

    p50_cycles: Optional[float] = None
    p99_cycles: Optional[float] = None
    p999_cycles: Optional[float] = None
    min_mmu: Optional[float] = None
    mmu_window_fraction: float = 0.01

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        bounds = (self.p50_cycles, self.p99_cycles, self.p999_cycles)
        if all(b is None for b in bounds) and self.min_mmu is None:
            raise ConfigError("an SLO needs at least one bound")
        for bound in bounds:
            if bound is not None and bound <= 0:
                raise ConfigError("latency bounds must be positive cycles")
        if self.min_mmu is not None and not 0.0 <= self.min_mmu <= 1.0:
            raise ConfigError("min_mmu must be in [0, 1]")
        if not 0.0 < self.mmu_window_fraction <= 1.0:
            raise ConfigError("mmu_window_fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def from_ms(
        cls,
        p50: Optional[float] = None,
        p99: Optional[float] = None,
        p999: Optional[float] = None,
        min_mmu: Optional[float] = None,
        mmu_window_fraction: float = 0.01,
    ) -> "SLOBound":
        """Millisecond-flavoured constructor (converted via the cost model)."""
        return cls(
            p50_cycles=None if p50 is None else _ms_to_cycles(p50),
            p99_cycles=None if p99 is None else _ms_to_cycles(p99),
            p999_cycles=None if p999 is None else _ms_to_cycles(p999),
            min_mmu=min_mmu,
            mmu_window_fraction=mmu_window_fraction,
        )

    # ------------------------------------------------------------------
    def evaluate(self, stats) -> Tuple[bool, List[str]]:
        """Verdict for one run: ``(ok, violated-clause descriptions)``."""
        if not stats.completed:
            return False, [f"run failed: {stats.failure or 'incomplete'}"]
        requests = stats.requests
        latency_bounds = (
            ("p50", self.p50_cycles, "p50_cycles"),
            ("p99", self.p99_cycles, "p99_cycles"),
            ("p99.9", self.p999_cycles, "p999_cycles"),
        )
        reasons: List[str] = []
        if requests is None:
            if any(bound is not None for _, bound, _ in latency_bounds):
                return False, ["no request statistics (not a server run?)"]
        else:
            for label, bound, attr in latency_bounds:
                if bound is None:
                    continue
                observed = getattr(requests, attr)
                if observed > bound:
                    reasons.append(
                        f"{label}={observed:.0f} cycles > bound {bound:.0f}"
                    )
        if self.min_mmu is not None:
            observed_mmu = self.mmu_of(stats)
            if observed_mmu < self.min_mmu:
                reasons.append(
                    f"mmu={observed_mmu:.4f} < bound {self.min_mmu:.4f} "
                    f"(window {self.mmu_window_fraction:g} of run)"
                )
        return not reasons, reasons

    def mmu_of(self, stats) -> float:
        """The MMU this bound constrains: window is a fraction of the run."""
        total = stats.total_cycles
        if total <= 0:
            return 1.0
        return mmu(
            stats.pause_intervals(), total, self.mmu_window_fraction * total
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = []
        for label, bound in (
            ("p50", self.p50_cycles),
            ("p99", self.p99_cycles),
            ("p99.9", self.p999_cycles),
        ):
            if bound is not None:
                parts.append(f"{label}<={bound:.0f}cy")
        if self.min_mmu is not None:
            parts.append(
                f"mmu@{self.mmu_window_fraction:g}>={self.min_mmu:g}"
            )
        return " ".join(parts)
