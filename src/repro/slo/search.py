"""Max-sustainable-rate search: the frontier knee in O(log n) probes.

"What load can this collector sustain under this SLO?" is a monotone
threshold question: queueing theory (and the open-loop engine) make SLO
violation monotone in the offered rate — below the knee the bound holds,
at and above some rate it breaks.  :func:`max_sustainable_rates` drives
one :class:`~repro.grid.monotone.MonotoneSearch` per (collector, heap)
target over the rate lattice, finding the *smallest violating rate*; the
knee is one step below it.  Searches advance in lockstep rounds and each
round's probes execute as one grid batch — exactly the
:func:`~repro.grid.minsearch.find_min_heaps` pattern, so many collectors'
searches fan out together and a warm store replays the whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..grid.executor import execute_jobs
from ..grid.monotone import MonotoneSearch, round_to_step
from ..grid.store import ResultStore
from ..specs import load as load_spec
from ..workloads.model import ServerWorkloadSpec
from .bounds import SLOBound

__all__ = ["SearchResult", "max_sustainable_rate", "max_sustainable_rates"]

#: One search target: (collector, heap_bytes).
Target = Tuple[str, int]


@dataclass
class SearchResult:
    """Outcome of one max-sustainable-rate search."""

    collector: str
    heap_bytes: int
    #: Highest lattice rate (multiple of ``rate_step``) meeting the SLO.
    #: 0 when even the lowest lattice rate violates it.
    rate_rps: int
    #: True when a violating rate was found (the knee is real); False
    #: when no probe up to ``max_rate`` violated the SLO — the workload
    #: never saturated in range and ``rate_rps`` is the highest *probed*
    #: sustainable rate, not a knee.
    saturated: bool
    #: Runs evaluated (== grid cells probed for this target).
    probes: int
    #: Smallest violating rate found (None when unsaturated).
    first_violation: Optional[int]
    #: rate -> (ok, violated clauses) for every probed rate.
    evaluations: Dict[int, Tuple[bool, List[str]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "collector": self.collector,
            "heap_bytes": self.heap_bytes,
            "rate_rps": self.rate_rps,
            "saturated": self.saturated,
            "probes": self.probes,
            "first_violation": self.first_violation,
            "evaluations": {
                str(rate): {"ok": ok, "reasons": reasons}
                for rate, (ok, reasons) in sorted(self.evaluations.items())
            },
        }

    def line(self) -> str:
        """Greppable one-line summary (CI goldens)."""
        status = "knee" if self.saturated else "unsaturated"
        return (
            f"slo-search {self.collector}@{self.heap_bytes}B: "
            f"max_rate={self.rate_rps} status={status} probes={self.probes}"
        )


def max_sustainable_rates(
    spec_ref,
    targets: Sequence[Target],
    slo: SLOBound,
    *,
    rate_step: int = 100,
    max_rate: Optional[int] = None,
    start_rate: Optional[int] = None,
    scale: float = 1.0,
    seed: int = 13,
    store: Optional[ResultStore] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    bus=None,
    cell_runner=None,
) -> Dict[Target, SearchResult]:
    """Max sustainable rate for many (collector, heap) targets at once.

    Returns ``{(collector, heap_bytes): SearchResult}``.  The searched
    lattice is multiples of ``rate_step`` rps from ``rate_step`` up to
    ``max_rate`` (default: 16x the start guess); the start guess defaults
    to the spec's own declared arrival rate.  Probe runs go through
    :func:`repro.grid.executor.execute_jobs`, so a store serves previous
    probes — including frontier cells at coinciding rates — and each
    lockstep round's probes execute in parallel.  ``cell_runner`` is the
    executor's test hook (synthetic stats instead of real runs).
    """
    if rate_step <= 0:
        raise ConfigError("rate_step must be a positive integer")
    spec = load_spec(spec_ref, scale)
    if not isinstance(spec, ServerWorkloadSpec):
        raise ConfigError(
            f"rate search needs a server workload, got {type(spec).__name__}"
        )
    start = round_to_step(
        start_rate if start_rate is not None else spec.arrival.rate_rps,
        rate_step,
        rate_step,
    )
    ceiling = round_to_step(
        max_rate if max_rate is not None else 16 * start, rate_step, rate_step
    )
    if ceiling < start:
        raise ConfigError(
            f"max_rate {ceiling} is below the start rate {start}"
        )

    searches: Dict[Target, MonotoneSearch] = {}
    results: Dict[Target, SearchResult] = {}
    for collector, heap_bytes in targets:
        target = (collector, heap_bytes)
        searches[target] = MonotoneSearch(
            start, ceiling, rate_step, floor=rate_step
        )
        results[target] = SearchResult(
            collector=collector,
            heap_bytes=heap_bytes,
            rate_rps=0,
            saturated=False,
            probes=0,
            first_violation=None,
        )

    seq = 0
    while True:
        round_targets: List[Target] = []
        jobs = []
        for target, search in searches.items():
            rate = search.probe()
            if rate is not None:
                round_targets.append(target)
                jobs.append(
                    (spec.with_rate(float(rate)), target[0], target[1],
                     1.0, seed)
                )
        if not jobs:
            break
        report = execute_jobs(
            jobs,
            store=store,
            parallel=parallel,
            max_workers=max_workers,
            bus=bus,
            cell_runner=cell_runner,
        )
        for target, job, stats in zip(round_targets, jobs, report.results):
            rate = int(round(job[0].arrival.rate_rps))
            ok, reasons = slo.evaluate(stats)
            result = results[target]
            result.probes += 1
            result.evaluations[rate] = (ok, reasons)
            # The search hunts the smallest *violating* rate.
            searches[target].feed(not ok)
            if bus is not None:
                seq += 1
                bus.emit(
                    "slo.search",
                    float(seq),
                    {
                        "benchmark": spec.name,
                        "collector": target[0],
                        "heap_bytes": target[1],
                        "seed": seed,
                        "rate_rps": rate,
                        "ok": ok,
                        "status": "probe",
                    },
                )

    for target, search in searches.items():
        result = results[target]
        if search.failed:
            # No probe violated the SLO before doubling left the range:
            # unsaturated.  ``hi`` is the highest rate actually probed
            # (the doubling stopped because 2*hi exceeded the ceiling).
            result.rate_rps = search.hi
            result.saturated = False
            result.first_violation = None
        else:
            result.first_violation = search.result
            result.saturated = True
            result.rate_rps = max(0, search.result - rate_step)
        if bus is not None:
            seq += 1
            bus.emit(
                "slo.search",
                float(seq),
                {
                    "benchmark": spec.name,
                    "collector": target[0],
                    "heap_bytes": target[1],
                    "seed": seed,
                    "rate_rps": result.rate_rps,
                    "ok": True,
                    "status": "knee" if result.saturated else "unsaturated",
                },
            )
    return results


def max_sustainable_rate(
    spec_ref,
    collector: str,
    heap_bytes: int,
    slo: SLOBound,
    **kwargs,
) -> SearchResult:
    """Single-target convenience wrapper over :func:`max_sustainable_rates`."""
    results = max_sustainable_rates(
        spec_ref, [(collector, heap_bytes)], slo, **kwargs
    )
    return results[(collector, heap_bytes)]
