"""Distilled GC cost: measured run minus an idealised no-GC reference.

The distillation follows the paper's "garbage collection is a time–space
trade-off" framing to its limit point: give the same workload a heap so
large that *nothing ever collects* (the free-list/infinite-heap ideal)
and whatever latency remains is pure mutator cost — service time plus
open-loop queueing under the identical arrival sequence (arrivals are
seeded independently of the collector, so the two latency populations
are directly comparable).  The difference is the cost attributable to
collection:

* ``overhead_pct`` — mean request latency inflation, in percent;
* ``p50/p99/p999 inflation`` — tail stretch ratios (the number an SLO
  actually buys);
* ``gc_fraction`` — the analytic share of run time spent collecting
  (kept alongside: open-loop runs charge idle time to the mutator, so
  the latency-based numbers are the honest ones).

The reference run is an ordinary grid cell — same spec ref, same
collector string, heap from :func:`baseline_heap_bytes` — so it is
cached, shared across every measured heap size at the same rate, and
replayed warm like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..bench.engine import no_gc_heap_bytes

__all__ = ["DistilledCost", "baseline_heap_bytes", "distill"]


def baseline_heap_bytes(spec) -> int:
    """The no-GC reference heap for a spec (frame-aligned, 16x the
    estimated total allocation — validated to trigger zero collections
    across the collector families on the bundled workloads)."""
    return no_gc_heap_bytes(spec)


def _ratio(measured: float, baseline: float) -> float:
    return measured / baseline if baseline > 0 else 0.0


@dataclass(frozen=True)
class DistilledCost:
    """GC-attributable cost of one measured cell vs its no-GC reference."""

    #: Mean-latency inflation in percent: 100 * (measured - ref) / ref.
    overhead_pct: float
    p50_inflation: float
    p99_inflation: float
    p999_inflation: float
    #: Analytic share of the measured run's time spent in collection.
    gc_fraction: float
    baseline_heap_bytes: int
    baseline_mean_cycles: float
    baseline_p99_cycles: float
    #: Collections in the reference run — 0 when the ideal held; nonzero
    #: means the reference heap was too small and the distillation is
    #: contaminated (callers should treat the fields as upper bounds).
    baseline_collections: int

    @property
    def clean(self) -> bool:
        """Whether the reference truly never collected."""
        return self.baseline_collections == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "overhead_pct": self.overhead_pct,
            "p50_inflation": self.p50_inflation,
            "p99_inflation": self.p99_inflation,
            "p999_inflation": self.p999_inflation,
            "gc_fraction": self.gc_fraction,
            "baseline_heap_bytes": self.baseline_heap_bytes,
            "baseline_mean_cycles": self.baseline_mean_cycles,
            "baseline_p99_cycles": self.baseline_p99_cycles,
            "baseline_collections": self.baseline_collections,
        }


def distill(measured, baseline) -> Optional[DistilledCost]:
    """Distilled cost of ``measured`` against its no-GC ``baseline``.

    Both are :class:`~repro.sim.stats.RunStats` from server runs of the
    *same spec at the same rate and seed*.  Returns ``None`` when the
    comparison is undefined — the baseline failed or either side carries
    no request statistics (a failed measured run still distills: its
    inflation is reported against the healthy reference so the frontier
    shows *how far past* the knee the cell sits, as far as it got).
    """
    if baseline is None or not baseline.completed:
        return None
    ref = baseline.requests
    got = measured.requests
    if ref is None or got is None or ref.count == 0:
        return None
    mean_ratio = _ratio(got.mean_cycles, ref.mean_cycles)
    return DistilledCost(
        overhead_pct=100.0 * (mean_ratio - 1.0) if mean_ratio else 0.0,
        p50_inflation=_ratio(got.p50_cycles, ref.p50_cycles),
        p99_inflation=_ratio(got.p99_cycles, ref.p99_cycles),
        p999_inflation=_ratio(got.p999_cycles, ref.p999_cycles),
        gc_fraction=measured.gc_fraction,
        baseline_heap_bytes=baseline.heap_bytes,
        baseline_mean_cycles=ref.mean_cycles,
        baseline_p99_cycles=ref.p99_cycles,
        baseline_collections=baseline.collections,
    )
