"""Pause-time distribution analysis (beyond the single max-pause number).

The paper motivates MMU precisely because "simple measures, such as the
length of the longest GC pause or a distribution of pause times, do not
take into account clustering of GCs" (§4.3) — but the simple measures
are still the first thing one looks at, so they are provided here:
percentiles, histograms, and the paper's bounded-mutator-progress view
(the longest stretch of consecutive GC work per mutator progress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..quantiles import percentile

Pause = Tuple[float, float]

#: Re-exported for callers that historically imported it from here; the
#: definition lives in :mod:`repro.quantiles` so request-latency, pause
#: and streaming-profiler percentiles are one implementation.
__all__ = [
    "PauseSummary",
    "histogram",
    "percentile",
    "render_histogram",
    "summarise",
    "summarise_events",
    "worst_cluster",
]


@dataclass(frozen=True)
class PauseSummary:
    """Percentile summary of a pause timeline."""

    count: int
    total: float
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def row(self) -> str:
        return (
            f"n={self.count} total={self.total:.0f} mean={self.mean:.0f} "
            f"p50={self.p50:.0f} p90={self.p90:.0f} p99={self.p99:.0f} "
            f"max={self.max:.0f}"
        )


def summarise(pauses: Sequence[Pause]) -> PauseSummary:
    durations = sorted(end - start for start, end in pauses)
    if not durations:
        return PauseSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(durations)
    return PauseSummary(
        count=len(durations),
        total=total,
        mean=total / len(durations),
        p50=percentile(durations, 0.50),
        p90=percentile(durations, 0.90),
        p99=percentile(durations, 0.99),
        max=durations[-1],
    )


def summarise_events(events: Sequence[object]) -> PauseSummary:
    """Percentile summary straight from a telemetry event stream.

    Accepts what :func:`repro.obs.load_jsonl` returns (flat dicts) or
    :class:`~repro.obs.events.Event` objects: the pause timeline is read
    from the ``gc.end`` events, so figures can be regenerated from a
    ``--trace`` JSONL file without re-running the benchmark.
    """
    from ..obs import pauses_from_events

    return summarise(pauses_from_events(events))


def histogram(
    pauses: Sequence[Pause], buckets: int = 8
) -> List[Tuple[float, float, int]]:
    """(lo, hi, count) buckets, log-spaced from the min to the max pause."""
    durations = [end - start for start, end in pauses if end > start]
    if not durations:
        return []
    lo, hi = min(durations), max(durations)
    if hi <= lo:
        return [(lo, hi, len(durations))]
    step = (hi / lo) ** (1.0 / buckets)
    edges = [lo * step ** i for i in range(buckets + 1)]
    edges[-1] = hi  # guard rounding
    out = []
    for i in range(buckets):
        count = sum(
            1
            for d in durations
            if edges[i] <= d <= edges[i + 1]
            and (i == buckets - 1 or d < edges[i + 1])
        )
        out.append((edges[i], edges[i + 1], count))
    return out


def worst_cluster(
    pauses: Sequence[Pause], window: float, total_time: float
) -> float:
    """Most GC time packed into any window of the given length — the
    clustering effect MMU exposes, as a raw number."""
    if not pauses:
        return 0.0
    worst = 0.0
    for anchor, _ in pauses:
        t0 = min(anchor, max(0.0, total_time - window))
        t1 = t0 + window
        packed = sum(
            max(0.0, min(end, t1) - max(start, t0)) for start, end in pauses
        )
        worst = max(worst, packed)
    return worst


def render_histogram(pauses: Sequence[Pause], buckets: int = 8) -> str:
    rows = histogram(pauses, buckets)
    if not rows:
        return "(no pauses)"
    peak = max(count for _, _, count in rows) or 1
    lines = []
    for lo, hi, count in rows:
        bar = "#" * int(round(20 * count / peak))
        lines.append(f"{lo:10.0f} - {hi:10.0f}  {bar:<20s} {count}")
    return "\n".join(lines)
