"""Diff two run artefacts: what regressed, what improved, by how much.

``beltway-bench compare A B`` answers the question the span layer only
frames: *between these two runs, which metric moved past its threshold?*
Artefacts are the files the harness already writes — a ``--trace`` JSONL
event stream (run, serve, minheap, slo, campaign) or an ``slo --json``
document — and A is the baseline, B the candidate.

Metric extraction is artefact-shaped:

* **trace JSONL**: per run partition, the ``run.end`` counter snapshot
  (host wall-time names are skipped — they are machine noise, not
  results), pause percentiles (p50/p99/max via the shared nearest-rank
  definition in :mod:`repro.quantiles`) and MMU at a 1% window derived
  from the ``gc.end`` pause intervals.  Runs are matched by position:
  grid-tagged partitions by input ordinal (``job0.``), untagged runs in
  stream order (``run1.``); a single-run trace gets bare names.
* **slo JSON**: every numeric per-point field of each frontier
  (``frontier.<collector>@<heap>.r<rate>.<field>``) and each search
  result's knee (``search.<collector>@<heap>.rate_rps``).

Only metrics with a known *direction* can regress: pause/latency/GC
volume metrics are higher-is-worse, MMU/completion/throughput metrics
are lower-is-worse, and everything else (collector identity, heap size,
event counts) is reported on mismatch but never drives the verdict.
The verdict line is grep-stable::

    compare: verdict=OK|REGRESSION regressions=N improvements=N checked=N threshold=P%

Exit contract (enforced by the CLI): 0 same-or-better, 1 regression,
2 usage (unreadable or unrecognisable artefact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..quantiles import percentile
from .mmu import mmu

#: Substrings marking a higher value as a regression.
_HIGHER_IS_WORSE = (
    "pause",
    "latency",
    "gc_",
    "queue",
    "collections",
    "copied",
    "overhead",
    "inflation",
    "barrier",
    "remset",
    "footprint",
    "paused",
    "dropped",
    "timeout",
    "p50",
    "p90",
    "p99",
    "max_cycles",
    "mean_cycles",
)

#: Substrings marking a lower value as a regression.
_LOWER_IS_WORSE = (
    "mmu",
    "completed",
    "requests",
    "rate_rps",
    "knee",
    "utilisation",
    "throughput",
)


def metric_direction(name: str) -> int:
    """+1 higher-is-worse, -1 lower-is-worse, 0 direction unknown.

    The leaf metric name decides; higher-is-worse wins ties because the
    names that contain both marks (``paused_requests``-style) count bad
    events, not good ones.
    """
    leaf = name.rsplit(".", 1)[-1]
    if any(mark in leaf for mark in _HIGHER_IS_WORSE):
        return +1
    if any(mark in leaf for mark in _LOWER_IS_WORSE):
        return -1
    return 0


@dataclass
class MetricDelta:
    """One compared metric: values, relative change, classification."""

    name: str
    baseline: float
    candidate: float
    #: Relative change in the *worse* direction (0.0 when equal/better or
    #: when the metric has no direction).
    regression: float
    verdict: str  # "ok" | "regression" | "improvement" | "info"

    def line(self) -> str:
        return (
            f"  {self.verdict:<11} {self.name}: "
            f"{self.baseline!r} -> {self.candidate!r}"
        )


@dataclass
class CompareResult:
    """Outcome of one A/B comparison."""

    baseline: str
    candidate: str
    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Metrics present in exactly one artefact (never drive the verdict).
    only_baseline: List[str] = field(default_factory=list)
    only_candidate: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def checked(self) -> int:
        return sum(1 for d in self.deltas if d.verdict != "info")

    @property
    def ok(self) -> bool:
        return not self.regressions

    def verdict_line(self) -> str:
        """The grep-stable summary line (CI asserts on its shape)."""
        return (
            f"compare: verdict={'OK' if self.ok else 'REGRESSION'} "
            f"regressions={len(self.regressions)} "
            f"improvements={len(self.improvements)} "
            f"checked={self.checked} "
            f"threshold={self.threshold * 100:g}%"
        )

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for delta in self.deltas:
            if delta.verdict in ("regression", "improvement") or (
                verbose and delta.verdict != "ok"
            ):
                lines.append(delta.line())
        for name in self.only_baseline:
            lines.append(f"  only-in-A    {name}")
        for name in self.only_candidate:
            lines.append(f"  only-in-B    {name}")
        lines.append(self.verdict_line())
        return "\n".join(lines)


class ArtefactError(ValueError):
    """The file is not a readable trace/report artefact (usage error)."""


#: ``run.end`` counter names that measure the host, not the program.
_HOST_NOISE = ("wall", "seconds", "_s")


def _is_host_noise(name: str) -> bool:
    return any(mark in name for mark in _HOST_NOISE)


def _trace_partitions(events) -> List[Tuple[str, List[dict]]]:
    """Group trace events the same way the span builder partitions them."""
    jobs: Dict[int, List[dict]] = {}
    root: List[List[dict]] = []
    for event in events:
        kind = event.get("kind")
        data = event
        if kind == "grid.job":
            continue
        if kind == "run.replay" or "job" in data:
            jobs.setdefault(int(data["job"]), []).append(event)
        elif kind == "run.start":
            root.append([event])
        elif root:
            root[-1].append(event)
    out: List[Tuple[str, List[dict]]] = []
    for index in sorted(jobs):
        out.append((f"job{index}", jobs[index]))
    for n, segment in enumerate(root, start=1):
        out.append((f"run{n}", segment))
    return out


def _partition_metrics(events: List[dict]) -> Dict[str, float]:
    """Metrics of one run partition: counters + pause stats + MMU."""
    metrics: Dict[str, float] = {}
    pauses: List[Tuple[float, float]] = []
    total_cycles: Optional[float] = None
    for event in events:
        kind = event.get("kind")
        if kind == "run.end":
            for name, value in event.get("counters", {}).items():
                if isinstance(value, (int, float)) and not _is_host_noise(name):
                    metrics[name] = float(value)
            total_cycles = metrics.get("run_total_cycles")
        elif kind == "gc.end":
            pauses.append(
                (float(event["pause_start"]), float(event["pause_end"]))
            )
        elif kind == "run.replay":
            metrics["run_completed"] = float(bool(event["completed"]))
            metrics["run_total_cycles"] = float(event["total_cycles"])
            metrics["run_gc_cycles"] = float(event["gc_cycles"])
            metrics["gc_collections_total"] = float(event["collections"])
            total_cycles = float(event["total_cycles"])
            pauses.extend((float(p[0]), float(p[1])) for p in event["pauses"])
    if pauses:
        durations = sorted(end - start for start, end in pauses)
        metrics["gc_pause_p50_cycles"] = percentile(durations, 0.50)
        metrics["gc_pause_p99_cycles"] = percentile(durations, 0.99)
        metrics["gc_max_pause_cycles"] = durations[-1]
    if total_cycles:
        metrics["mmu_1pct"] = mmu(pauses, total_cycles, 0.01 * total_cycles)
    return metrics


def _slo_metrics(doc: dict) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for frontier in doc.get("frontiers", []):
        who = f"frontier.{frontier['collector']}@{frontier['heap_bytes']}"
        for point in frontier.get("points", []):
            where = f"{who}.r{point['rate_rps']:g}"
            for name, value in point.items():
                if isinstance(value, bool):
                    metrics[f"{where}.{name}"] = float(value)
                elif isinstance(value, (int, float)):
                    metrics[f"{where}.{name}"] = float(value)
                elif isinstance(value, dict):  # distilled sub-report
                    for sub, subvalue in value.items():
                        if isinstance(subvalue, (int, float)):
                            metrics[f"{where}.{name}.{sub}"] = float(subvalue)
    search = doc.get("search", {})
    for result in search.get("results", []):
        who = f"search.{result['collector']}@{result['heap_bytes']}"
        metrics[f"{who}.rate_rps"] = float(result["rate_rps"])
        metrics[f"{who}.probes"] = float(result["probes"])
    return metrics


def extract_metrics(path: Union[str, Path]) -> Dict[str, float]:
    """Read one artefact and flatten it to comparable ``name -> value``.

    Raises :class:`ArtefactError` when the file is unreadable or neither
    a trace JSONL nor an slo JSON document (the CLI maps that to exit 2).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ArtefactError(f"cannot read {path}: {error}") from None
    stripped = text.lstrip()
    if not stripped:
        raise ArtefactError(f"{path} is empty")
    if stripped.startswith("{") and not _looks_jsonl(stripped):
        try:
            doc = json.loads(text)
        except ValueError as error:
            raise ArtefactError(f"{path} is not valid JSON: {error}") from None
        if "frontiers" in doc or "search" in doc:
            return _slo_metrics(doc)
        raise ArtefactError(
            f"{path}: unrecognised JSON artefact "
            "(expected an 'slo --json' document or a trace JSONL)"
        )
    # JSONL trace: skip-don't-raise loading, like the span builder.
    from ..obs.sinks import JsonlLoadReport, iter_jsonl

    report = JsonlLoadReport()
    events = list(iter_jsonl(path, validate=True, report=report))
    if not events:
        raise ArtefactError(
            f"{path}: no parseable telemetry events "
            f"({report.corrupt} corrupt, {report.invalid} invalid lines)"
        )
    partitions = _trace_partitions(events)
    metrics: Dict[str, float] = {}
    if len(partitions) == 1:
        metrics.update(_partition_metrics(partitions[0][1]))
    else:
        for prefix, segment in partitions:
            for name, value in _partition_metrics(segment).items():
                metrics[f"{prefix}.{name}"] = value
    if not metrics:
        raise ArtefactError(f"{path}: no run metrics in the trace")
    return metrics


def _looks_jsonl(stripped: str) -> bool:
    """One telemetry event per line (vs one JSON document).

    A compact single-line document also parses line-wise, so the first
    line must look like an *event* — a JSON object with a ``kind`` key —
    not merely be valid JSON.
    """
    first_line = stripped.splitlines()[0].strip()
    try:
        parsed = json.loads(first_line)
    except ValueError:
        return False
    return isinstance(parsed, dict) and "kind" in parsed


def compare_metrics(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    *,
    threshold: float = 0.05,
    metric_thresholds: Optional[Dict[str, float]] = None,
    baseline_name: str = "A",
    candidate_name: str = "B",
) -> CompareResult:
    """Classify every shared metric; thresholds are relative fractions.

    A directional metric regresses when it moves past its threshold in
    the worse direction (``metric_thresholds`` keys override per leaf
    name or full name); it improves when it moves past the threshold the
    other way.  Direction-free metrics that differ are reported as
    ``info`` but never affect the verdict.
    """
    metric_thresholds = metric_thresholds or {}
    result = CompareResult(
        baseline=baseline_name, candidate=candidate_name, threshold=threshold
    )
    for name in sorted(set(baseline) | set(candidate)):
        if name not in candidate:
            result.only_baseline.append(name)
            continue
        if name not in baseline:
            result.only_candidate.append(name)
            continue
        a, b = baseline[name], candidate[name]
        limit = metric_thresholds.get(
            name, metric_thresholds.get(name.rsplit(".", 1)[-1], threshold)
        )
        direction = metric_direction(name)
        if direction == 0:
            verdict = "ok" if a == b else "info"
            result.deltas.append(MetricDelta(name, a, b, 0.0, verdict))
            continue
        # Relative move in the worse direction; the baseline's magnitude
        # is the denominator, with a 1.0 floor so zero baselines (no
        # pauses, empty queue) still compare without dividing by zero.
        move = (b - a) * direction
        rel = move / max(abs(a), 1.0)
        if rel > limit:
            verdict = "regression"
        elif rel < -limit:
            verdict = "improvement"
        else:
            verdict = "ok"
        result.deltas.append(
            MetricDelta(name, a, b, max(0.0, rel), verdict)
        )
    return result


def compare_artefacts(
    baseline_path: Union[str, Path],
    candidate_path: Union[str, Path],
    *,
    threshold: float = 0.05,
    metric_thresholds: Optional[Dict[str, float]] = None,
) -> CompareResult:
    """Extract and compare two artefact files (see module docstring)."""
    return compare_metrics(
        extract_metrics(baseline_path),
        extract_metrics(candidate_path),
        threshold=threshold,
        metric_thresholds=metric_thresholds,
        baseline_name=str(baseline_path),
        candidate_name=str(candidate_path),
    )
