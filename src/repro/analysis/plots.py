"""ASCII line charts for figure series — the paper's plots, in a terminal.

The tables produced by :mod:`repro.analysis.tables` are exact; these
charts make the *shapes* visible at a glance: one character column per
heap-size grid point (log x-axis, like the paper), one letter per
collector, ``·`` where curves coincide is resolved by priority order.
Gaps (failed runs) simply leave their column blank, reproducing the
paper's missing-point convention for collectors that cannot run at small
heaps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Plot glyphs assigned to collectors in series order.
GLYPHS = "ABCDEFGH"


def ascii_chart(
    multipliers: Sequence[float],
    series: Dict[str, List[Optional[float]]],
    title: str,
    height: int = 14,
    width_per_point: int = 5,
) -> str:
    """Render curves as an ASCII chart (lower is better, like the paper).

    The y-axis spans the finite data range; each collector is drawn with a
    letter, and a legend maps letters to collector names.
    """
    if not series:
        return title + "\n(no data)"
    values = [
        v for curve in series.values() for v in curve if v is not None
    ]
    if not values:
        return title + "\n(all runs failed)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0
    names = list(series.keys())
    columns = len(multipliers)
    grid = [[" "] * (columns * width_per_point) for _ in range(height)]

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return int(round((height - 1) * (1.0 - frac)))

    for index, name in enumerate(names):
        glyph = GLYPHS[index % len(GLYPHS)]
        curve = series[name]
        for point, value in enumerate(curve):
            if value is None:
                continue
            row = row_of(value)
            col = point * width_per_point + width_per_point // 2
            if grid[row][col] == " ":
                grid[row][col] = glyph
            else:
                grid[row][col] = "*"  # curves coincide

    lines = [title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:7.2f} |"
        elif i == height - 1:
            label = f"{lo:7.2f} |"
        else:
            label = "        |"
        lines.append(label + "".join(row))
    axis = "        +" + "-" * (columns * width_per_point)
    lines.append(axis)
    ticks = "         "
    for multiplier in multipliers:
        ticks += f"{multiplier:^{width_per_point}.2f}"
    lines.append(ticks + "  (heap / min heap, log spaced)")
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={name}" for i, name in enumerate(names)
    )
    lines.append("        " + legend + "   (* = curves coincide)")
    return "\n".join(lines)
