"""Analysis layer: sweeps, normalisation, MMU curves, table rendering."""

from .compare import (
    ArtefactError,
    CompareResult,
    MetricDelta,
    compare_artefacts,
    compare_metrics,
    extract_metrics,
    metric_direction,
)
from .mmu import (
    default_windows,
    max_pause,
    mmu,
    mmu_curve,
    overall_utilisation,
)
from .profile import (
    attribution_table,
    geometry_heatmap,
    mmu_table,
    pause_table,
    render_profile,
    survival_by_label_table,
    survival_table,
)
from .series import (
    GAP,
    best_value,
    geomean_across,
    geometric_mean,
    improvement_percent,
    relative_to_best,
)
from .slo import (
    frontier_series,
    render_frontier,
    render_frontier_comparison,
    render_search_results,
)
from .sweep import MAX_RATIO, PAPER_POINTS, SweepResult, heap_multipliers, sweep
from .tables import format_bytes, render_mmu, render_series, render_table

__all__ = [
    "ArtefactError",
    "CompareResult",
    "GAP",
    "MAX_RATIO",
    "MetricDelta",
    "PAPER_POINTS",
    "SweepResult",
    "attribution_table",
    "best_value",
    "compare_artefacts",
    "compare_metrics",
    "default_windows",
    "extract_metrics",
    "metric_direction",
    "format_bytes",
    "frontier_series",
    "geomean_across",
    "geometric_mean",
    "geometry_heatmap",
    "heap_multipliers",
    "improvement_percent",
    "max_pause",
    "mmu",
    "mmu_curve",
    "mmu_table",
    "overall_utilisation",
    "pause_table",
    "relative_to_best",
    "render_frontier",
    "render_frontier_comparison",
    "render_mmu",
    "render_profile",
    "render_search_results",
    "render_series",
    "render_table",
    "survival_by_label_table",
    "survival_table",
    "sweep",
]
