"""Analysis layer: sweeps, normalisation, MMU curves, table rendering."""

from .mmu import (
    default_windows,
    max_pause,
    mmu,
    mmu_curve,
    overall_utilisation,
)
from .series import (
    GAP,
    best_value,
    geomean_across,
    geometric_mean,
    improvement_percent,
    relative_to_best,
)
from .sweep import MAX_RATIO, PAPER_POINTS, SweepResult, heap_multipliers, sweep
from .tables import format_bytes, render_mmu, render_series, render_table

__all__ = [
    "GAP",
    "MAX_RATIO",
    "PAPER_POINTS",
    "SweepResult",
    "best_value",
    "default_windows",
    "format_bytes",
    "geomean_across",
    "geometric_mean",
    "heap_multipliers",
    "improvement_percent",
    "max_pause",
    "mmu",
    "mmu_curve",
    "overall_utilisation",
    "relative_to_best",
    "render_mmu",
    "render_series",
    "render_table",
    "sweep",
]
