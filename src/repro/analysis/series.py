"""Series arithmetic for the paper's figures.

Every performance plot in the paper shows time *relative to the best
result in the figure* (left axis) against *heap size relative to the
minimum heap size* (log x-axis), and multi-benchmark figures use the
geometric mean across the six benchmarks.  These helpers implement that
presentation exactly, including the paper's convention that failed runs
(collector could not complete at that heap size) simply leave a gap in
the curve.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

#: Value used for gaps (runs that failed at that heap size).
GAP = None


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean requires positive values: {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_across(series_list: Sequence[Sequence[Optional[float]]]) -> List[Optional[float]]:
    """Pointwise geometric mean of aligned series; a gap in any input
    leaves a gap in the mean (the paper's missing-point convention)."""
    if not series_list:
        return []
    length = len(series_list[0])
    if any(len(s) != length for s in series_list):
        raise ValueError("series are not aligned")
    out: List[Optional[float]] = []
    for i in range(length):
        column = [s[i] for s in series_list]
        if any(v is None for v in column):
            out.append(GAP)
        else:
            out.append(geometric_mean(column))
    return out


def relative_to_best(series: Dict[str, List[Optional[float]]]) -> Dict[str, List[Optional[float]]]:
    """Normalise every curve by the single best (lowest) value in the
    figure, so the best point sits at 1.0 (the paper's left axes)."""
    best = None
    for values in series.values():
        for v in values:
            if v is not None and (best is None or v < best):
                best = v
    if best is None or best <= 0:
        return {name: list(values) for name, values in series.items()}
    return {
        name: [None if v is None else v / best for v in values]
        for name, values in series.items()
    }


def best_value(series: Dict[str, List[Optional[float]]]) -> Optional[float]:
    """The figure-wide best (minimum) value, or None if all gaps."""
    values = [
        v for curve in series.values() for v in curve if v is not None
    ]
    return min(values) if values else None


def improvement_percent(baseline: float, contender: float) -> float:
    """How much faster ``contender`` is than ``baseline``, as a percent of
    baseline (the paper's "up to 40%, on average 5 to 10%" phrasing)."""
    return 100.0 * (baseline - contender) / baseline
