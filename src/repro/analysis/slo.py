"""Rendering of SLO artefacts: frontier tables, series, search summaries.

The SLO layer's counterpart of :mod:`repro.analysis.tables`: a frontier
as an aligned console table (one row per offered rate, the distilled GC
cost alongside the raw percentiles), several frontiers as a figure-shaped
series (rate ladder x collector), and max-rate searches as a ranking.
Everything consumes the dataclasses of :mod:`repro.slo` — no re-running,
so artefacts can be re-rendered from saved JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .tables import format_bytes, render_table

__all__ = [
    "frontier_series",
    "render_frontier",
    "render_frontier_comparison",
    "render_search_results",
]


def render_frontier(frontier) -> str:
    """One frontier as a console table (one row per offered rate)."""
    headers = [
        "rate(rps)", "req", "p50", "p99", "p99.9", "max",
        "queue", "GCs", "gc%", "mmu", "gc-overhead%", "p99-infl",
    ]
    rows = []
    for p in frontier.points:
        if p.distilled is not None:
            overhead = f"{p.distilled.overhead_pct:8.2f}"
            inflation = f"{p.distilled.p99_inflation:6.3f}"
            if not p.distilled.clean:
                overhead += "*"
        else:
            overhead, inflation = "--", "--"
        status = "" if p.completed else "  FAIL"
        rows.append([
            f"{p.rate_rps:9.0f}",
            f"{p.requests}",
            f"{p.p50_cycles:10.1f}",
            f"{p.p99_cycles:10.1f}",
            f"{p.p999_cycles:10.1f}",
            f"{p.max_cycles:10.1f}",
            f"{p.queue_peak}",
            f"{p.collections}",
            f"{100 * p.gc_fraction:5.1f}",
            f"{p.mmu:6.4f}",
            overhead,
            inflation + status,
        ])
    title = (
        f"SLO frontier: {frontier.benchmark} / {frontier.collector} @ "
        f"{format_bytes(frontier.heap_bytes)} "
        f"(seed={frontier.seed}, scale={frontier.scale:g}, "
        f"mmu window={frontier.mmu_window_fraction:g} of run)"
    )
    notes = []
    if any(p.distilled is not None and not p.distilled.clean
           for p in frontier.points):
        notes.append("* no-GC reference collected; overhead is a lower bound")
    body = render_table(headers, rows, title)
    return body + ("\n" + "\n".join(notes) if notes else "")


def frontier_series(
    frontiers: Sequence,
    field: str = "p99_cycles",
) -> Tuple[List[float], Dict[str, List[Optional[float]]]]:
    """Figure-shaped data: the union rate ladder and one series per
    frontier (keyed by collector), ``None`` where a frontier lacks the
    rate.  ``field`` is any :class:`~repro.slo.frontier.FrontierPoint`
    attribute, or ``overhead_pct`` / ``p99_inflation`` from the
    distilled cost."""
    ladder = sorted({p.rate_rps for f in frontiers for p in f.points})
    series: Dict[str, List[Optional[float]]] = {}
    for frontier in frontiers:
        by_rate = {p.rate_rps: p for p in frontier.points}
        values: List[Optional[float]] = []
        for rate in ladder:
            point = by_rate.get(rate)
            if point is None:
                values.append(None)
            elif hasattr(point, field):
                values.append(float(getattr(point, field)))
            elif point.distilled is not None:
                values.append(float(getattr(point.distilled, field)))
            else:
                values.append(None)
        series[frontier.collector] = values
    return ladder, series


def render_frontier_comparison(
    frontiers: Sequence,
    field: str = "p99_cycles",
    title: str = "",
    value_format: str = "{:12.1f}",
) -> str:
    """Several frontiers side by side: one row per rate, one column per
    collector — the Beltway-vs-baseline view of the frontier."""
    ladder, series = frontier_series(frontiers, field)
    headers = ["rate(rps)"] + list(series.keys())
    rows = []
    for i, rate in enumerate(ladder):
        row = [f"{rate:9.0f}"]
        for name in series:
            value = series[name][i]
            row.append("--" if value is None else value_format.format(value))
        rows.append(row)
    return render_table(
        headers, rows, title or f"frontier comparison ({field})"
    )


def render_search_results(results: Sequence, slo_description: str = "") -> str:
    """Max-sustainable-rate searches as a ranking table."""
    headers = ["collector", "heap", "max rate(rps)", "status", "probes"]
    rows = []
    for result in sorted(
        results, key=lambda r: (-r.rate_rps, r.collector, r.heap_bytes)
    ):
        rows.append([
            result.collector,
            format_bytes(result.heap_bytes),
            f"{result.rate_rps}",
            "knee" if result.saturated else "unsaturated",
            f"{result.probes}",
        ])
    title = "max sustainable rate"
    if slo_description:
        title += f" under {slo_description}"
    return render_table(headers, rows, title)
