"""Heap-size sweeps: the x-axis of every figure in the paper.

The paper ran each program "on 33 heap sizes, ranging from the smallest
one in which the program completes up to 3 times that size" (§4.1), with
a log-scaled x-axis.  :func:`heap_multipliers` reproduces that grid (the
point count is configurable so the quick benchmark targets can use a
coarser grid), and :func:`sweep` executes one collector across it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..runtime.vm import EXPERIMENT_FRAME_SHIFT
from ..sim.stats import RunStats

FRAME_BYTES = 1 << EXPERIMENT_FRAME_SHIFT

#: The paper's grid size.
PAPER_POINTS = 33
#: The paper's largest heap, relative to the minimum.
MAX_RATIO = 3.0


def heap_multipliers(points: int = PAPER_POINTS, max_ratio: float = MAX_RATIO) -> List[float]:
    """Log-spaced multipliers from 1.0 to ``max_ratio`` inclusive."""
    if points < 2:
        raise ValueError("a sweep needs at least two points")
    step = max_ratio ** (1.0 / (points - 1))
    return [step ** i for i in range(points)]


@dataclass
class SweepResult:
    """All runs of one (benchmark, collector) across the heap grid."""

    benchmark: str
    collector: str
    min_heap_bytes: int
    multipliers: List[float]
    runs: List[RunStats] = field(default_factory=list)

    @property
    def heap_sizes(self) -> List[int]:
        return [r.heap_bytes for r in self.runs]

    def series(self, metric: str) -> List[Optional[float]]:
        """Metric values aligned with the grid; failed runs become gaps."""
        out: List[Optional[float]] = []
        for run in self.runs:
            if not run.completed:
                out.append(None)
                continue
            value = getattr(run, metric)
            out.append(float(value))
        return out

    def total_time_series(self) -> List[Optional[float]]:
        return self.series("total_cycles")

    def gc_time_series(self) -> List[Optional[float]]:
        return self.series("gc_cycles")

    def gc_fraction_series(self) -> List[Optional[float]]:
        return self.series("gc_fraction")


def sweep(
    benchmark: str,
    collector: str,
    min_heap_bytes: int,
    multipliers: Sequence[float],
    scale: float = 1.0,
    seed: int = 13,
) -> SweepResult:
    """Run ``collector`` on ``benchmark`` at every heap size in the grid.

    Heap sizes are rounded to frame granularity; the minimum is the
    *benchmark's* minimum (under the baseline collector), so collectors
    with smaller minima simply succeed below 1.0× and collectors with
    larger minima leave gaps — exactly how the paper's figures read.
    """
    from ..harness.runner import run_benchmark  # local: avoids import cycle

    result = SweepResult(
        benchmark=benchmark,
        collector=collector,
        min_heap_bytes=min_heap_bytes,
        multipliers=list(multipliers),
    )
    for multiplier in multipliers:
        heap = int(min_heap_bytes * multiplier)
        heap = max(2 * FRAME_BYTES, (heap // FRAME_BYTES) * FRAME_BYTES)
        result.runs.append(
            run_benchmark(benchmark, collector, heap, scale=scale, seed=seed)
        )
    return result
