"""Heap-size sweeps: the x-axis of every figure in the paper.

The paper ran each program "on 33 heap sizes, ranging from the smallest
one in which the program completes up to 3 times that size" (§4.1), with
a log-scaled x-axis.  :func:`heap_multipliers` reproduces that grid (the
point count is configurable so the quick benchmark targets can use a
coarser grid), :func:`sweep` executes one collector across it, and
:func:`sweep_grid` fans a whole (benchmark, collector, multiplier) grid
out over worker processes.

Every cell of a sweep is an independent fixed-seed simulation, so the
parallel paths (``parallel=True``) return ``RunStats`` bit-identical to
the serial loop — the experiment layer can use either interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.vm import EXPERIMENT_FRAME_SHIFT
from ..sim.stats import RunStats

FRAME_BYTES = 1 << EXPERIMENT_FRAME_SHIFT

#: The paper's grid size.
PAPER_POINTS = 33
#: The paper's largest heap, relative to the minimum.
MAX_RATIO = 3.0


def heap_multipliers(points: int = PAPER_POINTS, max_ratio: float = MAX_RATIO) -> List[float]:
    """Log-spaced multipliers from 1.0 to ``max_ratio`` inclusive."""
    if points < 2:
        raise ValueError("a sweep needs at least two points")
    step = max_ratio ** (1.0 / (points - 1))
    return [step ** i for i in range(points)]


@dataclass
class SweepResult:
    """All runs of one (benchmark, collector) across the heap grid."""

    benchmark: str
    collector: str
    min_heap_bytes: int
    multipliers: List[float]
    runs: List[RunStats] = field(default_factory=list)
    #: How the grid actually executed: ``"parallel"`` (process pool) or
    #: ``"serial"`` — which may differ from the ``parallel=`` argument
    #: when the auto-fallback vetoes a pool (one effective CPU, one job;
    #: see :func:`repro.harness.runner.should_parallelise`).
    execution_mode: str = "serial"

    @property
    def heap_sizes(self) -> List[int]:
        return [r.heap_bytes for r in self.runs]

    def series(self, metric: str) -> List[Optional[float]]:
        """Metric values aligned with the grid; failed runs become gaps."""
        out: List[Optional[float]] = []
        for run in self.runs:
            if not run.completed:
                out.append(None)
                continue
            value = getattr(run, metric)
            out.append(float(value))
        return out

    def total_time_series(self) -> List[Optional[float]]:
        return self.series("total_cycles")

    def gc_time_series(self) -> List[Optional[float]]:
        return self.series("gc_cycles")

    def gc_fraction_series(self) -> List[Optional[float]]:
        return self.series("gc_fraction")


def _heap_at(min_heap_bytes: int, multiplier: float) -> int:
    """Heap size for one grid point, rounded to frame granularity."""
    heap = int(min_heap_bytes * multiplier)
    return max(2 * FRAME_BYTES, (heap // FRAME_BYTES) * FRAME_BYTES)


def sweep(
    benchmark: str,
    collector: str,
    min_heap_bytes: int,
    multipliers: Sequence[float],
    scale: float = 1.0,
    seed: int = 13,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    store=None,
    bus=None,
) -> SweepResult:
    """Run ``collector`` on ``benchmark`` at every heap size in the grid.

    Heap sizes are rounded to frame granularity; the minimum is the
    *benchmark's* minimum (under the baseline collector), so collectors
    with smaller minima simply succeed below 1.0× and collectors with
    larger minima leave gaps — exactly how the paper's figures read.

    ``parallel`` defaults to the auto-decision
    (:func:`repro.harness.runner.should_parallelise`, the same default as
    :func:`sweep_grid`): the grid fans out over worker processes when a
    pool can pay for itself, and runs in-process on a single effective
    CPU or when ``parallel=False`` rules the pool out explicitly.
    Results are bit-identical either way;
    ``SweepResult.execution_mode`` records which path actually ran.
    With a :class:`~repro.grid.store.ResultStore` as ``store``,
    previously computed cells are served from disk and fresh ones are
    checkpointed as they finish.
    """
    # Local imports: avoids an import cycle with the harness.
    from ..harness.runner import run_many, should_parallelise

    result = SweepResult(
        benchmark=benchmark,
        collector=collector,
        min_heap_bytes=min_heap_bytes,
        multipliers=list(multipliers),
    )
    jobs = [
        (benchmark, collector, _heap_at(min_heap_bytes, m), scale, seed)
        for m in result.multipliers
    ]
    use_pool = should_parallelise(
        len(jobs), parallel is not False, max_workers
    )
    result.execution_mode = "parallel" if use_pool else "serial"
    result.runs.extend(
        run_many(jobs, parallel=use_pool, max_workers=max_workers, store=store, bus=bus)
    )
    return result


def sweep_grid(
    benchmarks: Sequence[str],
    collectors: Sequence[str],
    min_heap_bytes: Dict[str, int],
    multipliers: Sequence[float],
    scale: float = 1.0,
    seed: int = 13,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    store=None,
    bus=None,
) -> Dict[Tuple[str, str], SweepResult]:
    """Run the full (benchmark, collector, multiplier) grid of a figure.

    This is the experiment layer's unit of parallelism: the whole grid is
    flattened into independent jobs and handed to
    :func:`repro.harness.runner.run_many` in one batch, so worker
    processes stay busy across benchmark boundaries instead of draining
    per-sweep.  ``parallel`` defaults to the same auto-decision as
    :func:`sweep`; ``store`` short-circuits previously computed cells.
    Returns one :class:`SweepResult` per (benchmark, collector) pair,
    each bit-identical to what serial :func:`sweep` calls would produce
    for the same seed.
    """
    # Local imports: avoids an import cycle with the harness.
    from ..harness.runner import run_many, should_parallelise

    multipliers = list(multipliers)
    pairs = [(b, c) for b in benchmarks for c in collectors]
    jobs = [
        (b, c, _heap_at(min_heap_bytes[b], m), scale, seed)
        for (b, c) in pairs
        for m in multipliers
    ]
    use_pool = should_parallelise(
        len(jobs), parallel is not False, max_workers
    )
    mode = "parallel" if use_pool else "serial"
    runs = run_many(jobs, parallel=use_pool, max_workers=max_workers, store=store, bus=bus)
    out: Dict[Tuple[str, str], SweepResult] = {}
    for i, (b, c) in enumerate(pairs):
        result = SweepResult(
            benchmark=b,
            collector=c,
            min_heap_bytes=min_heap_bytes[b],
            multipliers=list(multipliers),
            execution_mode=mode,
        )
        result.runs.extend(runs[i * len(multipliers) : (i + 1) * len(multipliers)])
        out[(b, c)] = result
    return out
