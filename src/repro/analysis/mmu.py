"""Minimum mutator utilisation (Cheng & Blelloch), for Fig. 11.

Mutator utilisation over an interval [t0, t1) is the fraction of that
interval the mutator (not the collector) was running.  A point (w, m)
lies on the MMU curve if every window of length w inside the run has
utilisation at least m.  MMU curves are monotonically non-decreasing in
w; the x-intercept is the maximum pause and the asymptote is overall
throughput (§4.3) — properties the tests assert.

The minimum over windows of a fixed length is attained at a window whose
start coincides with a pause start (sliding the window left from there
can only add pause time at the front faster than it removes at the back),
so the implementation evaluates only those O(n) anchors with prefix sums,
O(n log n) overall per window length.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

Pause = Tuple[float, float]


def pause_time_in(
    starts: Sequence[float],
    ends: Sequence[float],
    prefix: Sequence[float],
    t0: float,
    t1: float,
) -> float:
    """Total pause time inside [t0, t1), given sorted pauses + prefix sums.

    Public so the incremental MMU (:mod:`repro.obs.profiler.pauses`) can
    evaluate window anchors with *exactly* this arithmetic — the
    point-identity between streamed and post-hoc curves depends on both
    sides sharing this function."""
    if t1 <= t0:
        return 0.0
    # Pauses overlapping [t0, t1) are exactly indices [i, j): any pause
    # straddling the window has end > t0 and start < t1, so falls inside.
    i = bisect.bisect_right(ends, t0)  # first pause ending after t0
    j = bisect.bisect_left(starts, t1)  # first pause starting at/after t1
    if i >= j:
        return 0.0
    total = prefix[j] - prefix[i]
    # Clip the partial pause at the left edge.
    if i < j and starts[i] < t0:
        total -= t0 - starts[i]
    # Clip the partial pause at the right edge.
    if j > 0 and ends[j - 1] > t1:
        total -= ends[j - 1] - t1
    return max(0.0, total)


#: Backwards-compatible private alias (pre-profiler name).
_pause_time_in = pause_time_in


def mmu(pauses: Sequence[Pause], total_time: float, window: float) -> float:
    """Minimum mutator utilisation over all windows of length ``window``."""
    if total_time <= 0:
        return 1.0
    window = min(window, total_time)
    if window <= 0:
        return 0.0 if pauses else 1.0
    starts = [p[0] for p in pauses]
    ends = [p[1] for p in pauses]
    prefix = [0.0]
    for s, e in pauses:
        prefix.append(prefix[-1] + (e - s))
    worst = 0.0
    # Candidate anchors: windows starting at each pause start, windows
    # ending at each pause end, and the two run boundaries.
    anchors = [0.0, total_time - window]
    anchors.extend(s for s in starts)
    anchors.extend(e - window for e in ends)
    best_util = 1.0
    for t0 in anchors:
        t0 = min(max(t0, 0.0), total_time - window)
        paused = pause_time_in(starts, ends, prefix, t0, t0 + window)
        util = 1.0 - paused / window
        if util < best_util:
            best_util = util
    return max(0.0, best_util)


def mmu_curve(
    pauses: Sequence[Pause], total_time: float, windows: Sequence[float]
) -> List[Tuple[float, float]]:
    """(window, MMU) points for the given window lengths."""
    return [(w, mmu(pauses, total_time, w)) for w in windows]


def max_pause(pauses: Sequence[Pause]) -> float:
    return max((e - s for s, e in pauses), default=0.0)


def overall_utilisation(pauses: Sequence[Pause], total_time: float) -> float:
    """The MMU asymptote: fraction of the whole run spent in the mutator."""
    if total_time <= 0:
        return 1.0
    paused = sum(e - s for s, e in pauses)
    return 1.0 - paused / total_time


def mmu_from_events(
    events: Sequence[object], total_time: float, window: float
) -> float:
    """:func:`mmu` over the pause timeline of a telemetry event stream
    (flat dicts from :func:`repro.obs.load_jsonl` or ``Event`` objects)."""
    from ..obs import pauses_from_events

    return mmu(pauses_from_events(events), total_time, window)


def mmu_curve_from_events(
    events: Sequence[object], total_time: float, windows: Sequence[float]
) -> List[Tuple[float, float]]:
    """:func:`mmu_curve` from a telemetry event stream."""
    from ..obs import pauses_from_events

    return mmu_curve(pauses_from_events(events), total_time, windows)


def utilisation_from_counters(snapshot) -> float:
    """Overall mutator utilisation from a Prometheus-style counter
    snapshot (``CounterSink.snapshot()`` or a run's counter export):
    ``1 - gc_pause_cycles_total / run_total_cycles``."""
    total = float(snapshot.get("run_total_cycles", 0.0))
    if total <= 0:
        return 1.0
    paused = float(snapshot.get("gc_pause_cycles_total", 0.0))
    return 1.0 - paused / total


def default_windows(total_time: float, points: int = 24) -> List[float]:
    """Log-spaced window lengths from ~1e-4 of the run up to the run."""
    import math

    if total_time <= 0:
        return [1.0]
    lo = total_time * 1e-4
    hi = total_time
    step = (hi / lo) ** (1.0 / (points - 1))
    return [lo * step ** i for i in range(points)]
