"""Regenerate profiler figures from a :class:`ProfileReport`.

The profiler's report (``RunReport.profile`` / ``beltway-bench profile
--json``) is self-contained: every table here is a pure function of the
report (or of its dict/JSON round trip), so survival curves, pause
percentiles, incremental-MMU ladders and heap-geometry heatmaps can be
re-rendered — and re-styled — without re-running the benchmark.  Accepts
either the live :class:`~repro.obs.profiler.ProfileReport` or the plain
dict a JSON file parses to.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from .tables import render_table

ReportLike = Union[Dict[str, Any], object]

#: Canonical attribution-component order (JSON round trips sort dict
#: keys, so renderers must not depend on insertion order).
COMPONENT_ORDER = ("setup", "copy", "scan", "roots", "remset", "free", "boot")


def _ordered_components(components: Dict[str, Any]) -> List[str]:
    known = [name for name in COMPONENT_ORDER if name in components]
    return known + sorted(set(components) - set(known))


def _as_dict(report: ReportLike) -> Dict[str, Any]:
    """A ProfileReport or its (parsed-JSON) dict, as the dict."""
    if isinstance(report, dict):
        return report
    to_dict = getattr(report, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"expected a ProfileReport or its dict, got {type(report).__name__}"
        )
    return to_dict()


def survival_table(report: ReportLike) -> str:
    """The survival curve: byte-weighted deaths by log2 age bucket."""
    data = _as_dict(report)
    rows = []
    for row in data.get("survival_curve", []):
        rows.append([
            f"{row['age_lo_bytes']}..{row['age_hi_bytes']}",
            str(row["died_objects"]),
            str(row["died_bytes"]),
            str(row["censored_bytes"]),
            f"{row['surviving_fraction']:.3f}",
        ])
    return render_table(
        ["age (bytes alloc'd)", "died objs", "died bytes", "censored bytes",
         "surviving"],
        rows,
        title=f"survival curve: {data.get('benchmark', '?')}"
        f"/{data.get('collector', '?')}",
    )


def survival_by_label_table(report: ReportLike) -> str:
    """Per-belt/space survivor fractions aggregated over the whole run."""
    data = _as_dict(report)
    rows = []
    for row in data.get("survival_by_label", []):
        rows.append([
            row["label"],
            str(row["collections"]),
            str(row["survived_bytes"]),
            str(row["died_bytes"]),
            f"{row['survivor_fraction']:.3f}",
        ])
    return render_table(
        ["label", "collections", "survived bytes", "died bytes",
         "survivor fraction"],
        rows,
        title="survivor fraction by belt/space",
    )


def pause_table(report: ReportLike) -> str:
    """The streaming percentile summary as one table row."""
    data = _as_dict(report)
    p = data.get("pauses", {})
    row = [
        f"{p.get('count', 0):.0f}",
        f"{p.get('total', 0):.0f}",
        f"{p.get('mean', 0):.0f}",
        f"{p.get('p50', 0):.0f}",
        f"{p.get('p90', 0):.0f}",
        f"{p.get('p99', 0):.0f}",
        f"{p.get('max', 0):.0f}",
    ]
    return render_table(
        ["pauses", "total", "mean", "p50", "p90", "p99", "max"],
        [row],
        title="pause percentiles (cycles)",
    )


def mmu_table(report: ReportLike) -> str:
    """The incrementally computed MMU ladder with worst-window locations."""
    data = _as_dict(report)
    worst = {w["window"]: w for w in data.get("worst_windows", [])}
    rows = []
    for window, value in data.get("mmu_curve", []):
        at = worst.get(window)
        rows.append([
            f"{window:.0f}",
            f"{value:.4f}",
            f"{at['start']:.0f}" if at else "--",
            f"{at['paused']:.0f}" if at else "--",
        ])
    return render_table(
        ["window", "MMU", "worst start", "paused"],
        rows,
        title="minimum mutator utilisation (incremental)",
    )


def geometry_heatmap(report: ReportLike, value: str = "frames") -> str:
    """The heap-geometry timeline: per-label frames (or words) over time."""
    data = _as_dict(report)
    labels: List[str] = list(data.get("geometry_labels", []))
    index = 0 if value == "frames" else 1
    rows = []
    for row in data.get("geometry", []):
        cells = [f"{row['time']:.0f}", row["trigger"]]
        for label in labels:
            cell = row["occupancy"].get(label)
            cells.append(str(cell[index]) if cell else "0")
        rows.append(cells)
    return render_table(
        ["time", "trigger", *labels],
        rows,
        title=f"heap geometry ({value} per label)",
    )


def attribution_table(report: ReportLike) -> str:
    """Whole-run collection-cost decomposition by component."""
    data = _as_dict(report)
    totals = data.get("attribution_totals", {})
    components = totals.get("components", {})
    shares = totals.get("shares", {})
    rows = [
        [name, f"{components[name]:.0f}", f"{100.0 * shares.get(name, 0.0):.1f}%"]
        for name in _ordered_components(components)
    ]
    return render_table(
        ["component", "cycles", "share"],
        rows,
        title="collection cost attribution",
    )


def render_profile(report: ReportLike) -> str:
    """Every table, in report order — the console twin of ``to_markdown``."""
    return "\n\n".join([
        survival_by_label_table(report),
        survival_table(report),
        pause_table(report),
        mmu_table(report),
        attribution_table(report),
        geometry_heatmap(report),
    ])
