"""Console rendering of the paper's tables and figure series.

The harness prints each reproduced artefact as text: Table 1 as the
paper's row layout, figures as aligned columns of (heap multiplier,
value-per-collector) — "the same rows/series the paper reports", readable
in a terminal and easy to diff between runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bench.spec import KB


def format_bytes(nbytes: int) -> str:
    if nbytes >= 1024 * KB:
        return f"{nbytes / (1024 * KB):.1f}MB"
    return f"{nbytes / KB:.1f}KB"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Monospace table with per-column widths."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    multipliers: Sequence[float],
    series: Dict[str, List[Optional[float]]],
    title: str,
    value_format: str = "{:.3f}",
    gap: str = "  --  ",
) -> str:
    """A figure as text: one row per heap size, one column per collector."""
    headers = ["heap/min"] + list(series.keys())
    rows = []
    for i, multiplier in enumerate(multipliers):
        row = [f"{multiplier:6.2f}x"]
        for name in series:
            value = series[name][i]
            row.append(gap if value is None else value_format.format(value))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_mmu(
    curves: Dict[str, List[tuple]],
    title: str,
) -> str:
    """MMU curves as text: rows are window sizes, columns collectors."""
    names = list(curves.keys())
    windows = [w for w, _ in curves[names[0]]]
    headers = ["window"] + names
    rows = []
    for i, window in enumerate(windows):
        row = [f"{window:12.0f}"]
        for name in names:
            row.append(f"{curves[name][i][1]:.3f}")
        rows.append(row)
    return render_table(headers, rows, title=title)
