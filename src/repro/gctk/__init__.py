"""Independent baseline collectors (the paper's GCTk comparison points).

Selected from the VM with the ``"gctk:"`` prefix:

* ``gctk:SS`` — classic semi-space
* ``gctk:Appel`` — flexible-nursery generational [Appel 1989]
* ``gctk:Fixed.25`` — fixed-size-nursery generational (25% of usable)
"""

from __future__ import annotations

import re

from ..errors import ConfigError
from .appel import AppelGctk
from .base import GctkPlan
from .copying import cheney_trace
from .fixednursery import FixedNurseryGctk
from .semispace import SemiSpaceGctk
from .ssb import BoundaryBarrier, SequentialStoreBuffer


def make_gctk_plan(name, space, model, boot, debug_verify=False, kernels=None):
    """Instantiate a gctk baseline by name (without the ``gctk:`` prefix)."""
    token = name.strip().lower()
    if token in ("ss", "semispace", "semi-space"):
        return SemiSpaceGctk(space, model, boot, debug_verify, kernels=kernels)
    if token in ("appel", "ba2"):
        return AppelGctk(space, model, boot, debug_verify, kernels=kernels)
    match = re.fullmatch(r"fixed\.(\d+)", token)
    if match:
        return FixedNurseryGctk(space, model, boot, int(match.group(1)),
                                debug_verify, kernels=kernels)
    raise ConfigError(f"unknown gctk collector {name!r}")


__all__ = [
    "AppelGctk",
    "BoundaryBarrier",
    "FixedNurseryGctk",
    "GctkPlan",
    "SemiSpaceGctk",
    "SequentialStoreBuffer",
    "cheney_trace",
    "make_gctk_plan",
]
