"""The classic address-order boundary barrier and its store buffer.

The paper's tuned generational baseline uses "a very fast address-order
write barrier" [Blackburn & McKinley, ISMM'02]: the nursery sits on one
side of a boundary and every store that creates an old→young pointer is
appended to a sequential store buffer (SSB).  Two behavioural differences
from the Beltway frame barrier matter to the evaluation and are modelled
faithfully:

* the SSB does not deduplicate — repeated stores of the same slot are
  re-processed at the next collection;
* boot-image writes are *not* caught, so the collector must rescan the
  boot image at every collection (§4.2.1) — charged via
  ``boot_slots_scanned``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from ..core.barrier import BarrierStats, compile_fast_path
from ..errors import HeapCorruption, InvalidAddress
from ..heap.space import AddressSpace

#: Boundary-barrier rendition of the compiled mutator store path: same
#: decode and accounting as the Beltway variant (see
#: ``core.barrier._WRITE_FIELD_SRC``), but the record condition is nursery
#: membership and the slow path appends to the non-deduplicating SSB.
_BOUNDARY_WRITE_FIELD_SRC = """\
def write_ref_field(obj, index, value):
    if obj & 3:
        raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
    s = obj >> __SHIFT__
    frame = (
        _space._cache_frame
        if s == _space._cache_index
        else _resolve(s, obj + 4, "load from")
    )
    words = frame.words
    base = (obj >> 2) & __WORD_MASK__
    _space.load_count += 1
    desc = _by_addr.get(words[base + 1])
    if desc is None:
        desc = _types.by_addr(words[base + 1])
    code = desc.ref_code
    count = words[base + 2] if code < 0 else code
    _space.load_count += 1
    if not 0 <= index < count:
        raise HeapCorruption(
            f"ref slot {index} out of range [0,{count}) for "
            f"{desc.name} object {obj:#x}"
        )
    _stats.fast_path += 1
    if value == 0:
        _stats.null_stores += 1
        words[base + 3 + index] = 0
        _space.store_count += 1
        return
    nursery = _barrier.nursery_frames
    if (value >> __SHIFT__) in nursery and s not in nursery:
        _stats.slow_path += 1
        _append(obj + ((index + 3) << 2))
    words[base + 3 + index] = value
    _space.store_count += 1
"""

_BOUNDARY_INIT_OBJECT_SRC = """\
def init_object(addr, desc, length):
    if addr & 3:
        raise InvalidAddress(f"misaligned store to {addr:#x}")
    s = addr >> __SHIFT__
    frame = (
        _space._cache_frame
        if s == _space._cache_index
        else _resolve(s, addr, "store to")
    )
    words = frame.words
    base = (addr >> 2) & __WORD_MASK__
    words[base] = 0
    words[base + 2] = length
    value = desc.addr
    _stats.fast_path += 1
    if value == 0:
        _stats.null_stores += 1
        words[base + 1] = 0
        _space.store_count += 3
        return
    nursery = _barrier.nursery_frames
    if (value >> __SHIFT__) in nursery and s not in nursery:
        _stats.slow_path += 1
        _append(addr + 4)
    words[base + 1] = value
    _space.store_count += 3
"""


class SequentialStoreBuffer:
    """Slot addresses of recorded old→young stores (duplicates kept)."""

    def __init__(self) -> None:
        self.slots: List[int] = []
        self.inserts = 0
        self.duplicate_inserts = 0  # interface parity; SSBs never dedup

    def append(self, slot_addr: int) -> None:
        self.slots.append(slot_addr)
        self.inserts += 1

    def clear(self) -> None:
        self.slots.clear()

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def total_entries(self) -> int:
        return len(self.slots)

    def counters(self) -> Dict[str, float]:
        """Prometheus-style export, key-compatible with
        :meth:`repro.core.remset.RememberedSets.counters` (an SSB has no
        per-pair structure, so the pair metrics are 0)."""
        return {
            "remset_inserts_total": float(self.inserts),
            "remset_duplicates_total": float(self.duplicate_inserts),
            "remset_entries": float(len(self.slots)),
            "remset_pairs": 0.0,
            "remset_pairs_scanned_total": 0.0,
        }


class BoundaryBarrier:
    """Remember stores whose target is in the nursery and source is not."""

    def __init__(self, space: AddressSpace, ssb: SequentialStoreBuffer):
        self.space = space
        self.ssb = ssb
        self.stats = BarrierStats()
        #: Frame indices currently forming the nursery ("high memory").
        self.nursery_frames: Set[int] = set()

    def write_ref(self, source_obj: int, slot_addr: int, target: int) -> None:
        space = self.space
        shift = space.frame_shift
        self.stats.fast_path += 1
        if target == 0:
            self.stats.null_stores += 1
            space.store(slot_addr, target)
            return
        if (target >> shift) in self.nursery_frames and (
            (source_obj >> shift) not in self.nursery_frames
        ):
            self.stats.slow_path += 1
            self.ssb.append(slot_addr)
        space.store(slot_addr, target)

    # ------------------------------------------------------------------
    # Compiled fast paths (ISSUE 2)
    # ------------------------------------------------------------------
    def _namespace(self, model) -> Dict[str, object]:
        space = self.space
        return {
            "_space": space,
            "_resolve": space._resolve,
            "_stats": self.stats,
            "_barrier": self,
            "_append": self.ssb.append,
            "_by_addr": model.types._by_addr,
            "_types": model.types,
            "InvalidAddress": InvalidAddress,
            "HeapCorruption": HeapCorruption,
        }

    def _substitutions(self) -> Dict[str, int]:
        return {
            "__SHIFT__": self.space.frame_shift,
            "__WORD_MASK__": self.space._word_mask,
        }

    def compile_write_field(self, model) -> Callable[[int, int, int], None]:
        """Compiled slot decode + boundary barrier + store (one call frame)."""
        return compile_fast_path(
            _BOUNDARY_WRITE_FIELD_SRC, "write_ref_field",
            self._substitutions(), self._namespace(model),
        )

    def compile_init_object(self, model) -> Callable[[int, object, int], None]:
        """Compiled allocation-initialisation path (gctk baselines)."""
        return compile_fast_path(
            _BOUNDARY_INIT_OBJECT_SRC, "init_object",
            self._substitutions(), self._namespace(model),
        )
