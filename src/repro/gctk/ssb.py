"""The classic address-order boundary barrier and its store buffer.

The paper's tuned generational baseline uses "a very fast address-order
write barrier" [Blackburn & McKinley, ISMM'02]: the nursery sits on one
side of a boundary and every store that creates an old→young pointer is
appended to a sequential store buffer (SSB).  Two behavioural differences
from the Beltway frame barrier matter to the evaluation and are modelled
faithfully:

* the SSB does not deduplicate — repeated stores of the same slot are
  re-processed at the next collection;
* boot-image writes are *not* caught, so the collector must rescan the
  boot image at every collection (§4.2.1) — charged via
  ``boot_slots_scanned``.
"""

from __future__ import annotations

from typing import List, Set

from ..core.barrier import BarrierStats
from ..heap.space import AddressSpace


class SequentialStoreBuffer:
    """Slot addresses of recorded old→young stores (duplicates kept)."""

    def __init__(self) -> None:
        self.slots: List[int] = []
        self.inserts = 0
        self.duplicate_inserts = 0  # interface parity; SSBs never dedup

    def append(self, slot_addr: int) -> None:
        self.slots.append(slot_addr)
        self.inserts += 1

    def clear(self) -> None:
        self.slots.clear()

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def total_entries(self) -> int:
        return len(self.slots)


class BoundaryBarrier:
    """Remember stores whose target is in the nursery and source is not."""

    def __init__(self, space: AddressSpace, ssb: SequentialStoreBuffer):
        self.space = space
        self.ssb = ssb
        self.stats = BarrierStats()
        #: Frame indices currently forming the nursery ("high memory").
        self.nursery_frames: Set[int] = set()

    def write_ref(self, source_obj: int, slot_addr: int, target: int) -> None:
        space = self.space
        shift = space.frame_shift
        self.stats.fast_path += 1
        if target == 0:
            self.stats.null_stores += 1
            space.store(slot_addr, target)
            return
        if (target >> shift) in self.nursery_frames and (
            (source_obj >> shift) not in self.nursery_frames
        ):
            self.stats.slow_path += 1
            self.ssb.append(slot_addr)
        space.store(slot_addr, target)
