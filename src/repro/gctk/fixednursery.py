"""Independent fixed-size-nursery generational collector — gctk baseline.

Identical machinery to the Appel baseline except the nursery is a fixed
fraction of usable memory (usable = heap/2 under the classic half-heap
reserve).  Small nurseries collect too often and give objects too little
time to die; large nurseries squeeze the mature space and force frequent
full-heap collections — the trade-off Fig. 6 of the paper sweeps.
"""

from __future__ import annotations

from ..errors import ConfigError
from .appel import AppelGctk


class FixedNurseryGctk(AppelGctk):
    """Nursery capacity fixed at ``pct`` % of half the heap."""

    def __init__(self, space, model, boot, pct: int, debug_verify=False,
                 kernels=None):
        if not 0 < pct <= 100:
            raise ConfigError(f"fixed nursery percentage {pct} out of range")
        super().__init__(
            space, model, boot, debug_verify, name=f"gctk:Fixed.{pct}",
            kernels=kernels,
        )
        self.pct = pct
        usable_frames = space.heap_frames // 2
        self.fixed_frames = max(1, (usable_frames * pct) // 100)

    def nursery_capacity_frames(self) -> int:
        """Strictly fixed: the nursery reservation does not shrink.  In
        tight heaps this is what makes the collector "fail to perform at
        all" (Fig. 6) — the reservation plus its reserve simply do not fit
        and the run dies with OutOfMemory."""
        return self.fixed_frames

    def _needs_major(self) -> bool:
        # The nursery reservation is carved out of usable memory (the
        # non-reserve half): major once the mature space can no longer
        # coexist with it.  This is exactly why fixed-size nurseries have
        # larger minimum heaps than Appel (Fig. 6): min heap ≈
        # 2·live / (1 − pct/100) instead of 2·live.
        return (
            self.mature.num_frames + self.fixed_frames
            > self.space.heap_frames // 2
        )
