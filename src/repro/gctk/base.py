"""Shared plan scaffolding for the independent gctk baseline collectors.

These collectors deliberately share *no* code with the Beltway core beyond
the heap substrate and the result/cost shapes: the paper compares Beltway
against separately implemented, well-tuned generational collectors, and an
independent implementation also cross-validates the "Beltway 100.100
behaves like Appel" equivalence claim (Fig. 5).
"""

from __future__ import annotations

from typing import Callable, List

from ..core.collector import CollectionResult
from ..errors import OutOfMemory
from ..heap.allocator import BumpRegion
from ..heap.bootimage import BootImage
from ..heap.objectmodel import ObjectModel, TypeDescriptor
from ..heap.space import AddressSpace
from ..sanitizer.heapcheck import HeapVerifier, VerifyReport
from .ssb import BoundaryBarrier, SequentialStoreBuffer

#: Arbitrary but stable collect-order stamps so the verifier recognises
#: gctk frames as live (the boundary barrier ignores these numbers).
NURSERY_ORDER = 1
MATURE_ORDER = 2


class GctkPlan:
    """Base class: roots, barrier plumbing, allocation accounting."""

    def __init__(
        self,
        name: str,
        space: AddressSpace,
        model: ObjectModel,
        boot: BootImage,
        debug_verify: bool = False,
        kernels=None,
    ):
        self.name = name
        #: Substrate-kernel tier (repro.kernels.KernelSet) or None for the
        #: pure-Python reference paths.
        self.kernels = kernels
        self.space = space
        self.model = model
        self.boot = boot
        self.debug_verify = debug_verify
        self.ssb = SequentialStoreBuffer()
        self.remsets = self.ssb  # interface parity with BeltwayHeap
        self.barrier = BoundaryBarrier(space, self.ssb)
        # Compiled mutator fast paths (ISSUE 2), accounting-identical to
        # the layered reference paths — see BeltwayHeap and DESIGN.md.
        self.write_ref_field = self.barrier.compile_write_field(model)
        self._init_object = self.barrier.compile_init_object(model)
        self.read_ref_field, _, _ = model.compile_field_ops()
        self.root_arrays: List[List[int]] = []
        self.collections: List[CollectionResult] = []
        self.collection_listeners: List[Callable[[CollectionResult], None]] = []
        self.allocations = 0
        self.allocated_words = 0
        self._gc_count = 0
        # Compiled substrate trace engine (repro.kernels cffi tier), or
        # None for the reference cheney_trace.
        self._trace_kernel = (
            kernels.gctk_tracer(self) if kernels is not None else None
        )

    # ------------------------------------------------------------------
    def register_roots(self, array: List[int]) -> None:
        self.root_arrays.append(array)

    # ``write_ref_field`` / ``read_ref_field`` are compiled per-instance
    # fast paths bound in ``__init__``.

    # ------------------------------------------------------------------
    def alloc(self, desc: TypeDescriptor, length: int = 0) -> int:
        size = desc.size_words(length)
        addr = self._alloc_words(size)
        self._init_object(addr, desc, length)
        self.allocations += 1
        self.allocated_words += size
        return addr

    def _alloc_words(self, size: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def collect(self, reason: str = "forced") -> CollectionResult:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    def _new_result(self, reason: str) -> CollectionResult:
        self._gc_count += 1
        return CollectionResult(reason=reason, collection_id=self._gc_count)

    def _emit(self, result: CollectionResult) -> CollectionResult:
        # Telemetry: the gctk baselines fix the copy reserve at half the
        # heap (§3.1), unlike Beltway's dynamic conservative reserve.
        result.reserve_frames = self.space.heap_frames // 2
        self.collections.append(result)
        for listener in self.collection_listeners:
            listener(result)
        if self.debug_verify:
            self.verify()
        return result

    def _acquire_into(self, region: BumpRegion, space_name: str, order: int):
        frame = self.space.acquire_frame(space_name)
        self.space.set_order(frame, order)
        region.add_frame(frame)
        return frame

    def _release_region(self, region: BumpRegion) -> int:
        freed = 0
        for frame in list(region.frames):
            self.barrier.nursery_frames.discard(frame.index)
            self.space.release_frame(frame)
            freed += 1
        region.reset()
        return freed

    @property
    def live_words_upper_bound(self) -> int:
        """Words currently occupied by heap objects (live + unreclaimed)."""
        return sum(region.allocated_words for region in self._regions())

    def _regions(self):  # pragma: no cover - overridden
        return []

    # ------------------------------------------------------------------
    def roots(self):
        for array in self.root_arrays:
            yield from (value for value in array if value)
        yield from self.boot.iter_objects()

    def verify(self) -> VerifyReport:
        return HeapVerifier(self.space, self.model).verify(self.roots())

    def _copy_allocator(self, region: BumpRegion, space_name: str, order: int):
        """An alloc_copy callback growing ``region`` frame by frame."""

        def alloc_copy(size_words: int) -> int:
            addr = region.alloc(size_words)
            if addr:
                return addr
            self._acquire_into(region, space_name, order)  # may raise OOM
            addr = region.alloc(size_words)
            if not addr:
                raise OutOfMemory(
                    f"{self.name}: copy of {size_words} words failed"
                )
            return addr

        return alloc_copy

    def _run_trace(
        self,
        ssb_slots,
        from_frames,
        region: BumpRegion,
        space_name: str,
        order: int,
        result: CollectionResult,
    ) -> None:
        """Evacuate ``from_frames`` into ``region``: the compiled substrate
        engine when one is attached, else the reference cheney_trace.
        Both are counter-bit-identical (DESIGN §13)."""
        from .copying import cheney_trace

        alloc_copy = self._copy_allocator(region, space_name, order)
        tracer = self._trace_kernel
        if tracer is not None:
            tracer.trace(
                self.root_arrays, ssb_slots, self.boot.iter_objects(),
                from_frames, region, alloc_copy, result,
            )
        else:
            cheney_trace(
                self.model, self.root_arrays, ssb_slots,
                self.boot.iter_objects(), from_frames, alloc_copy, result,
            )
