"""Independent classic semi-space collector (Cheney 1970) — gctk baseline."""

from __future__ import annotations

from ..errors import OutOfMemory
from ..heap.allocator import BumpRegion
from .base import GctkPlan, MATURE_ORDER, NURSERY_ORDER


class SemiSpaceGctk(GctkPlan):
    """Half the heap is to-space reserve; collect when from-space fills."""

    def __init__(self, space, model, boot, debug_verify=False, kernels=None):
        super().__init__("gctk:SS", space, model, boot, debug_verify,
                         kernels=kernels)
        self.region = BumpRegion(space)
        self.half_frames = max(1, space.heap_frames // 2)
        # No generational remembering: the boundary barrier never fires
        # because nursery_frames stays empty; boot is rescanned per GC.

    def _alloc_words(self, size: int) -> int:
        attempts = 0
        while True:
            addr = self.region.alloc(size)
            if addr:
                return addr
            if self.region.num_frames < self.half_frames:
                self._acquire_into(self.region, "ss", NURSERY_ORDER)
                continue
            if attempts >= 2:
                raise OutOfMemory(
                    f"{self.name}: live data exceeds a semi-space",
                    requested_words=size,
                )
            self.collect("full")
            attempts += 1

    def _regions(self):
        return [self.region]

    def collect(self, reason: str = "full"):
        result = self._new_result(reason)
        result.increments_collected = 1
        result.belts_collected = (0,)
        result.was_full_heap = True
        from_frames = {frame.index for frame in self.region.frames}
        result.from_frames = len(from_frames)
        result.from_words = self.region.allocated_words
        to_space = BumpRegion(self.space)
        self._run_trace(
            (), from_frames, to_space, "ss", MATURE_ORDER, result,
        )
        result.freed_frames = self._release_region(self.region)
        self.region = to_space
        for frame in to_space.frames:
            self.space.set_order(frame, NURSERY_ORDER)
        return self._emit(result)
