"""Shared Cheney-trace machinery for the gctk baseline collectors.

The baselines evacuate a *from* set of frames into a destination bump
region: scan the mutator roots, the sequential store buffer, and (unlike
Beltway) the whole boot image; copy reachable from-space objects; drain
the gray queue breadth-first.  Work counters are returned in the same
:class:`~repro.core.collector.CollectionResult` shape Beltway produces so
the cost model treats both identically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Set

from ..core.collector import CollectionResult
from ..heap.address import WORD_BYTES
from ..heap.objectmodel import ObjectModel


def cheney_trace(
    model: ObjectModel,
    root_arrays: List[List[int]],
    ssb_slots: Iterable[int],
    boot_objects: Iterable[int],
    from_frames: Set[int],
    alloc_copy: Callable[[int], int],
    result: CollectionResult,
) -> None:
    """Evacuate everything reachable out of ``from_frames``.

    ``alloc_copy(size_words) -> addr`` provides to-space; it may raise
    OutOfMemory, which aborts the collection (heap below minimum size).
    Counters are accumulated into ``result``.
    """
    space = model.space
    shift = space.frame_shift
    worklist = deque()

    def forward(obj: int) -> int:
        if model.is_forwarded(obj):
            return model.forwarding_address(obj)
        size = model.size_words(obj)
        new_addr = alloc_copy(size)
        model.copy_words(obj, new_addr, size)
        model.set_forwarding(obj, new_addr)
        worklist.append(new_addr)
        result.copied_objects += 1
        result.copied_words += size
        return new_addr

    for array in root_arrays:
        for i, value in enumerate(array):
            result.root_slots += 1
            if value and (value >> shift) in from_frames:
                array[i] = forward(value)

    for slot in ssb_slots:
        result.remset_slots += 1
        target = space.load(slot)
        if target and (target >> shift) in from_frames:
            space.store(slot, forward(target))

    # The boot-image rescan the boundary barrier forces (§4.2.1).  Both
    # this and the gray-queue drain below read each object's reference
    # slots as one bulk slice instead of N load() calls.
    for obj in boot_objects:
        slot, target, base, ref_values = model.scan_ref_slots(obj)
        result.boot_slots_scanned += 1 + len(ref_values)
        if target and (target >> shift) in from_frames:
            space.store(slot, forward(target))
        for i, target in enumerate(ref_values):
            if target and (target >> shift) in from_frames:
                space.store(base + i * WORD_BYTES, forward(target))

    while worklist:
        obj = worklist.popleft()
        result.scanned_objects += 1
        slot, target, base, ref_values = model.scan_ref_slots(obj)
        result.scanned_ref_slots += 1 + len(ref_values)
        if target and (target >> shift) in from_frames:
            space.store(slot, forward(target))
        for i, target in enumerate(ref_values):
            if target and (target >> shift) in from_frames:
                space.store(base + i * WORD_BYTES, forward(target))
