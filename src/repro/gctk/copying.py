"""Shared Cheney-trace machinery for the gctk baseline collectors.

The baselines evacuate a *from* set of frames into a destination bump
region: scan the mutator roots, the sequential store buffer, and (unlike
Beltway) the whole boot image; copy reachable from-space objects; drain
the gray queue breadth-first.  Work counters are returned in the same
:class:`~repro.core.collector.CollectionResult` shape Beltway produces so
the cost model treats both identically.

The trace is the collection-critical inner loop (ISSUE 2): the gray
queue drains in blocks through an integer cursor, and each object's
header and reference-slot run are read straight out of its frame's typed
array — one frame resolution per object, one slice per scan — instead of
per-word ``load()`` calls.  Accounting replicates the
``scan_ref_slots``/``space.store`` reference paths exactly (the
counter-equivalence invariant; see DESIGN.md): a forwarded visit charges
2 loads, a copying visit ``3 + size`` loads and ``size + 1`` stores, a
scan ``count + 3`` loads plus 1 store per updated slot.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Set

from ..core.collector import CollectionResult
from ..errors import InvalidAddress
from ..heap.objectmodel import HEADER_WORDS, ObjectModel


def cheney_trace(
    model: ObjectModel,
    root_arrays: List[List[int]],
    ssb_slots: Iterable[int],
    boot_objects: Iterable[int],
    from_frames: Set[int],
    alloc_copy: Callable[[int], int],
    result: CollectionResult,
) -> None:
    """Evacuate everything reachable out of ``from_frames``.

    ``alloc_copy(size_words) -> addr`` provides to-space; it may raise
    OutOfMemory, which aborts the collection (heap below minimum size).
    Counters are accumulated into ``result``.
    """
    space = model.space
    shift = space.frame_shift
    word_mask = space._word_mask
    resolve = space._resolve
    types = model.types
    by_addr = types._by_addr
    worklist: List[int] = []
    worklist_append = worklist.append

    # Private one-entry frame caches.  The trace ping-pongs between the
    # scan frame, the from-space object and the copy destination, so the
    # space's shared cache thrashes; frames stay mapped for the whole
    # trace, so caching (index -> words) locally is safe.  ``src_fi`` and
    # ``dst_fi`` belong to forward(); the scan loops keep their own.
    src_fi = dst_fi = -1
    src_words = dst_words = None

    def forward(obj: int) -> int:
        nonlocal src_fi, src_words, dst_fi, dst_words
        if obj & 3:
            raise InvalidAddress(f"misaligned load from {obj:#x}")
        fi = obj >> shift
        if fi != src_fi:
            src_words = resolve(fi, obj, "load from").words
            src_fi = fi
        words = src_words
        b = (obj >> 2) & word_mask
        space.load_count += 1
        status = words[b]
        if status & 1:
            space.load_count += 1
            return status & ~1
        space.load_count += 1
        desc = by_addr.get(words[b + 1])
        if desc is None:
            desc = types.by_addr(words[b + 1])
        sc = desc.size_code
        size = (HEADER_WORDS + words[b + 2]) if sc < 0 else sc
        space.load_count += 1
        new_addr = alloc_copy(size)
        # Inline single-frame copy (objects never span frames): same
        # ``size`` loads + ``size`` stores as the copy_words kernel.
        di = new_addr >> shift
        if di != dst_fi:
            dst_words = resolve(di, new_addr, "store to").words
            dst_fi = di
        d = (new_addr >> 2) & word_mask
        space.load_count += size
        space.store_count += size
        dst_words[d : d + size] = words[b : b + size]
        words[b] = new_addr | 1
        space.store_count += 1
        worklist_append(new_addr)
        result.copied_objects += 1
        result.copied_words += size
        return new_addr

    for array in root_arrays:
        for i, value in enumerate(array):
            result.root_slots += 1
            if value and (value >> shift) in from_frames:
                array[i] = forward(value)

    space_load = space.load
    space_store = space.store
    for slot in ssb_slots:
        result.remset_slots += 1
        target = space_load(slot)
        if target and (target >> shift) in from_frames:
            space_store(slot, forward(target))

    # The boot-image rescan the boundary barrier forces (§4.2.1): same
    # inlined scan as the gray-queue drain, charged to boot_slots_scanned.
    scan_fi = -1
    scan_words = None
    for obj in boot_objects:
        if obj & 3:
            raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
        fi = obj >> shift
        if fi != scan_fi:
            scan_words = resolve(fi, obj + 4, "load from").words
            scan_fi = fi
        words = scan_words
        b = (obj >> 2) & word_mask
        space.load_count += 1
        target = words[b + 1]
        desc = by_addr.get(target)
        if desc is None:
            desc = types.by_addr(target)
        code = desc.ref_code
        count = words[b + 2] if code < 0 else code
        space.load_count += count + 2
        result.boot_slots_scanned += 1 + count
        if target and (target >> shift) in from_frames:
            words[b + 1] = forward(target)
            space.store_count += 1
        if count:
            refs = words[b + 3 : b + 3 + count]
            for i, target in enumerate(refs):
                if target and (target >> shift) in from_frames:
                    words[b + 3 + i] = forward(target)
                    space.store_count += 1

    # Draining by direct list iteration: a list iterator picks up items
    # appended during the loop (defined Python semantics), which is
    # exactly the Cheney gray-queue FIFO.
    scan_fi = -1
    for obj in worklist:
        result.scanned_objects += 1
        if obj & 3:
            raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
        fi = obj >> shift
        if fi != scan_fi:
            scan_words = resolve(fi, obj + 4, "load from").words
            scan_fi = fi
        words = scan_words
        b = (obj >> 2) & word_mask
        space.load_count += 1
        target = words[b + 1]
        desc = by_addr.get(target)
        if desc is None:
            desc = types.by_addr(target)
        code = desc.ref_code
        count = words[b + 2] if code < 0 else code
        space.load_count += count + 2
        result.scanned_ref_slots += 1 + count
        if target and (target >> shift) in from_frames:
            words[b + 1] = forward(target)
            space.store_count += 1
        if count:
            # Snapshot the run before any forwarding stores, matching the
            # load_slice-then-iterate reference semantics.
            refs = words[b + 3 : b + 3 + count]
            for i, target in enumerate(refs):
                if target and (target >> shift) in from_frames:
                    words[b + 3 + i] = forward(target)
                    space.store_count += 1
