"""Independent Appel-style flexible-nursery generational collector [3].

The heap holds a mature region at the "bottom" and splits the remainder
evenly between the nursery and the copy reserve, so the nursery shrinks as
the mature space grows.  Minor collections copy nursery survivors into the
mature region; when the nursery would drop below a small fixed threshold
the whole heap is collected (major).  The boundary write barrier plus a
boot-image rescan per collection reproduce the baseline the paper tunes
and compares against (§4.1, §4.2.1).
"""

from __future__ import annotations

from ..errors import OutOfMemory
from ..heap.allocator import BumpRegion
from .base import GctkPlan, MATURE_ORDER, NURSERY_ORDER

#: Appel's "small fixed threshold": a nursery below this is a full heap.
MIN_NURSERY_FRAMES = 1


class AppelGctk(GctkPlan):
    """Flexible nursery: capacity = (heap − mature) / 2."""

    def __init__(self, space, model, boot, debug_verify=False,
                 name="gctk:Appel", kernels=None):
        super().__init__(name, space, model, boot, debug_verify,
                         kernels=kernels)
        self.nursery = BumpRegion(space)
        self.mature = BumpRegion(space)

    # ------------------------------------------------------------------
    def nursery_capacity_frames(self) -> int:
        """How many frames the nursery may hold right now.

        The gctk baselines fix the copy reserve at half the heap ("as it is
        in the semi-space collector and generational collector
        implementations", §3.1): nursery + mature share the usable half.
        """
        return self.space.heap_frames // 2 - self.mature.num_frames

    def _grow_nursery(self) -> None:
        frame = self._acquire_into(self.nursery, "nursery", NURSERY_ORDER)
        self.barrier.nursery_frames.add(frame.index)

    def _alloc_words(self, size: int) -> int:
        attempts = 0
        while True:
            addr = self.nursery.alloc(size)
            if addr:
                return addr
            if self.nursery.num_frames < self.nursery_capacity_frames():
                self._grow_nursery()
                continue
            if attempts >= 3:
                raise OutOfMemory(
                    f"{self.name}: no progress after minor+major collections",
                    requested_words=size,
                )
            self.minor_collect()
            if self._needs_major():
                self.major_collect()
                if self._needs_major():
                    # Even a full-heap collection could not restore the
                    # space layout: live data no longer fits this design.
                    raise OutOfMemory(
                        f"{self.name}: live data exceeds usable memory",
                        requested_words=size,
                    )
            attempts += 1

    def _needs_major(self) -> bool:
        """Appel majors when the mature space has squeezed the nursery below
        the small fixed threshold — i.e. usable memory (the non-reserve
        half) is effectively all mature."""
        return self.nursery_capacity_frames() < MIN_NURSERY_FRAMES

    def _regions(self):
        return [self.nursery, self.mature]

    def collect(self, reason: str = "forced"):
        if reason == "major":
            return self.major_collect()
        return self.minor_collect()

    # ------------------------------------------------------------------
    def minor_collect(self):
        result = self._new_result("minor")
        result.increments_collected = 1
        result.belts_collected = (0,)
        from_frames = {frame.index for frame in self.nursery.frames}
        result.from_frames = len(from_frames)
        result.from_words = self.nursery.allocated_words
        self._run_trace(
            tuple(self.ssb.slots), from_frames,
            self.mature, "mature", MATURE_ORDER, result,
        )
        result.freed_frames = self._release_region(self.nursery)
        self.ssb.clear()
        return self._emit(result)

    def major_collect(self):
        """Collect nursery and mature space together (full heap)."""
        result = self._new_result("major")
        result.increments_collected = 2
        result.belts_collected = (0, 1)
        result.was_full_heap = True
        from_frames = {frame.index for frame in self.nursery.frames}
        from_frames.update(frame.index for frame in self.mature.frames)
        result.from_frames = len(from_frames)
        result.from_words = (
            self.nursery.allocated_words + self.mature.allocated_words
        )
        to_space = BumpRegion(self.space)
        # SSB slots live inside the collected space: ignored (their objects
        # are re-scanned when copied).
        self._run_trace(
            (), from_frames, to_space, "mature", MATURE_ORDER, result,
        )
        result.freed_frames = self._release_region(self.nursery)
        result.freed_frames += self._release_region(self.mature)
        self.mature = to_space
        self.ssb.clear()
        return self._emit(result)
