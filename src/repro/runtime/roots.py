"""GC-safe handles: the only way mutator code may hold object references.

A collection moves objects and rewrites every root slot; any raw address a
benchmark kept in a Python variable across an allocation would silently
dangle.  A :class:`Handle` is an index into a registered root array, so
the collector's root scan updates it in place — the moral equivalent of
the JNI local-reference discipline Jikes RVM's own Java code follows.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import HeapCorruption


class Handle:
    """A rooted reference; ``addr`` is always current, even across GCs."""

    __slots__ = ("_table", "_index")

    def __init__(self, table: "RootTable", index: int):
        self._table = table
        self._index = index

    @property
    def addr(self) -> int:
        slots = self._table.slots
        if self._index < 0:
            raise HeapCorruption("use of a dropped handle")
        return slots[self._index]

    @addr.setter
    def addr(self, value: int) -> None:
        if self._index < 0:
            raise HeapCorruption("write through a dropped handle")
        self._table.slots[self._index] = value

    @property
    def is_null(self) -> bool:
        return self.addr == 0

    def drop(self) -> None:
        """Release the root slot; the handle becomes unusable."""
        self._table.release(self._index)
        self._index = -1

    def __bool__(self) -> bool:
        return not self.is_null

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._index < 0:
            return "<Handle dropped>"
        return f"<Handle #{self._index} -> {self.addr:#x}>"


class RootTable:
    """A growable root array with slot reuse, registered with the plan."""

    def __init__(self) -> None:
        self.slots: List[int] = []
        self._free: List[int] = []

    def acquire(self, addr: int = 0) -> Handle:
        if self._free:
            index = self._free.pop()
            self.slots[index] = addr
        else:
            index = len(self.slots)
            self.slots.append(addr)
        return Handle(self, index)

    def release(self, index: int) -> None:
        if index < 0 or index >= len(self.slots):
            raise HeapCorruption(f"releasing bogus root slot {index}")
        self.slots[index] = 0
        self._free.append(index)

    @property
    def live_slots(self) -> int:
        return len(self.slots) - len(self._free)
