"""Runtime glue: the VM facade, root handles and the mutator context."""

from .mutator import MutatorContext
from .roots import Handle, RootTable
from .vm import EXPERIMENT_FRAME_SHIFT, VM

__all__ = ["EXPERIMENT_FRAME_SHIFT", "Handle", "MutatorContext", "RootTable", "VM"]
