"""The VM facade: heap + collector plan + cost accounting in one object.

A :class:`VM` is what benchmarks and examples construct: it assembles the
address space, boot image and a collector *plan* (a Beltway configuration
or one of the independent gctk baselines), charges the cost model for
every mutator and collector operation, and produces a
:class:`~repro.sim.stats.RunStats` at the end of a run.

Mutator time is accumulated in counters and flushed into the simulated
clock just before each collection pause and at the end of the run, so the
pause timeline (for the MMU analysis) has mutator progress between pauses
at exactly collection granularity.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..core.beltway import BeltwayHeap
from ..core.collector import CollectionResult
from ..core.config import BeltwayConfig
from ..errors import ConfigError, OutOfMemory
from ..heap.bootimage import BootImage
from ..heap.objectmodel import ObjectModel, TypeDescriptor, TypeRegistry
from ..heap.space import AddressSpace
from ..sim.clock import Clock
from ..sim.cost import CostModel, DEFAULT_COST_MODEL
from ..sim.locality import NO_LOCALITY, LocalityModel
from ..sim.stats import RunStats
from ..heap.address import WORD_BYTES

#: Frame size used by the scaled experiments (256 B; the workloads are
#: scaled 1024x down from the paper's SPEC runs, see repro.bench.spec).
EXPERIMENT_FRAME_SHIFT = 8

#: Reference slots of boot-image "VM code" ballast.  Jikes RVM's boot
#: image is tens of MB; scaled 1024x it still holds on the order of a
#: thousand reference slots that boundary-barrier collectors (the gctk
#: baselines) rescan at every collection, and that Beltway's frame
#: barrier covers with remembered sets instead (§4.2.1).
DEFAULT_BOOT_BALLAST_SLOTS = 1200


class VM:
    """One simulated Java-like virtual machine instance."""

    #: Set by ``repro.sanitizer.attach_sanitizer``: an object whose
    #: ``observe_mutator(mu)`` is called by every new ``MutatorContext``
    #: (the thin runtime hook the shadow graph needs to see roots).  A
    #: class attribute so the unattached path pays one attribute load
    #: and an ``is None`` test — no instance state, no call.
    mutator_observer = None

    def __init__(
        self,
        heap_bytes: int,
        collector: Union[str, BeltwayConfig] = "25.25.100",
        frame_shift: int = EXPERIMENT_FRAME_SHIFT,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        locality: LocalityModel = NO_LOCALITY,
        debug_verify: bool = False,
        benchmark_name: str = "adhoc",
        boot_ballast_slots: int = DEFAULT_BOOT_BALLAST_SLOTS,
        tier: Optional[str] = None,
    ):
        frame_bytes = 1 << frame_shift
        heap_frames = max(2, heap_bytes // frame_bytes)
        self.heap_bytes = heap_frames * frame_bytes
        self.space = AddressSpace(heap_frames, frame_shift)
        self.types = TypeRegistry()
        self.model = ObjectModel(self.space, self.types)
        self.boot = BootImage(self.space, self.types, self.model)
        self.boot.alloc_ballast(boot_ballast_slots)
        # Substrate-kernel tier (DESIGN §13): python/numpy/cffi/auto, from
        # the ``tier`` argument, then $REPRO_SUBSTRATE_TIER, then "auto".
        from ..kernels import resolve as _resolve_kernels

        self.kernels = _resolve_kernels(tier)
        self.plan = self._make_plan(collector, debug_verify)
        self._batch_ops = self.kernels.batch_ops(self)
        # Mutator fast paths: the plan's compiled store/read closures plus
        # the model's compiled scalar accessors, bound once per VM.
        self._write_ref_field = self.plan.write_ref_field
        self._read_ref_field = self.plan.read_ref_field
        _, self._read_scalar, self._write_scalar = self.model.compile_field_ops()
        self.cost_model = cost_model
        self.locality = locality
        self.clock = Clock()
        self.benchmark_name = benchmark_name
        self.work_units = 0.0
        self.field_reads = 0
        self.field_writes = 0
        self.peak_footprint_frames = 0
        self.peak_remset_entries = 0
        self.post_gc_occupancy = []
        # flush snapshots
        self._flushed_allocs = 0
        self._flushed_alloc_words = 0
        self._flushed_fast = 0
        self._flushed_slow = 0
        self._flushed_reads = 0
        self._flushed_writes = 0
        self._flushed_work = 0.0
        self.plan.collection_listeners.append(self._on_collection)

    # ------------------------------------------------------------------
    def _make_plan(self, collector, debug_verify: bool):
        if isinstance(collector, BeltwayConfig):
            return BeltwayHeap(
                self.space, self.model, self.boot, collector, debug_verify,
                kernels=self.kernels,
            )
        if not isinstance(collector, str):
            raise ConfigError(f"unsupported collector spec {collector!r}")
        if collector.startswith("gctk:"):
            from ..gctk import make_gctk_plan

            return make_gctk_plan(
                collector[len("gctk:"):],
                self.space,
                self.model,
                self.boot,
                debug_verify,
                kernels=self.kernels,
            )
        config = BeltwayConfig.parse(collector)
        return BeltwayHeap(
            self.space, self.model, self.boot, config, debug_verify,
            kernels=self.kernels,
        )

    @property
    def collector_name(self) -> str:
        return self.plan.name

    # ------------------------------------------------------------------
    # Type definition (boot-time)
    # ------------------------------------------------------------------
    def define_type(self, name: str, nrefs: int = 0, nscalars: int = 0) -> TypeDescriptor:
        return self.boot.define_type(name, nrefs=nrefs, nscalars=nscalars)

    def define_ref_array(self, name: str) -> TypeDescriptor:
        return self.boot.define_ref_array(name)

    def define_scalar_array(self, name: str) -> TypeDescriptor:
        return self.boot.define_scalar_array(name)

    # ------------------------------------------------------------------
    # Mutator operations (cost-charged)
    # ------------------------------------------------------------------
    def alloc(self, desc: TypeDescriptor, length: int = 0) -> int:
        addr = self.plan.alloc(desc, length)
        footprint = self.space.heap_frames_in_use
        if footprint > self.peak_footprint_frames:
            self.peak_footprint_frames = footprint
        return addr

    def write_ref(self, obj: int, index: int, value: int) -> None:
        self.field_writes += 1
        self._write_ref_field(obj, index, value)

    # ------------------------------------------------------------------
    # Batched mutator operations (substrate-kernel tier, DESIGN §13)
    # ------------------------------------------------------------------
    def write_ref_batch(self, objs, indexes, values) -> None:
        """``for o, i, v in zip(...): self.write_ref(o, i, v)`` — counter
        bit-identical, vectorised on numpy tiers.  Falls back to the
        scalar sequence (reproducing partial effects and exact errors)
        whenever a kernel precondition fails."""
        ops = self._batch_ops
        if ops is not None and ops.try_write_ref_batch(objs, indexes, values):
            self.field_writes += len(objs)
            return
        write = self.write_ref  # attribute lookup: sanitizer-aware
        for obj, index, value in zip(objs, indexes, values):
            write(int(obj), int(index), int(value))

    def alloc_batch(self, desc: TypeDescriptor, length: int = 0,
                    count: int = 1) -> List[int]:
        """``[self.alloc(desc, length) for _ in range(count)]`` — counter
        bit-identical; numpy tiers bump whole frame-tail segments with
        strided header initialisation, dropping to the scalar path at
        frame boundaries and collection triggers."""
        out: List[int] = []
        ops = self._batch_ops
        while len(out) < count:
            segment = (
                ops.try_alloc_segment(desc, length, count - len(out))
                if ops is not None
                else None
            )
            if segment:
                out.extend(segment)
                continue
            out.append(self.alloc(desc, length))
        if ops is not None:
            footprint = self.space.heap_frames_in_use
            if footprint > self.peak_footprint_frames:
                self.peak_footprint_frames = footprint
        return out

    def read_ref(self, obj: int, index: int) -> int:
        self.field_reads += 1
        return self._read_ref_field(obj, index)

    def write_int(self, obj: int, index: int, value: int) -> None:
        self.field_writes += 1
        self._write_scalar(obj, index, value)

    def read_int(self, obj: int, index: int) -> int:
        self.field_reads += 1
        return self._read_scalar(obj, index)

    def work(self, units: float) -> None:
        """Charge benchmark-declared computation (non-memory work)."""
        self.work_units += units

    def collect(self, reason: str = "forced") -> CollectionResult:
        return self.plan.collect(reason)

    def sync_clock(self) -> float:
        """Flush pending mutator work into the clock; returns ``clock.now``.

        Mutator cycles normally reach the clock only at collection pauses
        and at :meth:`finish` — coarse enough for whole-run figures, too
        coarse for per-request latencies.  Request-driven engines call
        this at request boundaries so ``clock.now`` is exact there.  With
        the default locality model the flush schedule does not change any
        cycle total (the multiplier is 1.0), so figure workloads are
        unaffected.
        """
        self._flush_mutator()
        return self.clock.now

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, bus, snapshot_every: int = 1, profile: bool = False):
        """Publish this VM's events into a telemetry ``bus``; returns the
        :class:`~repro.obs.instrument.Instrumentation` handle.  A VM that
        never attaches runs with no telemetry branches at all."""
        from ..obs import attach  # lazy: keep the obs layer optional

        return attach(self, bus, snapshot_every=snapshot_every, profile=profile)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def _mutator_multiplier(self, delta_alloc_words: int) -> float:
        footprint_words = self.space.heap_frames_in_use * self.space.frame_words
        return self.locality.multiplier(delta_alloc_words, footprint_words)

    def _flush_mutator(self) -> None:
        plan = self.plan
        cm = self.cost_model
        d_allocs = plan.allocations - self._flushed_allocs
        d_words = plan.allocated_words - self._flushed_alloc_words
        stats = plan.barrier.stats
        d_fast = stats.fast_path - self._flushed_fast
        d_slow = stats.slow_path - self._flushed_slow
        d_reads = self.field_reads - self._flushed_reads
        d_writes = self.field_writes - self._flushed_writes
        d_work = self.work_units - self._flushed_work
        cycles = (
            cm.alloc_object * d_allocs
            + cm.alloc_word * d_words
            + cm.barrier_fast * d_fast
            + cm.barrier_slow * d_slow
            + cm.field_read * d_reads
            + cm.field_write * d_writes
            + cm.work_unit * d_work
        )
        cycles *= self._mutator_multiplier(d_words)
        if cycles:
            self.clock.charge_mutator(cycles)
        self._flushed_allocs = plan.allocations
        self._flushed_alloc_words = plan.allocated_words
        self._flushed_fast = stats.fast_path
        self._flushed_slow = stats.slow_path
        self._flushed_reads = self.field_reads
        self._flushed_writes = self.field_writes
        self._flushed_work = self.work_units

    def _on_collection(self, result: CollectionResult) -> None:
        self._flush_mutator()
        cycles = self.cost_model.collection_cost(
            copied_objects=result.copied_objects,
            copied_words=result.copied_words,
            scanned_ref_slots=result.scanned_ref_slots,
            root_slots=result.root_slots,
            remset_slots=result.remset_slots,
            freed_frames=result.freed_frames,
            boot_slots_scanned=result.boot_slots_scanned,
        )
        self.clock.charge_pause(
            cycles, result.reason, copied_words=result.copied_words
        )
        entries = len(self.plan.remsets)
        if entries > self.peak_remset_entries:
            self.peak_remset_entries = entries
        self.post_gc_occupancy.append(
            self.plan.live_words_upper_bound * WORD_BYTES
        )

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def finish(self, completed: bool = True, failure: str = "") -> RunStats:
        """Flush outstanding mutator work and summarise the run."""
        self._flush_mutator()
        plan = self.plan
        results = plan.collections
        return RunStats(
            benchmark=self.benchmark_name,
            collector=self.collector_name,
            heap_bytes=self.heap_bytes,
            completed=completed,
            failure=failure,
            total_cycles=self.clock.total_cycles,
            gc_cycles=self.clock.gc_cycles,
            mutator_cycles=self.clock.mutator_cycles,
            pauses=list(self.clock.pauses),
            allocations=plan.allocations,
            allocated_bytes=plan.allocated_words * WORD_BYTES,
            copied_bytes=sum(r.copied_words for r in results) * WORD_BYTES,
            collections=len(results),
            full_heap_collections=sum(1 for r in results if r.was_full_heap),
            barrier_fast=plan.barrier.stats.fast_path,
            barrier_slow=plan.barrier.stats.slow_path,
            remset_inserts=plan.remsets.inserts,
            peak_remset_entries=self.peak_remset_entries,
            peak_footprint_bytes=self.peak_footprint_frames * self.space.frame_bytes,
            post_gc_occupancy_bytes=list(self.post_gc_occupancy),
        )
