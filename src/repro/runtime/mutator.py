"""MutatorContext: the handle-based API benchmark programs are written in.

All object references a program holds live in a registered root table
(see :mod:`repro.runtime.roots`); every reference store goes through the
plan's write barrier; every operation is charged to the VM's cost model.
This is the discipline that makes the synthetic SPEC workloads real
mutators from the collector's point of view.
"""

from __future__ import annotations

from typing import Optional

from ..errors import HeapCorruption
from ..heap.objectmodel import TypeDescriptor
from .roots import Handle, RootTable
from .vm import VM


class MutatorContext:
    """A single mutator thread bound to a VM."""

    def __init__(self, vm: VM):
        self.vm = vm
        self.table = RootTable()
        vm.plan.register_roots(self.table.slots)
        if vm.mutator_observer is not None:
            # Sanitizer hook: lets the shadow graph mirror this table's
            # acquire/release before the bound-method caches below freeze
            # the unobserved paths in.
            vm.mutator_observer.observe_mutator(self)
        # Bound-method caches for the store/read inner loops: every
        # benchmark operation funnels through these, so shave the
        # per-call attribute walks off the mutator fast paths.
        self._acquire = self.table.acquire
        self._vm_write_ref = vm.write_ref
        self._vm_read_ref = vm.read_ref
        self._vm_write_int = vm.write_int
        self._vm_read_int = vm.read_int

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------
    def handle(self, addr: int = 0) -> Handle:
        """A fresh rooted handle (NULL unless ``addr`` given)."""
        return self.table.acquire(addr)

    def copy_handle(self, source: Handle) -> Handle:
        return self.table.acquire(source.addr)

    @property
    def live_roots(self) -> int:
        return self.table.live_slots

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, desc: TypeDescriptor, length: int = 0) -> Handle:
        """Allocate an object and return a rooted handle to it."""
        return self._acquire(self.vm.alloc(desc, length))

    def alloc_named(self, type_name: str, length: int = 0) -> Handle:
        return self.alloc(self.vm.types.by_name(type_name), length)

    # ------------------------------------------------------------------
    # Field access (reference fields / array elements share indices)
    # ------------------------------------------------------------------
    def write(self, dst: Handle, index: int, src: Optional[Handle]) -> None:
        """``dst.field[index] = src`` through the write barrier."""
        addr = dst.addr
        if addr == 0:
            raise HeapCorruption("reference store through a null handle")
        self._vm_write_ref(addr, index, src.addr if src is not None else 0)

    def read(self, src: Handle, index: int) -> Handle:
        """``handle(src.field[index])`` — the result is rooted."""
        addr = src.addr
        if addr == 0:
            raise HeapCorruption("reference load through a null handle")
        return self._acquire(self._vm_read_ref(addr, index))

    def read_addr(self, src: Handle, index: int) -> int:
        """Unrooted read: valid only until the next allocation."""
        addr = src.addr
        if addr == 0:
            raise HeapCorruption("reference load through a null handle")
        return self._vm_read_ref(addr, index)

    def write_int(self, dst: Handle, index: int, value: int) -> None:
        self._vm_write_int(dst.addr, index, value)

    def read_int(self, src: Handle, index: int) -> int:
        return self._vm_read_int(src.addr, index)

    def length_of(self, h: Handle) -> int:
        return self.vm.model.length_of(h.addr)

    # ------------------------------------------------------------------
    def work(self, units: float) -> None:
        """Charge benchmark computation to the clock."""
        self.vm.work(units)
