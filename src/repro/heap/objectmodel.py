"""Object model: headers, type descriptors, field access.

The layout mirrors a simplified Jikes RVM object:

====  =======================================================
word  contents
====  =======================================================
0     status word: 0 normally; ``forwarding_address | 1`` once
      the object has been copied during a collection
1     type reference — a *real* reference slot pointing at the
      type's boot-image object.  Its initialising store goes
      through the write barrier, reproducing the TIB-pointer
      barrier traffic the paper discusses in §3.3.2.
2     array length (0 for non-arrays)
3..   reference slots (``nrefs`` of them, or ``length`` for a
      reference array)
..    scalar words (``nscalars``, or ``length`` for a scalar
      array)
====  =======================================================

Object addresses point at word 0.  Objects never span frames.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import HeapCorruption, InvalidAddress
from .address import WORD_BYTES
from .space import AddressSpace

#: Header word offsets (in words).
STATUS_WORD = 0
TYPE_WORD = 1
LENGTH_WORD = 2
HEADER_WORDS = 3

#: Low bit of the status word marks a forwarded object.
FORWARDED_BIT = 1


class TypeKind(enum.Enum):
    """The three object shapes the model supports."""

    SCALAR = "scalar"  # fixed number of ref and scalar fields
    REF_ARRAY = "ref_array"  # variable number of reference elements
    SCALAR_ARRAY = "scalar_array"  # variable number of scalar words


class TypeDescriptor:
    """Immutable description of an object type.

    The descriptor itself is pure Python metadata; the *type object* it is
    mirrored by lives in the boot image, and ``addr`` is that object's
    address once installed (see :mod:`repro.heap.bootimage`).
    """

    __slots__ = (
        "name", "kind", "nrefs", "nscalars", "addr", "type_id",
        "ref_code", "scalar_code", "size_code",
    )

    def __init__(
        self,
        name: str,
        kind: TypeKind,
        nrefs: int = 0,
        nscalars: int = 0,
        type_id: int = -1,
    ):
        if nrefs < 0 or nscalars < 0:
            raise HeapCorruption(f"negative field counts for type {name}")
        self.name = name
        self.kind = kind
        self.nrefs = nrefs
        self.nscalars = nscalars
        self.addr = 0  # installed by the boot image
        self.type_id = type_id
        # Shape codes for the compiled fast paths: a non-negative code is
        # the count itself; -1 means "use the instance's length word".
        if kind is TypeKind.SCALAR:
            self.ref_code = nrefs
            self.scalar_code = nscalars
            self.size_code = HEADER_WORDS + nrefs + nscalars
        elif kind is TypeKind.REF_ARRAY:
            self.ref_code = -1
            self.scalar_code = 0
            self.size_code = -1
        else:  # SCALAR_ARRAY
            self.ref_code = 0
            self.scalar_code = -1
            self.size_code = -1

    def size_words(self, length: int = 0) -> int:
        """Total object size in words for an instance of this type."""
        if self.kind is TypeKind.SCALAR:
            return HEADER_WORDS + self.nrefs + self.nscalars
        if self.kind is TypeKind.REF_ARRAY:
            return HEADER_WORDS + length
        return HEADER_WORDS + length  # SCALAR_ARRAY

    def size_bytes(self, length: int = 0) -> int:
        return self.size_words(length) * WORD_BYTES

    def ref_count(self, length: int = 0) -> int:
        """Number of reference slots, excluding the type-reference slot."""
        if self.kind is TypeKind.SCALAR:
            return self.nrefs
        if self.kind is TypeKind.REF_ARRAY:
            return length
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Type {self.name} {self.kind.value} refs={self.nrefs} scalars={self.nscalars}>"


class TypeRegistry:
    """Registry of all type descriptors, addressable by name and address."""

    def __init__(self) -> None:
        self._by_name: Dict[str, TypeDescriptor] = {}
        self._by_addr: Dict[int, TypeDescriptor] = {}
        self._all: List[TypeDescriptor] = []

    def define(
        self, name: str, nrefs: int = 0, nscalars: int = 0
    ) -> TypeDescriptor:
        """Define a scalar (fixed-shape) object type."""
        return self._add(TypeDescriptor(name, TypeKind.SCALAR, nrefs, nscalars))

    def define_ref_array(self, name: str) -> TypeDescriptor:
        """Define a reference-array type."""
        return self._add(TypeDescriptor(name, TypeKind.REF_ARRAY))

    def define_scalar_array(self, name: str) -> TypeDescriptor:
        """Define a scalar-array type (payload counted in words)."""
        return self._add(TypeDescriptor(name, TypeKind.SCALAR_ARRAY))

    def _add(self, desc: TypeDescriptor) -> TypeDescriptor:
        if desc.name in self._by_name:
            raise HeapCorruption(f"duplicate type name {desc.name!r}")
        desc.type_id = len(self._all)
        self._by_name[desc.name] = desc
        self._all.append(desc)
        return desc

    def install(self, desc: TypeDescriptor, addr: int) -> None:
        """Record the boot-image address of ``desc``'s type object."""
        desc.addr = addr
        self._by_addr[addr] = desc

    def by_name(self, name: str) -> TypeDescriptor:
        return self._by_name[name]

    def by_addr(self, addr: int) -> TypeDescriptor:
        try:
            return self._by_addr[addr]
        except KeyError:
            raise HeapCorruption(
                f"address {addr:#x} is not a type object"
            ) from None

    def __iter__(self) -> Iterator[TypeDescriptor]:
        return iter(self._all)

    def __len__(self) -> int:
        return len(self._all)


class ObjectModel:
    """Field access and header manipulation over an :class:`AddressSpace`."""

    def __init__(self, space: AddressSpace, types: TypeRegistry):
        self.space = space
        self.types = types

    # ------------------------------------------------------------------
    # Header access
    # ------------------------------------------------------------------
    def status(self, obj: int) -> int:
        return self.space.load(obj + STATUS_WORD * WORD_BYTES)

    def is_forwarded(self, obj: int) -> bool:
        return bool(self.status(obj) & FORWARDED_BIT)

    def forwarding_address(self, obj: int) -> int:
        status = self.status(obj)
        if not status & FORWARDED_BIT:
            raise HeapCorruption(f"object {obj:#x} is not forwarded")
        return status & ~FORWARDED_BIT

    def set_forwarding(self, obj: int, new_addr: int) -> None:
        self.space.store(obj + STATUS_WORD * WORD_BYTES, new_addr | FORWARDED_BIT)

    def type_of(self, obj: int) -> TypeDescriptor:
        return self.types.by_addr(self.space.load(obj + TYPE_WORD * WORD_BYTES))

    def length_of(self, obj: int) -> int:
        return self.space.load(obj + LENGTH_WORD * WORD_BYTES)

    def size_words(self, obj: int) -> int:
        """Total size of the object at ``obj``, decoded from its header."""
        return self.type_of(obj).size_words(self.length_of(obj))

    # ------------------------------------------------------------------
    # Slot addressing
    # ------------------------------------------------------------------
    def type_slot_addr(self, obj: int) -> int:
        """Address of the type-reference slot."""
        return obj + TYPE_WORD * WORD_BYTES

    def ref_slot_addr(self, obj: int, index: int) -> int:
        """Address of reference slot ``index`` (0-based, excludes type slot)."""
        desc = self.type_of(obj)
        count = desc.ref_count(self.length_of(obj))
        if not 0 <= index < count:
            raise HeapCorruption(
                f"ref slot {index} out of range [0,{count}) for "
                f"{desc.name} object {obj:#x}"
            )
        return obj + (HEADER_WORDS + index) * WORD_BYTES

    def scalar_slot_addr(self, obj: int, index: int) -> int:
        """Address of scalar word ``index``."""
        desc = self.type_of(obj)
        length = self.length_of(obj)
        refs = desc.ref_count(length)
        scalars = desc.size_words(length) - HEADER_WORDS - refs
        if not 0 <= index < scalars:
            raise HeapCorruption(
                f"scalar slot {index} out of range [0,{scalars}) for "
                f"{desc.name} object {obj:#x}"
            )
        return obj + (HEADER_WORDS + refs + index) * WORD_BYTES

    def scan_ref_slots(self, obj: int) -> Tuple[int, int, int, List[int]]:
        """Bulk read of every reference slot of ``obj`` for collector scans.

        Returns ``(type_slot_addr, type_value, ref_base_addr, ref_values)``
        where ``ref_values[i]`` lives at ``ref_base_addr + i * WORD_BYTES``.
        The type slot is included (see :meth:`iter_ref_slot_addrs`); the
        ``nrefs`` proper reference slots are read with one
        :meth:`~repro.heap.space.AddressSpace.load_slice` call.

        Access accounting is identical to the word-at-a-time walk it
        replaces (``count + 3`` loads: type word twice — once as descriptor
        decode, once as the scanned slot value — the length word, and the
        ``count`` reference slots), so cost-model inputs are unchanged.
        """
        space = self.space
        type_slot = obj + TYPE_WORD * WORD_BYTES
        desc = self.types.by_addr(space.load(type_slot))
        count = desc.ref_count(space.load(obj + LENGTH_WORD * WORD_BYTES))
        type_value = space.load(type_slot)
        base = obj + HEADER_WORDS * WORD_BYTES
        return type_slot, type_value, base, space.load_slice(base, count)

    def iter_ref_slot_addrs(self, obj: int) -> Iterator[int]:
        """Addresses of every reference slot, *including* the type slot.

        The type slot points into the boot image, which is immortal, so
        scanning it during collection is a guaranteed no-op copy-wise — but
        it is real scanning work, and the cost model charges for it, just
        as Jikes RVM's collectors traverse TIB pointers.
        """
        yield obj + TYPE_WORD * WORD_BYTES
        desc = self.type_of(obj)
        count = desc.ref_count(self.length_of(obj))
        base = obj + HEADER_WORDS * WORD_BYTES
        for i in range(count):
            yield base + i * WORD_BYTES

    # ------------------------------------------------------------------
    # Compiled mutator fast paths (ISSUE 2)
    # ------------------------------------------------------------------
    def compile_field_ops(self):
        """Specialised closures for the mutator field-access inner loops.

        Returns ``(read_ref, read_scalar, write_scalar)``, each equivalent
        to the :meth:`get_ref` / :meth:`get_scalar` / :meth:`set_scalar`
        reference paths — same bounds errors, same ``load_count`` /
        ``store_count`` accounting (header decode charges two loads, the
        slot access one more) — but with the object's frame resolved once
        and the header words read straight out of the frame's typed array.

        Counter-equivalence invariant: these closures may bypass the
        word-at-a-time :class:`~repro.heap.space.AddressSpace` API only
        because they replicate its accounting exactly; see DESIGN.md.
        """
        space = self.space
        types = self.types
        by_addr = types._by_addr
        shift = space.frame_shift
        word_mask = space._word_mask
        resolve = space._resolve

        def _decode(obj: int):
            """Resolve the frame and read the header (two charged loads)."""
            if obj & 3:
                raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
            fi = obj >> shift
            frame = (
                space._cache_frame
                if fi == space._cache_index
                else resolve(fi, obj + 4, "load from")
            )
            words = frame.words
            base = (obj >> 2) & word_mask
            space.load_count += 1
            desc = by_addr.get(words[base + 1])
            if desc is None:
                desc = types.by_addr(words[base + 1])
            space.load_count += 1
            return words, base, desc, words[base + 2]

        def read_ref(obj: int, index: int) -> int:
            words, base, desc, length = _decode(obj)
            code = desc.ref_code
            count = length if code < 0 else code
            if not 0 <= index < count:
                raise HeapCorruption(
                    f"ref slot {index} out of range [0,{count}) for "
                    f"{desc.name} object {obj:#x}"
                )
            space.load_count += 1
            return words[base + HEADER_WORDS + index]

        def read_scalar(obj: int, index: int) -> int:
            words, base, desc, length = _decode(obj)
            code = desc.ref_code
            refs = length if code < 0 else code
            code = desc.scalar_code
            scalars = length if code < 0 else code
            if not 0 <= index < scalars:
                raise HeapCorruption(
                    f"scalar slot {index} out of range [0,{scalars}) for "
                    f"{desc.name} object {obj:#x}"
                )
            space.load_count += 1
            return words[base + HEADER_WORDS + refs + index]

        def write_scalar(obj: int, index: int, value: int) -> None:
            words, base, desc, length = _decode(obj)
            code = desc.ref_code
            refs = length if code < 0 else code
            code = desc.scalar_code
            scalars = length if code < 0 else code
            if not 0 <= index < scalars:
                raise HeapCorruption(
                    f"scalar slot {index} out of range [0,{scalars}) for "
                    f"{desc.name} object {obj:#x}"
                )
            words[base + HEADER_WORDS + refs + index] = value
            space.store_count += 1

        return read_ref, read_scalar, write_scalar

    def compile_ref_count(self):
        """Specialised ``ref_count`` of the object at ``obj`` (the benchmark
        engine's random-slot picker): equivalent to ``type_of`` +
        ``length_of`` — two charged loads, same errors — in one call."""
        space = self.space
        types = self.types
        by_addr = types._by_addr
        shift = space.frame_shift
        word_mask = space._word_mask
        resolve = space._resolve

        def ref_count_of(obj: int) -> int:
            if obj & 3:
                raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
            fi = obj >> shift
            frame = (
                space._cache_frame
                if fi == space._cache_index
                else resolve(fi, obj + 4, "load from")
            )
            words = frame.words
            b = (obj >> 2) & word_mask
            space.load_count += 1
            desc = by_addr.get(words[b + 1])
            if desc is None:
                desc = types.by_addr(words[b + 1])
            space.load_count += 1
            code = desc.ref_code
            return words[b + 2] if code < 0 else code

        return ref_count_of

    # ------------------------------------------------------------------
    # Raw field access (no barrier — the runtime layers barriers on top)
    # ------------------------------------------------------------------
    def get_ref(self, obj: int, index: int) -> int:
        return self.space.load(self.ref_slot_addr(obj, index))

    def set_ref_raw(self, obj: int, index: int, value: int) -> None:
        """Store a reference without a write barrier.  GC internals only."""
        self.space.store(self.ref_slot_addr(obj, index), value)

    def get_scalar(self, obj: int, index: int) -> int:
        return self.space.load(self.scalar_slot_addr(obj, index))

    def set_scalar(self, obj: int, index: int, value: int) -> None:
        self.space.store(self.scalar_slot_addr(obj, index), value)

    # ------------------------------------------------------------------
    # Object initialisation
    # ------------------------------------------------------------------
    def init_header(self, addr: int, desc: TypeDescriptor, length: int = 0) -> None:
        """Write a fresh header.  The type slot is *not* written here: the
        runtime writes it through the write barrier so that barrier traffic
        matches the paper's description of allocation in Jikes RVM."""
        self.space.store(addr + STATUS_WORD * WORD_BYTES, 0)
        self.space.store(addr + LENGTH_WORD * WORD_BYTES, length)

    def copy_words(self, src: int, dst: int, nwords: int) -> None:
        """Copy an object body in one bulk kernel call (collection copying)."""
        self.space.copy_words(src, dst, nwords)
