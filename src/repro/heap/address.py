"""Address arithmetic for the simulated heap.

The simulated machine is word addressed underneath but exposes byte
addresses, exactly like the 32-bit PowerPC the paper ran on: a *word* is 4
bytes, object fields are one word wide, and all object addresses are word
aligned.  ``NULL`` is address 0; frame 0 is never mapped so no valid object
can alias it.

A *frame* (paper §3.3.1) is an aligned, contiguous, power-of-two region of
the address space.  Frames are the granularity of the write barrier: the
barrier distinguishes inter-frame from intra-frame pointers with a single
shift and compare (paper Fig. 4), which is implemented literally by
:func:`frame_of`.
"""

from __future__ import annotations

from ..errors import InvalidAddress

#: Bytes per machine word (the paper targets a 32-bit PowerPC).
WORD_BYTES = 4

#: log2 of :data:`WORD_BYTES`.
LOG_WORD_BYTES = 2

#: The null reference.
NULL = 0

#: Default log2 of the frame size in bytes (4 KiB frames).  Experiments may
#: override this per-VM; it only has to be a power of two.
DEFAULT_FRAME_SHIFT = 12


def words_to_bytes(words: int) -> int:
    """Convert a size in words to a size in bytes."""
    return words << LOG_WORD_BYTES


def bytes_to_words(nbytes: int) -> int:
    """Convert a byte count to the number of words needed to hold it."""
    return (nbytes + WORD_BYTES - 1) >> LOG_WORD_BYTES


def is_word_aligned(addr: int) -> bool:
    """True iff ``addr`` falls on a word boundary."""
    return (addr & (WORD_BYTES - 1)) == 0


def frame_of(addr: int, frame_shift: int = DEFAULT_FRAME_SHIFT) -> int:
    """The frame index containing ``addr`` (the paper's ``addr >>> FRAME_SIZE_LOG``)."""
    return addr >> frame_shift


def frame_base(frame_index: int, frame_shift: int = DEFAULT_FRAME_SHIFT) -> int:
    """The byte address of the first word of frame ``frame_index``."""
    return frame_index << frame_shift


def frame_offset_words(addr: int, frame_shift: int = DEFAULT_FRAME_SHIFT) -> int:
    """Word offset of ``addr`` within its frame."""
    return (addr & ((1 << frame_shift) - 1)) >> LOG_WORD_BYTES


def check_word_aligned(addr: int) -> int:
    """Return ``addr`` unchanged, raising :class:`InvalidAddress` if misaligned."""
    if addr & (WORD_BYTES - 1):
        raise InvalidAddress(f"address {addr:#x} is not word aligned")
    return addr
