"""Simulated heap substrate: address space, frames, object model, boot image.

This package is the "virtual memory + object layout" layer the collectors
are built on.  It corresponds to the parts of Jikes RVM the paper's GCTk
toolkit relied upon: a frame-granularity address space, bump allocation,
an object model with status/type/length headers, and an immortal boot
image.
"""

from .address import (
    DEFAULT_FRAME_SHIFT,
    LOG_WORD_BYTES,
    NULL,
    WORD_BYTES,
    bytes_to_words,
    frame_base,
    frame_of,
    words_to_bytes,
)
from .allocator import BumpRegion
from .bootimage import BootImage
from .frame import BOOT_ORDER, UNASSIGNED_ORDER, Frame
from .objectmodel import (
    FORWARDED_BIT,
    HEADER_WORDS,
    LENGTH_WORD,
    STATUS_WORD,
    TYPE_WORD,
    ObjectModel,
    TypeDescriptor,
    TypeKind,
    TypeRegistry,
)
from .space import AddressSpace

# HeapVerifier moved to repro.sanitizer.heapcheck (PR 4); re-exported here
# for compatibility.  Import from the new home to keep the old
# ``repro.heap.verify`` shim's DeprecationWarning out of plain
# ``import repro``.
from ..sanitizer.heapcheck import HeapVerifier, VerifyReport

__all__ = [
    "AddressSpace",
    "BOOT_ORDER",
    "BootImage",
    "BumpRegion",
    "DEFAULT_FRAME_SHIFT",
    "FORWARDED_BIT",
    "Frame",
    "HEADER_WORDS",
    "HeapVerifier",
    "LENGTH_WORD",
    "LOG_WORD_BYTES",
    "NULL",
    "ObjectModel",
    "STATUS_WORD",
    "TYPE_WORD",
    "TypeDescriptor",
    "TypeKind",
    "TypeRegistry",
    "UNASSIGNED_ORDER",
    "VerifyReport",
    "WORD_BYTES",
    "bytes_to_words",
    "frame_base",
    "frame_of",
    "words_to_bytes",
]
