"""The boot image: immortal objects mapped outside the collected heap.

Jikes RVM pre-compiles the VM into a boot image whose objects are never
moved or reclaimed.  Two aspects matter to the paper and are reproduced
here:

* **Type (TIB) objects.**  Every heap object's type slot points at a type
  object in the boot image.  Because the type object is (much) older than
  the heap object, the initialising store is exactly the barrier-heavy
  pattern §3.3.2 discusses.
* **Boot → heap pointers.**  Writes into boot-image objects that create
  pointers into the heap must be remembered.  Boot frames carry
  :data:`~repro.heap.frame.BOOT_ORDER`, so the ordinary Beltway barrier
  records these writes and no collector ever scans the boot image
  (unlike the paper's Appel baseline, which re-scans it — a difference the
  paper calls out in §4.2.1 and which our gctk baseline mirrors).
"""

from __future__ import annotations

from typing import List

from ..errors import HeapCorruption
from .address import WORD_BYTES
from .allocator import BumpRegion
from .frame import Frame
from .objectmodel import (
    HEADER_WORDS,
    ObjectModel,
    TypeDescriptor,
    TypeKind,
    TypeRegistry,
)
from .space import AddressSpace

#: The meta-type: the type of type objects.  Its own type slot points at
#: itself, closing the usual metaclass knot.
METATYPE_NAME = "<type>"


class BootImage:
    """Immortal bump-allocated space holding type objects and globals."""

    def __init__(self, space: AddressSpace, types: TypeRegistry, model: ObjectModel):
        self.space = space
        self.types = types
        self.model = model
        self._region = BumpRegion(space)
        self.frames: List[Frame] = []
        self._objects: List[int] = []
        self._metatype = types.define(METATYPE_NAME, nrefs=0, nscalars=1)
        self._install_type_object(self._metatype)

    # ------------------------------------------------------------------
    def _acquire(self) -> Frame:
        frame = self.space.acquire_frame("boot", boot=True)
        self.frames.append(frame)
        self._region.add_frame(frame)
        return frame

    def _alloc_raw(self, size_words: int) -> int:
        addr = self._region.alloc(size_words)
        if addr == 0:
            self._acquire()
            addr = self._region.alloc(size_words)
        if addr == 0:
            raise HeapCorruption("boot-image allocation failed after new frame")
        self._objects.append(addr)
        return addr

    def _install_type_object(self, desc: TypeDescriptor) -> int:
        """Allocate the boot-image object mirroring ``desc``."""
        addr = self._alloc_raw(self._metatype.size_words())
        self.model.init_header(addr, self._metatype)
        meta_addr = self._metatype.addr or addr  # self for the metatype
        # Boot-time raw store: the collector is not live yet and boot
        # objects are never collected, so no barrier is required here.
        self.space.store(addr + WORD_BYTES, meta_addr)
        # Install before touching scalar fields: decoding the metatype's own
        # scalar slots requires its address to already be in the registry.
        self.types.install(desc, addr)
        self.model.set_scalar(addr, 0, desc.type_id)
        return addr

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def define_type(self, name: str, nrefs: int = 0, nscalars: int = 0) -> TypeDescriptor:
        """Define a scalar type and install its boot-image type object."""
        desc = self.types.define(name, nrefs=nrefs, nscalars=nscalars)
        self._install_type_object(desc)
        return desc

    def define_ref_array(self, name: str) -> TypeDescriptor:
        desc = self.types.define_ref_array(name)
        self._install_type_object(desc)
        return desc

    def define_scalar_array(self, name: str) -> TypeDescriptor:
        desc = self.types.define_scalar_array(name)
        self._install_type_object(desc)
        return desc

    def alloc_global_table(self, slots: int) -> int:
        """Allocate an immortal reference array used as a global root table.

        Stores into it go through the write barrier like any other heap
        store, so boot→heap pointers are remembered rather than scanned.
        """
        if "<globals>" not in {d.name for d in self.types}:
            desc = self.define_ref_array("<globals>")
        else:
            desc = self.types.by_name("<globals>")
        addr = self._alloc_raw(desc.size_words(slots))
        self.model.init_header(addr, desc, length=slots)
        self.space.store(addr + WORD_BYTES, desc.addr)
        return addr

    def alloc_ballast(self, ref_slots: int) -> int:
        """Populate the boot image with VM-code ballast objects.

        Jikes RVM's boot image is tens of megabytes of pre-compiled VM
        whose reference slots a boundary-barrier collector must rescan at
        every collection (§4.2.1).  The scaled reproduction models it as
        chained 8-ref objects totalling ``ref_slots`` reference slots;
        collectors that scan the boot image pay for every one of them,
        collectors with a boot-filtering barrier (Beltway) pay nothing.
        Returns the number of objects created.
        """
        if ref_slots <= 0:
            return 0
        name = "<boot-code>"
        if name not in {d.name for d in self.types}:
            desc = self.define_type(name, nrefs=8, nscalars=1)
        else:
            desc = self.types.by_name(name)
        created = 0
        previous = 0
        remaining = ref_slots
        while remaining > 0:
            addr = self._alloc_raw(desc.size_words())
            self.model.init_header(addr, desc)
            self.space.store(addr + WORD_BYTES, desc.addr)
            if previous:
                # boot->boot chain: scanned, never copied
                self.model.set_ref_raw(addr, 0, previous)
            previous = addr
            created += 1
            remaining -= desc.nrefs
        return created

    def iter_objects(self):
        """Every boot-image object, in allocation order.

        Collectors without boot-pointer remembering (the gctk baselines)
        scan all of these at every collection; the verifier treats them
        as roots."""
        return iter(self._objects)

    @property
    def size_frames(self) -> int:
        return len(self.frames)
