"""Frames: the unit of address-space mapping, barrier filtering and reuse.

A frame owns the backing storage for one aligned power-of-two slice of the
simulated address space.  The collector-facing metadata kept here is exactly
the metadata the paper attaches to frames:

* ``collect_order`` — the frame's *relative collection order* (paper
  §3.3.1: "we maintain a number associated with each frame that indicates
  the frame's relative collection order").  The write barrier compares the
  orders of source and target frames and records a pointer only when the
  target would be collected sooner than the source.
* the owning increment (or space, for non-Beltway collectors), so a frame's
  membership can be tested in O(1) during collection.

Frames are recycled through the free pool of the :class:`~repro.heap.space.
AddressSpace`; their storage is zeroed on release so stale pointers can
never leak between collector epochs.

Storage is one signed 64-bit slot per simulated word, typed-array backed:
slices of it move through C memcpy, which is what makes the bulk kernels
in :mod:`repro.heap.space` fast.  Simulated words therefore must fit in a
signed 64-bit integer — addresses, headers and benchmark scalars all do by
construction.

Frames created by an :class:`~repro.heap.space.AddressSpace` do not own
their storage: ``words`` is a writable memoryview into one of the space's
contiguous *slabs* (``_SLAB_FRAMES`` frames per ``array('q')``), so
consecutive frame indices are consecutive in memory.  That slab layout is
what the substrate-kernel tier (:mod:`repro.kernels`) builds on — a numpy
view or a C pointer per slab addresses every frame without per-frame
indirection, and slabs are never resized, so those views stay valid for
the slab's lifetime.  A standalone ``Frame`` (no ``storage`` argument)
allocates its own array, preserving the historical behaviour for direct
construction in tests.
"""

from __future__ import annotations

from array import array
from typing import Optional

from .address import WORD_BYTES

#: Collection order assigned to frames that are never collected (the boot
#: image).  Any pointer *from* a boot frame *into* the heap therefore always
#: satisfies the barrier's ``order[target] < order[source]`` test and is
#: remembered, which is how the paper's Beltway barrier subsumes boot-image
#: scanning (§4.2.1).
BOOT_ORDER = 1 << 62

#: Order for frames that are currently free / unassigned.  Using the same
#: sentinel as BOOT_ORDER would hide bugs, so keep it distinct and poisoned.
UNASSIGNED_ORDER = -1

#: Bytes per storage slot of the typed backing array ('q' = int64).
_SLOT_BYTES = 8

#: Shared all-zero source arrays for :meth:`Frame.reset`, keyed by frame
#: size.  Frames of one space all share a size, so release-time zeroing
#: becomes a slice assign from this cache instead of a fresh allocation
#: per release (frame release is on the collection reclaim path).
_ZERO_CACHE: dict = {}


class Frame:
    """Backing storage plus GC metadata for one frame of address space."""

    __slots__ = (
        "index",
        "words",
        "size_words",
        "collect_order",
        "increment",
        "space_name",
        "used_words",
        "allocated",
    )

    def __init__(self, index: int, size_words: int, storage=None):
        self.index = index
        self.size_words = size_words
        if storage is None:
            storage = memoryview(array("q", bytes(_SLOT_BYTES * size_words)))
        self.words = storage
        self.collect_order: int = UNASSIGNED_ORDER
        #: The owning Increment (Beltway) or space object (gctk collectors).
        self.increment: Optional[object] = None
        self.space_name: str = "free"
        #: High-water bump mark, in words, for linear walks and occupancy.
        self.used_words: int = 0
        self.allocated: bool = False

    def reset(self) -> None:
        """Return the frame to its pristine, free state (storage zeroed)."""
        used = self.used_words
        if used:
            zeros = _ZERO_CACHE.get(self.size_words)
            if zeros is None:
                zeros = _ZERO_CACHE[self.size_words] = memoryview(
                    array("q", bytes(_SLOT_BYTES * self.size_words))
                )
            self.words[:used] = zeros[:used]
        self.collect_order = UNASSIGNED_ORDER
        self.increment = None
        self.space_name = "free"
        self.used_words = 0
        self.allocated = False

    @property
    def size_bytes(self) -> int:
        return self.size_words * WORD_BYTES

    @property
    def free_words(self) -> int:
        return self.size_words - self.used_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame {self.index} {self.space_name} order={self.collect_order} "
            f"used={self.used_words}/{self.size_words}w>"
        )
