"""Deprecated shim: the heap verifier moved to ``repro.sanitizer.heapcheck``.

Importing this module keeps working but warns; new code should import
:class:`~repro.sanitizer.heapcheck.HeapVerifier` (and friends) from the
sanitizer package, where the verifier shares its frame-walk with the
differential checker.
"""

from __future__ import annotations

import warnings

from ..sanitizer.heapcheck import HeapVerifier, VerifyReport

__all__ = ["HeapVerifier", "VerifyReport"]

warnings.warn(
    "repro.heap.verify moved to repro.sanitizer.heapcheck; "
    "this shim will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
