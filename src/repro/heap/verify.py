"""Heap verifier: exhaustively checks reachable-heap invariants.

Used by the test suite after every collection (and available in debug VMs)
to catch collector bugs at their source rather than at some later crash:

* every root and every reference slot holds NULL or the address of a live,
  well-formed object;
* no reachable object is left forwarded after a collection completes;
* objects lie entirely within the ``used_words`` prefix of mapped frames;
* type slots point at boot-image type objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Set

from ..errors import HeapCorruption
from .address import WORD_BYTES
from .frame import UNASSIGNED_ORDER
from .objectmodel import FORWARDED_BIT, ObjectModel
from .space import AddressSpace


@dataclass
class VerifyReport:
    """Summary of a successful verification pass."""

    objects: int
    words: int
    ref_slots: int

    @property
    def live_bytes(self) -> int:
        return self.words * WORD_BYTES


class HeapVerifier:
    """Breadth-first verification of everything reachable from the roots."""

    def __init__(self, space: AddressSpace, model: ObjectModel):
        self.space = space
        self.model = model

    def check_object(self, addr: int) -> int:
        """Validate a single object header; returns its size in words."""
        if addr % WORD_BYTES:
            raise HeapCorruption(f"object address {addr:#x} misaligned")
        if not self.space.is_mapped(addr):
            raise HeapCorruption(f"object address {addr:#x} unmapped")
        frame = self.space.frame_containing(addr)
        if frame.collect_order == UNASSIGNED_ORDER:
            raise HeapCorruption(
                f"object {addr:#x} lives in unstamped frame {frame.index}"
            )
        status = self.model.status(addr)
        if status & FORWARDED_BIT:
            raise HeapCorruption(
                f"object {addr:#x} is forwarded outside a collection"
            )
        size = self.model.size_words(addr)  # raises if the type is bogus
        offset_words = (addr - self.space.frame_base(frame)) // WORD_BYTES
        if offset_words + size > frame.used_words:
            raise HeapCorruption(
                f"object {addr:#x} ({size} words) overruns frame "
                f"{frame.index} used prefix ({frame.used_words} words)"
            )
        return size

    def verify(self, roots: Iterable[int]) -> VerifyReport:
        """Walk the heap from ``roots``; raises :class:`HeapCorruption` on
        the first violated invariant, otherwise reports live totals."""
        visited: Set[int] = set()
        queue = []
        ref_slots = 0
        for root in roots:
            if root and root not in visited:
                visited.add(root)
                queue.append(root)
        words = 0
        model = self.model
        while queue:
            obj = queue.pop()
            words += self.check_object(obj)
            _, type_value, _, ref_values = model.scan_ref_slots(obj)
            ref_slots += 1 + len(ref_values)
            if type_value and type_value not in visited:
                visited.add(type_value)
                queue.append(type_value)
            for target in ref_values:
                if target == 0:
                    continue
                if target not in visited:
                    visited.add(target)
                    queue.append(target)
        return VerifyReport(objects=len(visited), words=words, ref_slots=ref_slots)
