"""Bump-pointer allocation over a growing list of frames.

Both Beltway increments and the gctk baseline spaces allocate the same way
Jikes RVM's copying spaces do: a bump pointer through contiguous frames.
Objects never span frames; when an object does not fit in the tail of the
current frame the tail is wasted (tracked as ``wasted_words``) and
allocation moves to the next frame.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import OutOfMemory
from .address import WORD_BYTES
from .frame import Frame
from .space import AddressSpace


class BumpRegion:
    """A bump-allocated region composed of whole frames."""

    def __init__(self, space: AddressSpace):
        self.space = space
        self.frames: List[Frame] = []
        self._cursor = 0  # byte address of next free word
        self._limit = 0  # byte address one past the current frame
        self._frame_base = 0  # byte address of the current frame's word 0
        self._current: Optional[Frame] = None
        self._frame_words = space.frame_words
        self.allocated_words = 0  # words handed out to objects
        self.wasted_words = 0  # frame tails skipped by oversize objects
        self.rollovers = 0  # frames appended over the region's lifetime

    # ------------------------------------------------------------------
    def add_frame(self, frame: Frame) -> None:
        """Append a freshly acquired frame and point the cursor at it."""
        self.rollovers += 1
        if self.frames and self._cursor < self._limit:
            # Abandon the current tail; it becomes waste.
            self.wasted_words += (self._limit - self._cursor) // WORD_BYTES
            current = self.frames[-1]
            current.used_words = current.size_words
        self.frames.append(frame)
        self._cursor = self.space.frame_base(frame)
        self._limit = self._cursor + frame.size_bytes
        self._frame_base = self._cursor
        self._current = frame

    def alloc(self, size_words: int) -> int:
        """Bump-allocate ``size_words``; returns 0 if a new frame is needed."""
        if size_words > self._frame_words:
            raise OutOfMemory(
                f"object of {size_words} words exceeds the frame size "
                f"({self._frame_words} words); the reproduction, like "
                "GCTk, has no large-object space",
                requested_words=size_words,
            )
        cursor = self._cursor
        new_cursor = cursor + size_words * WORD_BYTES
        if new_cursor > self._limit:
            return 0
        self._cursor = new_cursor
        self._current.used_words = (new_cursor - self._frame_base) // WORD_BYTES
        self.allocated_words += size_words
        return cursor

    # ------------------------------------------------------------------
    @property
    def current_frame(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def occupancy_words(self) -> int:
        """Words consumed (allocated plus waste) — the paper's "occupancy"."""
        return self.allocated_words + self.wasted_words

    def frame_tail_words(self) -> int:
        """Free words remaining in the current frame."""
        return (self._limit - self._cursor) // WORD_BYTES

    def reset(self) -> None:
        """Forget all frames (the owner releases them separately)."""
        self.frames = []
        self._cursor = 0
        self._limit = 0
        self._frame_base = 0
        self._current = None
        self.allocated_words = 0
        self.wasted_words = 0
