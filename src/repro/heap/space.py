"""The simulated address space: a frame table plus load/store.

The address space hands out frames against a fixed heap budget (the "heap
size" of every experiment), recycles released frames through a free pool,
and services word-granularity loads and stores.  It deliberately knows
nothing about objects, belts or collectors — it is the "virtual memory"
substrate the paper's GCTk sits on.

Boot-image frames are mapped outside the heap budget (they model the Jikes
RVM boot image, which is not part of the collected heap) and are stamped
with :data:`~repro.heap.frame.BOOT_ORDER` so the ordinary write barrier
remembers boot→heap pointers.

Every experiment funnels millions of simulated accesses through this
module, so it is written for the interpreter's fast paths:

* frame resolution is direct table indexing guarded by a single-entry
  cache (``_cache_index``/``_cache_frame``) — consecutive accesses to the
  same frame, the overwhelmingly common pattern under bump allocation and
  Cheney scans, skip the table walk entirely;
* the bulk kernels :meth:`load_slice`, :meth:`store_slice` and
  :meth:`copy_words` move whole runs of words as typed-array slices (C
  memcpy) instead of word-at-a-time Python loops.

The bulk kernels account ``load_count``/``store_count`` *word-accurately*:
``copy_words(src, dst, n)`` counts exactly ``n`` loads and ``n`` stores,
identical to the word-at-a-time reference loop they replace, so every
metric the cost model derives is bit-identical either way.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence

from ..errors import InvalidAddress, OutOfMemory
from .address import (
    DEFAULT_FRAME_SHIFT,
    LOG_WORD_BYTES,
    WORD_BYTES,
)
from .frame import BOOT_ORDER, UNASSIGNED_ORDER, Frame

#: Low-bit mask catching misaligned byte addresses.
_ALIGN_MASK = WORD_BYTES - 1

#: Frames per storage slab (power of two).  Frame storage is carved out of
#: contiguous ``array('q')`` slabs so frame index ``i`` lives at slab
#: ``i >> _SLAB_SHIFT``, word offset ``(i & (_SLAB_FRAMES-1)) *
#: frame_words``; the substrate-kernel tier addresses the whole heap
#: through one numpy view / C pointer per slab.  Slabs are never resized,
#: so those views stay valid for the life of the space.
_SLAB_SHIFT = 9
_SLAB_FRAMES = 1 << _SLAB_SHIFT

#: Bytes per storage slot ('q' = int64 per simulated 4-byte word).
_SLOT_BYTES = 8


class AddressSpace:
    """Frame table, free pool, and word-granularity memory access.

    Parameters
    ----------
    heap_frames:
        The heap budget, in frames.  ``heap_frames * frame_bytes`` is the
        heap size every experiment sweeps.
    frame_shift:
        log2 of the frame size in bytes.
    """

    def __init__(self, heap_frames: int, frame_shift: int = DEFAULT_FRAME_SHIFT):
        if heap_frames < 2:
            raise OutOfMemory(f"heap of {heap_frames} frames is too small to map")
        self.frame_shift = frame_shift
        self.frame_bytes = 1 << frame_shift
        self.frame_words = self.frame_bytes >> LOG_WORD_BYTES
        #: Word-offset mask within a frame (frames are powers of two).
        self._word_mask = self.frame_words - 1
        self.heap_frames = heap_frames
        # Contiguous frame-storage slabs (see _SLAB_FRAMES above).
        self.slab_frames = _SLAB_FRAMES
        self._slabs: List[array] = []
        self._slab_views: List[memoryview] = []
        # Frame index 0 is never mapped: address 0 is NULL.
        self._frames: List[Optional[Frame]] = [None]
        #: collect_order per frame index, kept flat for the hot barrier path.
        self.orders: List[int] = [UNASSIGNED_ORDER]
        #: Byte-per-frame mapped flags, mirroring ``_frames[i].allocated``;
        #: the substrate-kernel trace memmoves this straight into its C
        #: view instead of walking the frame table (DESIGN §13).
        self.mapped_bytes = bytearray(1)
        #: When not None, called with each newly acquired frame's index —
        #: the compiled trace's hook for patching its C view incrementally
        #: instead of rebuilding it after every copy-space refill.
        self.acquire_hook = None
        self._free_pool: List[Frame] = []
        self.heap_frames_in_use = 0
        self.boot_frames_in_use = 0
        # Access statistics (consumed by the cost model).
        self.load_count = 0
        self.store_count = 0
        # Single-entry frame cache; -1 = empty (no address maps there).
        self._cache_index = -1
        self._cache_frame: Optional[Frame] = None

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def heap_frames_free(self) -> int:
        """Frames still available inside the heap budget."""
        return self.heap_frames - self.heap_frames_in_use

    def acquire_frame(self, space_name: str, boot: bool = False) -> Frame:
        """Map a frame for ``space_name``.

        Heap frames are counted against the heap budget and raising
        :class:`OutOfMemory` when it is exhausted; boot frames are not.
        Callers (collector plans) are responsible for honouring the copy
        reserve *before* asking for a frame — the space only enforces the
        hard budget.
        """
        if not boot:
            if self.heap_frames_in_use >= self.heap_frames:
                raise OutOfMemory(
                    f"heap budget of {self.heap_frames} frames exhausted"
                )
            self.heap_frames_in_use += 1
        else:
            self.boot_frames_in_use += 1
        if self._free_pool and not boot:
            frame = self._free_pool.pop()
        else:
            index = len(self._frames)
            frame = Frame(index, self.frame_words, self._frame_storage(index))
            self._frames.append(frame)
            self.orders.append(UNASSIGNED_ORDER)
            self.mapped_bytes.append(0)
        frame.allocated = True
        frame.space_name = space_name
        self.mapped_bytes[frame.index] = 1
        if boot:
            self.set_order(frame, BOOT_ORDER)
        if self.acquire_hook is not None:
            self.acquire_hook(frame.index)
        return frame

    def _frame_storage(self, index: int) -> memoryview:
        """The slab-backed storage view for frame ``index``."""
        slab_index = index >> _SLAB_SHIFT
        while slab_index >= len(self._slabs):
            slab = array(
                "q", bytes(_SLOT_BYTES * _SLAB_FRAMES * self.frame_words)
            )
            self._slabs.append(slab)
            self._slab_views.append(memoryview(slab))
        offset = (index & (_SLAB_FRAMES - 1)) * self.frame_words
        return self._slab_views[slab_index][offset : offset + self.frame_words]

    def release_frame(self, frame: Frame) -> None:
        """Unmap a heap frame and recycle it through the free pool."""
        if not frame.allocated:
            raise InvalidAddress(f"releasing unallocated frame {frame.index}")
        if self.orders[frame.index] == BOOT_ORDER:
            raise InvalidAddress("boot-image frames are immortal")
        frame.reset()
        self.orders[frame.index] = UNASSIGNED_ORDER
        self.mapped_bytes[frame.index] = 0
        self.heap_frames_in_use -= 1
        self._free_pool.append(frame)
        if self._cache_index == frame.index:
            self._cache_index = -1
            self._cache_frame = None

    def set_order(self, frame: Frame, order: int) -> None:
        """Stamp ``frame`` with its relative collection order."""
        frame.collect_order = order
        self.orders[frame.index] = order

    def frame(self, index: int) -> Frame:
        """The :class:`Frame` with the given index (must be mapped)."""
        frames = self._frames
        frame = frames[index] if 0 <= index < len(frames) else None
        if frame is None or not frame.allocated:
            raise InvalidAddress(f"frame {index} is not mapped")
        return frame

    def frame_containing(self, addr: int) -> Frame:
        """The mapped frame containing byte address ``addr``."""
        return self.frame(addr >> self.frame_shift)

    def is_mapped(self, addr: int) -> bool:
        """True iff ``addr`` falls inside a mapped frame."""
        index = addr >> self.frame_shift
        return (
            0 < index < len(self._frames)
            and self._frames[index] is not None
            and self._frames[index].allocated
        )

    def iter_frames(self):
        """All currently mapped frames (boot and heap)."""
        for frame in self._frames[1:]:
            if frame is not None and frame.allocated:
                yield frame

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------
    def _resolve(self, index: int, addr: int, op: str) -> Frame:
        """Frame-cache miss path: direct table lookup, then fill the cache."""
        frames = self._frames
        frame = frames[index] if 0 < index < len(frames) else None
        if frame is None or not frame.allocated:
            raise InvalidAddress(f"{op} unmapped address {addr:#x}")
        self._cache_index = index
        self._cache_frame = frame
        return frame

    def load(self, addr: int) -> int:
        """Load the word at byte address ``addr``."""
        # Hot path: the 3/2 literals are WORD_BYTES-1 / LOG_WORD_BYTES
        # (global lookups cost real time at this call frequency).
        if addr & 3:
            raise InvalidAddress(f"misaligned load from {addr:#x}")
        index = addr >> self.frame_shift
        frame = (
            self._cache_frame
            if index == self._cache_index
            else self._resolve(index, addr, "load from")
        )
        self.load_count += 1
        return frame.words[(addr >> 2) & self._word_mask]

    def store(self, addr: int, value: int) -> None:
        """Store ``value`` into the word at byte address ``addr``."""
        if addr & 3:
            raise InvalidAddress(f"misaligned store to {addr:#x}")
        index = addr >> self.frame_shift
        frame = (
            self._cache_frame
            if index == self._cache_index
            else self._resolve(index, addr, "store to")
        )
        self.store_count += 1
        frame.words[(addr >> 2) & self._word_mask] = value

    # ------------------------------------------------------------------
    # Bulk kernels (word-accurate counter accounting)
    # ------------------------------------------------------------------
    def load_slice(self, addr: int, nwords: int) -> List[int]:
        """Load ``nwords`` consecutive words starting at ``addr``.

        Equivalent to ``[self.load(addr + i * WORD_BYTES) for i in
        range(nwords)]`` — including the ``load_count`` accounting — but
        the words move as typed-array slices.  Runs spanning adjacent
        mapped frames are chunked per frame; touching any unmapped word
        raises :class:`InvalidAddress`.
        """
        if addr & _ALIGN_MASK:
            raise InvalidAddress(f"misaligned load from {addr:#x}")
        if nwords < 0:
            raise InvalidAddress(f"negative load_slice length {nwords}")
        if nwords == 0:
            return []
        shift = self.frame_shift
        word_mask = self._word_mask
        frame_words = self.frame_words
        self.load_count += nwords
        index = addr >> shift
        frame = (
            self._cache_frame
            if index == self._cache_index
            else self._resolve(index, addr, "load from")
        )
        offset = (addr >> LOG_WORD_BYTES) & word_mask
        if offset + nwords <= frame_words:  # fast path: one frame
            return frame.words[offset : offset + nwords].tolist()
        out: List[int] = []
        while nwords:
            chunk = min(nwords, frame_words - offset)
            out.extend(frame.words[offset : offset + chunk])
            nwords -= chunk
            if nwords:
                addr += chunk * WORD_BYTES
                frame = self._resolve(addr >> shift, addr, "load from")
                offset = 0
        return out

    def store_slice(self, addr: int, values: Sequence[int]) -> None:
        """Store ``values`` into consecutive words starting at ``addr``.

        Equivalent to ``for i, v in enumerate(values): self.store(addr +
        i * WORD_BYTES, v)`` — including the ``store_count`` accounting.
        """
        if addr & _ALIGN_MASK:
            raise InvalidAddress(f"misaligned store to {addr:#x}")
        nwords = len(values)
        if nwords == 0:
            return
        buf = values if isinstance(values, array) and values.typecode == "q" else array("q", values)
        shift = self.frame_shift
        word_mask = self._word_mask
        frame_words = self.frame_words
        # Resolve every touched frame before mutating anything, so a store
        # run ending in unmapped memory fails without partial effects (the
        # word-at-a-time loop would have stored a prefix; no caller relies
        # on that, and all-or-nothing is the safer contract).
        index = addr >> shift
        frame = (
            self._cache_frame
            if index == self._cache_index
            else self._resolve(index, addr, "store to")
        )
        offset = (addr >> LOG_WORD_BYTES) & word_mask
        if offset + nwords <= frame_words:  # fast path: one frame
            frame.words[offset : offset + nwords] = buf
            self.store_count += nwords
            return
        end = addr + (nwords - 1) * WORD_BYTES
        for probe in range((addr >> shift) + 1, (end >> shift) + 1):
            self._resolve(probe, probe << shift, "store to")
        self.store_count += nwords
        pos = 0
        while nwords:
            frame = self._resolve(addr >> shift, addr, "store to")
            offset = (addr >> LOG_WORD_BYTES) & word_mask
            chunk = min(nwords, frame_words - offset)
            frame.words[offset : offset + chunk] = buf[pos : pos + chunk]
            pos += chunk
            nwords -= chunk
            addr += chunk * WORD_BYTES
        return

    def copy_words(self, src: int, dst: int, nwords: int) -> None:
        """Copy ``nwords`` words from ``src`` to ``dst`` (both byte addrs).

        The cross-frame bulk-copy kernel behind object evacuation:
        equivalent to ``for i in range(nwords): self.store(dst + i*4,
        self.load(src + i*4))`` — counting exactly ``nwords`` loads and
        ``nwords`` stores — but the body is typed-array slice assignment.
        """
        if src & _ALIGN_MASK:
            raise InvalidAddress(f"misaligned load from {src:#x}")
        if dst & _ALIGN_MASK:
            raise InvalidAddress(f"misaligned store to {dst:#x}")
        if nwords < 0:
            raise InvalidAddress(f"negative copy_words length {nwords}")
        if nwords == 0:
            return
        shift = self.frame_shift
        word_mask = self._word_mask
        frame_words = self.frame_words
        cache_index = self._cache_index
        s_index = src >> shift
        d_index = dst >> shift
        s_frame = (
            self._cache_frame
            if s_index == cache_index
            else self._resolve(s_index, src, "load from")
        )
        d_frame = (
            self._cache_frame
            if d_index == self._cache_index
            else self._resolve(d_index, dst, "store to")
        )
        s_off = (src >> LOG_WORD_BYTES) & word_mask
        d_off = (dst >> LOG_WORD_BYTES) & word_mask
        self.load_count += nwords
        self.store_count += nwords
        if s_off + nwords <= frame_words and d_off + nwords <= frame_words:
            # Fast path: both runs inside one frame each.  Slice the source
            # first so an overlapping same-frame copy reads pre-copy words,
            # exactly like the reference loop run front to back would for
            # non-overlapping ranges (overlap never occurs in evacuation).
            d_frame.words[d_off : d_off + nwords] = s_frame.words[
                s_off : s_off + nwords
            ]
            return
        while nwords:
            chunk = min(nwords, frame_words - s_off, frame_words - d_off)
            d_frame.words[d_off : d_off + chunk] = s_frame.words[
                s_off : s_off + chunk
            ]
            nwords -= chunk
            if not nwords:
                return
            src += chunk * WORD_BYTES
            dst += chunk * WORD_BYTES
            s_off = (s_off + chunk) & word_mask
            d_off = (d_off + chunk) & word_mask
            if s_off == 0:
                s_frame = self._resolve(src >> shift, src, "load from")
            if d_off == 0:
                d_frame = self._resolve(dst >> shift, dst, "store to")

    def frame_base(self, frame: Frame) -> int:
        """Byte address of the first word of ``frame``."""
        return frame.index << self.frame_shift
