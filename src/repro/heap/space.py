"""The simulated address space: a frame table plus load/store.

The address space hands out frames against a fixed heap budget (the "heap
size" of every experiment), recycles released frames through a free pool,
and services word-granularity loads and stores.  It deliberately knows
nothing about objects, belts or collectors — it is the "virtual memory"
substrate the paper's GCTk sits on.

Boot-image frames are mapped outside the heap budget (they model the Jikes
RVM boot image, which is not part of the collected heap) and are stamped
with :data:`~repro.heap.frame.BOOT_ORDER` so the ordinary write barrier
remembers boot→heap pointers.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import InvalidAddress, OutOfMemory
from .address import (
    DEFAULT_FRAME_SHIFT,
    LOG_WORD_BYTES,
    WORD_BYTES,
)
from .frame import BOOT_ORDER, UNASSIGNED_ORDER, Frame


class AddressSpace:
    """Frame table, free pool, and word-granularity memory access.

    Parameters
    ----------
    heap_frames:
        The heap budget, in frames.  ``heap_frames * frame_bytes`` is the
        heap size every experiment sweeps.
    frame_shift:
        log2 of the frame size in bytes.
    """

    def __init__(self, heap_frames: int, frame_shift: int = DEFAULT_FRAME_SHIFT):
        if heap_frames < 2:
            raise OutOfMemory(f"heap of {heap_frames} frames is too small to map")
        self.frame_shift = frame_shift
        self.frame_bytes = 1 << frame_shift
        self.frame_words = self.frame_bytes >> LOG_WORD_BYTES
        self.heap_frames = heap_frames
        # Frame index 0 is never mapped: address 0 is NULL.
        self._frames: List[Optional[Frame]] = [None]
        #: collect_order per frame index, kept flat for the hot barrier path.
        self.orders: List[int] = [UNASSIGNED_ORDER]
        self._free_pool: List[Frame] = []
        self.heap_frames_in_use = 0
        self.boot_frames_in_use = 0
        # Access statistics (consumed by the cost model).
        self.load_count = 0
        self.store_count = 0

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def heap_frames_free(self) -> int:
        """Frames still available inside the heap budget."""
        return self.heap_frames - self.heap_frames_in_use

    def acquire_frame(self, space_name: str, boot: bool = False) -> Frame:
        """Map a frame for ``space_name``.

        Heap frames are counted against the heap budget and raising
        :class:`OutOfMemory` when it is exhausted; boot frames are not.
        Callers (collector plans) are responsible for honouring the copy
        reserve *before* asking for a frame — the space only enforces the
        hard budget.
        """
        if not boot:
            if self.heap_frames_in_use >= self.heap_frames:
                raise OutOfMemory(
                    f"heap budget of {self.heap_frames} frames exhausted"
                )
            self.heap_frames_in_use += 1
        else:
            self.boot_frames_in_use += 1
        if self._free_pool and not boot:
            frame = self._free_pool.pop()
        else:
            frame = Frame(len(self._frames), self.frame_words)
            self._frames.append(frame)
            self.orders.append(UNASSIGNED_ORDER)
        frame.allocated = True
        frame.space_name = space_name
        if boot:
            self.set_order(frame, BOOT_ORDER)
        return frame

    def release_frame(self, frame: Frame) -> None:
        """Unmap a heap frame and recycle it through the free pool."""
        if not frame.allocated:
            raise InvalidAddress(f"releasing unallocated frame {frame.index}")
        if self.orders[frame.index] == BOOT_ORDER:
            raise InvalidAddress("boot-image frames are immortal")
        frame.reset()
        self.orders[frame.index] = UNASSIGNED_ORDER
        self.heap_frames_in_use -= 1
        self._free_pool.append(frame)

    def set_order(self, frame: Frame, order: int) -> None:
        """Stamp ``frame`` with its relative collection order."""
        frame.collect_order = order
        self.orders[frame.index] = order

    def frame(self, index: int) -> Frame:
        """The :class:`Frame` with the given index (must be mapped)."""
        try:
            frame = self._frames[index]
        except IndexError:
            frame = None
        if frame is None or not frame.allocated:
            raise InvalidAddress(f"frame {index} is not mapped")
        return frame

    def frame_containing(self, addr: int) -> Frame:
        """The mapped frame containing byte address ``addr``."""
        return self.frame(addr >> self.frame_shift)

    def is_mapped(self, addr: int) -> bool:
        """True iff ``addr`` falls inside a mapped frame."""
        index = addr >> self.frame_shift
        return (
            0 < index < len(self._frames)
            and self._frames[index] is not None
            and self._frames[index].allocated
        )

    def iter_frames(self):
        """All currently mapped frames (boot and heap)."""
        for frame in self._frames[1:]:
            if frame is not None and frame.allocated:
                yield frame

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------
    def load(self, addr: int) -> int:
        """Load the word at byte address ``addr``."""
        index = addr >> self.frame_shift
        try:
            frame = self._frames[index]
        except IndexError:
            frame = None
        if frame is None or not frame.allocated:
            raise InvalidAddress(f"load from unmapped address {addr:#x}")
        self.load_count += 1
        offset = (addr - (index << self.frame_shift)) >> LOG_WORD_BYTES
        return frame.words[offset]

    def store(self, addr: int, value: int) -> None:
        """Store ``value`` into the word at byte address ``addr``."""
        if addr & (WORD_BYTES - 1):
            raise InvalidAddress(f"misaligned store to {addr:#x}")
        index = addr >> self.frame_shift
        try:
            frame = self._frames[index]
        except IndexError:
            frame = None
        if frame is None or not frame.allocated:
            raise InvalidAddress(f"store to unmapped address {addr:#x}")
        self.store_count += 1
        offset = (addr - (index << self.frame_shift)) >> LOG_WORD_BYTES
        frame.words[offset] = value

    def frame_base(self, frame: Frame) -> int:
        """Byte address of the first word of ``frame``."""
        return frame.index << self.frame_shift
