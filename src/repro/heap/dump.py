"""Heap inspection: occupancy maps, object statistics, DOT export.

Debugging aids for collector development: what a `jmap`/`jhat` would be
for this simulated heap.  Nothing here mutates the heap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .address import WORD_BYTES
from .objectmodel import ObjectModel
from .space import AddressSpace


@dataclass
class HeapCensus:
    """Aggregate statistics of the reachable heap."""

    objects: int = 0
    words: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)
    words_by_type: Dict[str, int] = field(default_factory=dict)
    edges: int = 0
    null_slots: int = 0
    max_depth: int = 0

    def top_types(self, n: int = 5) -> List[Tuple[str, int]]:
        return Counter(self.words_by_type).most_common(n)

    def summary(self) -> str:
        top = ", ".join(f"{t}:{w}w" for t, w in self.top_types(3))
        return (
            f"{self.objects} objects / {self.words} words; "
            f"{self.edges} edges, {self.null_slots} null slots; "
            f"heaviest types: {top}"
        )


def census(model: ObjectModel, roots: Iterable[int]) -> HeapCensus:
    """BFS census of everything reachable from ``roots``."""
    space = model.space
    out = HeapCensus()
    seen: Set[int] = set()
    frontier = [addr for addr in roots if addr]
    depth = 0
    for addr in frontier:
        seen.add(addr)
    while frontier:
        next_frontier = []
        for obj in frontier:
            desc = model.type_of(obj)
            size = model.size_words(obj)
            out.objects += 1
            out.words += size
            out.by_type[desc.name] = out.by_type.get(desc.name, 0) + 1
            out.words_by_type[desc.name] = (
                out.words_by_type.get(desc.name, 0) + size
            )
            for slot in model.iter_ref_slot_addrs(obj):
                target = space.load(slot)
                if not target:
                    out.null_slots += 1
                    continue
                out.edges += 1
                if target not in seen:
                    seen.add(target)
                    next_frontier.append(target)
        frontier = next_frontier
        if frontier:
            depth += 1
    out.max_depth = depth
    return out


def occupancy_map(space: AddressSpace) -> str:
    """One line per mapped frame: index, owner, fill bar."""
    lines = ["frame  owner         order        fill"]
    for frame in space.iter_frames():
        fill = frame.used_words / frame.size_words if frame.size_words else 0
        bar = "#" * int(round(fill * 20))
        order = frame.collect_order
        order_text = "boot" if order >= (1 << 61) else str(order)
        lines.append(
            f"{frame.index:5d}  {frame.space_name:<12s} {order_text:<12s} "
            f"[{bar:<20s}] {frame.used_words}/{frame.size_words}w"
        )
    return "\n".join(lines)


def to_dot(
    model: ObjectModel,
    roots: Iterable[int],
    max_objects: int = 200,
) -> str:
    """GraphViz DOT of the reachable object graph (truncated for sanity)."""
    space = model.space
    seen: Set[int] = set()
    stack = [addr for addr in roots if addr]
    edges: List[Tuple[int, int]] = []
    labels: Dict[int, str] = {}
    while stack and len(seen) < max_objects:
        obj = stack.pop()
        if obj in seen:
            continue
        seen.add(obj)
        desc = model.type_of(obj)
        labels[obj] = f"{desc.name}@{obj:#x}"
        for slot in model.iter_ref_slot_addrs(obj):
            target = space.load(slot)
            if target:
                edges.append((obj, target))
                if target not in seen:
                    stack.append(target)
    lines = ["digraph heap {", "  rankdir=LR;", "  node [shape=box];"]
    for obj, label in labels.items():
        lines.append(f'  n{obj} [label="{label}"];')
    for src, dst in edges:
        if src in labels and dst in labels:
            lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines)
