"""The one nearest-rank percentile implementation.

Three layers report percentiles — request latencies
(:mod:`repro.workloads.latency`), pause analytics
(:mod:`repro.analysis.pauses`) and the streaming profiler
(:mod:`repro.obs.profiler.pauses`) — and all of them are pinned
bit-identical to each other by goldens and point-identity tests.  That
contract only holds if every caller computes the *same* floats, so the
definition lives here, once, dependency-free (this module must stay
importable from any layer without cycles).

Nearest-rank (inclusive): the q-th percentile of n sorted values is the
value at rank ``max(1, ceil(q * n))``.  It is exact, monotone in q,
returns an element of the population (never an interpolation), and
``q=1.0`` is the maximum.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = ["percentile", "percentiles"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def percentiles(
    sorted_values: Sequence[float], qs: Iterable[float]
) -> Dict[float, float]:
    """Many quantiles of one pre-sorted population, as ``{q: value}``."""
    return {q: percentile(sorted_values, q) for q in qs}
