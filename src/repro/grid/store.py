"""The content-addressed on-disk result store (DESIGN §14).

Layout of a store directory::

    store/
      cells-<pid>-<token>.jsonl   one shard per writer process
      index.json                  atomically rebuilt consolidated snapshot

Each shard line is one cell: ``{"key": <fingerprint>, "sha": <digest>,
"stats": {...}}``.  Writers never share a shard — every
:class:`ResultStore` instance appends to its own uniquely named file and
flushes after each record — so concurrent processes (a parallel sweep's
workers' parent, several CI jobs on a cache, an interrupted campaign's
successor) can populate one directory without a lock and without losing
cells.  The index is pure acceleration: a single-file snapshot of every
validated cell, rebuilt via write-to-temp + :func:`os.replace` so readers
see either the old or the new index, never a torn one.  Loading a store
reads the index and then scans only shard entries the index does not
cover yet.

Trust model: **a corrupt entry is a missing entry.**  Every record
carries a digest of its payload; a line that fails to parse (torn
append, truncated file) or fails its digest is skipped and counted, and
the executor recomputes the cell.  The store never serves bytes it
cannot verify.

Keys are deterministic fingerprints of the *complete* cell identity —
``(benchmark, collector, heap_bytes, scale, seed, substrate tier,
store-format version)``.  The tier is part of the key even though tiers
are bit-identical by contract: the store must stay trustworthy even
while that contract is being debugged, and a tier change must invalidate
rather than alias.  Bump :data:`STORE_FORMAT_VERSION` whenever the
serialised form *or the meaning of a run* changes (new counters, cost
model recalibration): every old key goes stale at once, which is the
correct failure mode for a cache of experiment results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..sim.clock import PauseRecord
from ..sim.stats import RunStats

#: Bump on any change to the serialised form or to what a run means.
#: v2: RunStats grew the ``requests`` field (server-workload latency).
STORE_FORMAT_VERSION = 2

_INDEX_NAME = "index.json"
_SHARD_GLOB = "cells-*.jsonl"


def _resolved_tier(tier: Optional[str]) -> str:
    if tier is not None:
        return tier
    from ..kernels import resolve

    return resolve(None).name


def cell_key(
    benchmark,
    collector: str,
    heap_bytes: int,
    scale: float,
    seed: int,
    tier: Optional[str] = None,
) -> str:
    """Deterministic fingerprint of one grid cell.

    ``benchmark`` is any spec ref :func:`repro.specs.load` accepts; its
    identity component comes from :func:`repro.specs.fingerprint`, so
    file-based workloads are keyed by *content digest*: editing a YAML
    invalidates its cells, renaming or moving the file does not, and a
    spec object equal to the file's content shares the file's cells.
    Refs with no canonical identity (hand-built ``WorkloadSpec`` objects)
    raise :class:`~repro.errors.ConfigError` — the executor runs those
    uncached.

    ``tier`` defaults to the tier the current process would resolve
    (``repro.kernels.resolve``), i.e. the tier the run would actually
    execute on.  ``scale`` is fingerprinted via ``repr(float(...))`` so
    ``0.4`` and ``0.40`` agree and the key survives JSON round trips.
    """
    from ..errors import ConfigError
    from ..specs import fingerprint

    spec_id = fingerprint(benchmark)
    if spec_id is None:
        raise ConfigError(
            f"workload ref {benchmark!r} has no canonical fingerprint; "
            "grid cells for it cannot be cached"
        )
    identity = json.dumps(
        {
            "format": STORE_FORMAT_VERSION,
            "benchmark": spec_id,
            "collector": str(collector),
            "heap_bytes": int(heap_bytes),
            "scale": repr(float(scale)),
            "seed": int(seed),
            "tier": _resolved_tier(tier),
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:32]


def stats_to_dict(stats: RunStats) -> Dict:
    """JSON-serialisable form of a :class:`RunStats`, bit-exact.

    ``dataclasses.asdict`` recurses into the pause records; JSON
    round-trips Python floats exactly (repr-based), so deserialising
    yields a dataclass that compares ``==`` to the original.
    """
    return dataclasses.asdict(stats)


def stats_from_dict(payload: Dict) -> RunStats:
    """Inverse of :func:`stats_to_dict`."""
    data = dict(payload)
    data["pauses"] = [PauseRecord(**p) for p in payload.get("pauses", ())]
    if data.get("requests") is not None:
        # Imported lazily: sim.stats must not depend on the workloads
        # layer, so the field is rebuilt here at the serialisation edge.
        from ..workloads.latency import RequestStats

        data["requests"] = RequestStats(**data["requests"])
    return RunStats(**data)


def _digest(stats_json: str) -> str:
    return hashlib.sha256(stats_json.encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """A directory of every grid cell this machine has ever computed.

    Open is cheap (index load + incremental shard scan); ``get`` is a
    dictionary lookup; ``put`` is one flushed append to this process's
    private shard.  ``hits``/``misses``/``puts``/``corrupt_entries``
    count this instance's traffic so callers can report cache behaviour
    (the CLI's ``grid:`` summary line, the resume-only-missing tests).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_entries = 0
        self._cache: Dict[str, Dict] = {}
        #: shard name -> validated line count (for incremental rescans).
        self._scanned: Dict[str, int] = {}
        self._shard_path: Optional[Path] = None
        self._shard_file = None
        self.refresh()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """(Re)load the index and scan shard entries it does not cover."""
        self._load_index()
        for shard in sorted(self.root.glob(_SHARD_GLOB)):
            self._scan_shard(shard)

    def _load_index(self) -> None:
        path = self.root / _INDEX_NAME
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # absent or torn: the shards are the ground truth
        if snapshot.get("format") != STORE_FORMAT_VERSION:
            return  # stale format: ignore, keys would not match anyway
        for key, entry in snapshot.get("cells", {}).items():
            # The index gets the same trust model as the shards: every
            # entry re-proves its digest or is dropped and recomputed.
            try:
                payload, sha = entry["stats"], entry["sha"]
            except (KeyError, TypeError):
                self.corrupt_entries += 1
                continue
            if _digest(json.dumps(payload, sort_keys=True)) != sha:
                self.corrupt_entries += 1
                continue
            self._cache.setdefault(key, payload)
        for shard, lines in snapshot.get("shards", {}).items():
            if int(lines) > self._scanned.get(shard, 0):
                self._scanned[shard] = int(lines)

    def _scan_shard(self, shard: Path) -> None:
        """Validate every line past what was already scanned/indexed."""
        skip = self._scanned.get(shard.name, 0)
        seen = 0
        valid = skip
        try:
            with shard.open("r", encoding="utf-8") as stream:
                for line in stream:
                    seen += 1
                    if seen <= skip:
                        continue
                    record = self._validate_line(line)
                    if record is None:
                        self.corrupt_entries += 1
                        continue
                    key, payload = record
                    self._cache[key] = payload
                    valid = seen
        except OSError:
            return
        self._scanned[shard.name] = valid

    @staticmethod
    def _validate_line(line: str) -> Optional[Tuple[str, Dict]]:
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
            key = record["key"]
            stats = record["stats"]
            sha = record["sha"]
        except (ValueError, KeyError, TypeError):
            return None  # torn or truncated append
        if _digest(json.dumps(stats, sort_keys=True)) != sha:
            return None  # bit rot / partial overwrite: never trust it
        return key, stats

    def get(self, key: str) -> Optional[RunStats]:
        """The cell's stats, or ``None`` (miss, or corrupt-and-dropped)."""
        payload = self._cache.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats_from_dict(payload)

    def __contains__(self, key: str) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(self, key: str, stats: RunStats) -> None:
        """Persist one cell: append to this writer's shard, flushed."""
        payload = stats_to_dict(stats)
        stats_json = json.dumps(payload, sort_keys=True)
        record = json.dumps(
            {"key": key, "sha": _digest(stats_json), "stats": payload},
            sort_keys=True,
        )
        if self._shard_file is None:
            token = os.urandom(4).hex()
            self._shard_path = self.root / f"cells-{os.getpid()}-{token}.jsonl"
            self._shard_file = self._shard_path.open("a", encoding="utf-8")
        self._shard_file.write(record + "\n")
        self._shard_file.flush()
        self._cache[key] = payload
        name = self._shard_path.name
        self._scanned[name] = self._scanned.get(name, 0) + 1
        self.puts += 1

    def rebuild_index(self) -> None:
        """Consolidate every validated cell into ``index.json``, atomically.

        Re-scans shards first so cells appended by *other* writers since
        our last refresh are not dropped from the snapshot; the
        temp-write + :func:`os.replace` means a concurrent rebuild races
        to a last-writer-wins, both of whose snapshots are complete.
        """
        self.refresh()
        snapshot = {
            "format": STORE_FORMAT_VERSION,
            "shards": dict(self._scanned),
            "cells": {
                key: {
                    "sha": _digest(json.dumps(payload, sort_keys=True)),
                    "stats": payload,
                }
                for key, payload in self._cache.items()
            },
        }
        tmp = self.root / f".{_INDEX_NAME}.{os.getpid()}.{os.urandom(2).hex()}"
        tmp.write_text(json.dumps(snapshot, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.root / _INDEX_NAME)

    def close(self) -> None:
        """Flush and drop the shard handle; rebuild the index snapshot."""
        if self._shard_file is not None:
            self._shard_file.close()
            self._shard_file = None
        self.rebuild_index()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultStore {self.root} cells={len(self._cache)} "
            f"hits={self.hits} puts={self.puts}>"
        )
