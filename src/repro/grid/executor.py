"""The sharded, fault-tolerant grid executor.

One call — :func:`execute_jobs` — takes a batch of independent grid
cells and returns their :class:`~repro.sim.stats.RunStats` in input
order, bit-identical to a fresh serial loop.  What happens in between is
where the wall-clock goes:

* **Store short-circuit.**  Cells already in the
  :class:`~repro.grid.store.ResultStore` are served without executing
  anything — a warm campaign is a sequence of dictionary lookups.

* **Cost-model ordering.**  Missing cells are dispatched longest-first.
  The dominant cost of a cell is its collection count, and collections
  scale with ``allocated bytes / heap size``, so small heaps run longest;
  scheduling them first keeps the tail of a parallel batch from idling
  behind one straggler (static ``pool.map`` chunking, which this
  replaces, regularly parked the longest cell last).

* **As-completed dispatch.**  Each cell is its own future; results are
  checkpointed into the store *as they finish*, so an interrupted
  campaign has lost nothing but the cells still in flight.

* **Fault tolerance.**  Worker-side exceptions are caught in the worker
  and retried up to ``retries`` times; a worker *crash* (hard exit — the
  pool is broken) falls back to executing the remaining cells serially
  in-process, each isolated, so one poison cell records a failure
  instead of losing the batch.  Permanently failed cells yield
  synthesised ``completed=False`` stats (``failure="grid: ..."``) and a
  :class:`GridFailure` record; they are never written to the store.

* **Progress events.**  With a ``bus``, every cell emits a ``grid.job``
  telemetry event (``status`` ∈ cached/done/failed/retry) carrying the
  producing worker pid, the cell's input ordinal, and campaign totals so
  far — live progress is computable from the bus alone.

* **Telemetry relay.**  With a ``bus`` and the default cell runner, each
  worker attaches a bounded :class:`~repro.obs.relay.ForwardingSink` to
  its private run; the buffered events ride home in the pickled result
  and are replayed onto the coordinator bus tagged with ``worker`` /
  ``job`` / ``key`` (see :mod:`repro.obs.relay` for the drop contract).
  Cells served from the store emit one ``run.replay`` event instead,
  carrying the stored pause list so warm campaigns still produce a full
  span timeline.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..obs.relay import (
    DEFAULT_FORWARD_CAPACITY,
    ForwardedCell,
    ForwardingSink,
    replay_events,
)
from ..sim.stats import RunStats
from .store import ResultStore, cell_key

#: One grid cell: (benchmark, collector, heap_bytes, scale, seed) — the
#: same shape as :data:`repro.harness.runner.RunJob`.
Job = Tuple[str, str, int, float, int]


@dataclass
class GridFailure:
    """One cell the executor could not complete, after retries."""

    job: Job
    error: str
    attempts: int


@dataclass
class GridReport:
    """Everything one :func:`execute_jobs` call did."""

    #: Stats per job, in **input** order (failed cells: synthesised
    #: ``completed=False`` stats whose ``failure`` starts with ``grid:``).
    results: List[RunStats] = field(default_factory=list)
    #: Jobs actually executed this call (store misses), in dispatch order.
    executed: List[Job] = field(default_factory=list)
    #: Number of cells served straight from the store.
    cached: int = 0
    #: Worker-side retries performed (exceptions and crash recoveries).
    retries: int = 0
    #: Cells abandoned after exhausting retries.
    failures: List[GridFailure] = field(default_factory=list)
    #: How the missing cells ran: ``"parallel"``, ``"serial"``, or
    #: ``"none"`` when the store served everything.
    execution_mode: str = "none"
    #: Worker telemetry events replayed onto the coordinator bus.
    forwarded_events: int = 0
    #: Worker telemetry events lost to forwarding-buffer overflow
    #: (counted per cell, summed here; the CLI summary reports them).
    forwarded_dropped: int = 0
    wall_s: float = 0.0


def _default_runner(job: Job) -> RunStats:
    from ..harness.runner import _run_job

    return _run_job(job)


def _run_job_forwarded(job: Job, capacity: Optional[int]) -> ForwardedCell:
    """Execute one cell with a bounded forwarding sink on its private bus.

    Module-level (and dispatched via :func:`functools.partial`) so the
    pool can pickle it.  The returned :class:`ForwardedCell` carries the
    stats plus the retained telemetry prefix and the overflow count; the
    coordinator replays the events onto its own bus.
    """
    from ..harness.runner import RunOptions, run

    benchmark, collector, heap_bytes, scale, seed = job
    sink = ForwardingSink(capacity)
    options = RunOptions(scale=scale, seed=seed, sinks=(sink,))
    stats = run(benchmark, collector, heap_bytes, options=options).stats
    return ForwardedCell(
        result=stats,
        events=sink.events,
        dropped=sink.dropped,
        worker=os.getpid(),
    )


def _guarded(runner: Optional[Callable[[Job], RunStats]], job: Job):
    """Worker-side wrapper: exceptions become values, not pool poison."""
    try:
        return "ok", (runner or _default_runner)(job)
    except BaseException as error:  # noqa: BLE001 - isolate the cell
        return "error", f"{type(error).__name__}: {error}"


def _cost_estimate(job: Job) -> float:
    """Relative expected runtime of one cell: collections dominate, and
    collections scale with total allocation over heap size."""
    benchmark, _collector, heap_bytes, scale, _seed = job
    try:
        from ..specs import load as load_spec

        alloc = load_spec(benchmark, scale).total_alloc_bytes
    except Exception:  # unknown spec: schedule it like a mid-size cell
        alloc = 64 * 1024
    return alloc / max(1, heap_bytes)


def _failed_stats(job: Job, error: str) -> RunStats:
    benchmark, collector, heap_bytes, _scale, _seed = job
    if not isinstance(benchmark, str):
        benchmark = getattr(benchmark, "name", str(benchmark))
    return RunStats(
        benchmark=benchmark,
        collector=str(collector),
        heap_bytes=heap_bytes,
        completed=False,
        failure=f"grid: {error}",
    )


def _job_identity(job: Job) -> Dict[str, object]:
    benchmark, collector, heap_bytes, scale, seed = job
    return {
        "benchmark": benchmark
        if isinstance(benchmark, str)
        else getattr(benchmark, "name", str(benchmark)),
        "collector": str(collector),
        "heap_bytes": heap_bytes,
        "scale": scale,
        "seed": seed,
    }


class _Emitter:
    """``grid.job`` / ``run.replay`` events on an optional telemetry bus;
    time is the dispatch sequence number (grid events are host-side
    orchestration, not simulated-clock phenomena).

    Tracks campaign totals so every ``grid.job`` event carries the
    cached/executed/failed counts *including itself* — live progress is
    computable from the bus alone, no report object needed.
    """

    def __init__(self, bus):
        self.bus = bus
        self.seq = 0
        self.cached = 0
        self.executed = 0
        self.failed = 0

    def emit(
        self,
        job: Job,
        key: str,
        status: str,
        attempt: int = 0,
        *,
        index: int,
        worker: int = 0,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.seq += 1
        if status == "cached":
            self.cached += 1
        elif status == "done":
            self.executed += 1
        elif status == "failed":
            self.failed += 1
        if self.bus is None:
            return
        data = _job_identity(job)
        data.update(
            {
                "key": key,
                "status": status,
                "attempt": attempt,
                "job": index,
                "worker": worker,
                "cached": self.cached,
                "executed": self.executed,
                "failed": self.failed,
            }
        )
        if extra:
            data.update(extra)
        self.bus.emit("grid.job", float(self.seq), data)

    def replay(self, job: Job, key: str, index: int, stats: RunStats) -> None:
        """One ``run.replay`` event for a store-served cell: everything
        the span layer needs to synthesize the cell's timeline."""
        self.seq += 1
        if self.bus is None:
            return
        data = _job_identity(job)
        data.update(
            {
                "key": key,
                "job": index,
                "completed": stats.completed,
                "total_cycles": float(stats.total_cycles),
                "gc_cycles": float(stats.gc_cycles),
                "collections": stats.collections,
                "pauses": [[p.start, p.end, p.reason] for p in stats.pauses],
            }
        )
        self.bus.emit("run.replay", float(self.seq), data)


def execute_jobs(
    jobs: Sequence[Job],
    *,
    store: Optional[ResultStore] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    retries: int = 1,
    bus=None,
    cell_runner: Optional[Callable[[Job], RunStats]] = None,
    force_pool: bool = False,
    forward_telemetry: Optional[bool] = None,
    forward_capacity: Optional[int] = DEFAULT_FORWARD_CAPACITY,
) -> GridReport:
    """Run a batch of grid cells through the store and the executor.

    ``parallel=None`` (the default) and ``True`` both defer to
    :func:`repro.harness.runner.should_parallelise` — a pool is used only
    when it can pay for itself; ``False`` forces the in-process loop.
    ``cell_runner`` replaces the real run for tests (must be a picklable
    module-level callable when a pool is involved).  ``force_pool``
    bypasses the single-CPU veto so the pool path stays testable on
    one-core runners; real callers never need it.

    ``forward_telemetry=None`` forwards worker telemetry exactly when it
    can land somewhere: a ``bus`` is attached and the cell runner is the
    real run (a custom ``cell_runner`` may opt in by returning
    :class:`~repro.obs.relay.ForwardedCell` values itself — the unwrap
    below handles either).  ``forward_capacity`` bounds the per-cell
    buffer (``None`` = unbounded; see :mod:`repro.obs.relay`).
    """
    from ..harness.runner import effective_workers, should_parallelise

    t0 = time.perf_counter()
    jobs = [tuple(job) for job in jobs]
    report = GridReport(results=[None] * len(jobs))
    emitter = _Emitter(bus)

    forward = (
        forward_telemetry
        if forward_telemetry is not None
        else (bus is not None and cell_runner is None)
    )
    runner = cell_runner
    if forward and cell_runner is None:
        runner = functools.partial(_run_job_forwarded, capacity=forward_capacity)

    keys: List[Optional[str]] = []
    for job in jobs:
        benchmark, collector, heap_bytes, scale, seed = job
        # Non-string collector specs and unfingerprintable workload refs
        # (hand-built WorkloadSpec objects, unreadable files) have no
        # canonical identity; they execute uncached rather than risking
        # key aliasing.
        key = None
        if isinstance(collector, str):
            try:
                key = cell_key(benchmark, collector, heap_bytes, scale, seed)
            except ReproError:
                key = None
        keys.append(key)

    missing: List[int] = []
    for i, (job, key) in enumerate(zip(jobs, keys)):
        cached = store.get(key) if (store is not None and key is not None) else None
        if cached is not None:
            report.results[i] = cached
            report.cached += 1
            emitter.emit(job, key, "cached", index=i)
            # Warm replays still need a timeline: the stored stats carry
            # no event stream, so ship the pause list in one event.
            emitter.replay(job, key, i, cached)
        else:
            missing.append(i)

    if not missing:
        report.wall_s = time.perf_counter() - t0
        return report

    # Longest-first dispatch order (ties broken by input order so the
    # serial path remains deterministic).
    missing.sort(key=lambda i: (-_cost_estimate(jobs[i]), i))

    use_pool = force_pool or (
        parallel is not False
        and should_parallelise(len(missing), True, max_workers)
    )
    report.execution_mode = "parallel" if use_pool else "serial"

    def finish(i: int, value) -> None:
        worker = 0
        stats = value
        extra = None
        if isinstance(value, ForwardedCell):
            stats = value.result
            worker = value.worker
            replayed = 0
            if bus is not None:
                replayed = replay_events(
                    bus,
                    value.events,
                    worker=value.worker,
                    job=i,
                    key=keys[i] or "",
                )
            report.forwarded_events += replayed
            report.forwarded_dropped += value.dropped
            # Loss accounting rides on the terminal event so bus-side
            # consumers (DropTally, the trace file itself) see it too.
            extra = {
                "forwarded_events": replayed,
                "forwarded_dropped": value.dropped,
            }
        report.results[i] = stats
        report.executed.append(jobs[i])
        if store is not None and keys[i] is not None:
            store.put(keys[i], stats)
        emitter.emit(
            jobs[i], keys[i] or "", "done", index=i, worker=worker, extra=extra
        )

    def run_serially(indices: List[int], attempts: Dict[int, int]) -> None:
        for i in indices:
            while True:
                status, value = _guarded(runner, jobs[i])
                if status == "ok":
                    finish(i, value)
                    break
                attempts[i] = attempts.get(i, 0) + 1
                if attempts[i] > retries:
                    report.failures.append(
                        GridFailure(jobs[i], value, attempts[i])
                    )
                    report.results[i] = _failed_stats(jobs[i], value)
                    emitter.emit(
                        jobs[i], keys[i] or "", "failed", attempts[i], index=i
                    )
                    break
                report.retries += 1
                emitter.emit(
                    jobs[i], keys[i] or "", "retry", attempts[i], index=i
                )

    attempts: Dict[int, int] = {}
    if not use_pool:
        run_serially(missing, attempts)
    else:
        # Imported lazily: worker processes re-importing this module must
        # not pay for (or recursively trigger) executor machinery.
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        workers = effective_workers(max_workers) if not force_pool else (
            max_workers or 2
        )
        unfinished = list(missing)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_guarded, runner, jobs[i]): i
                    for i in unfinished
                }
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        i = futures[future]
                        status, value = future.result()
                        if status == "ok":
                            finish(i, value)
                            unfinished.remove(i)
                        else:
                            attempts[i] = attempts.get(i, 0) + 1
                            if attempts[i] > retries:
                                report.failures.append(
                                    GridFailure(jobs[i], value, attempts[i])
                                )
                                report.results[i] = _failed_stats(jobs[i], value)
                                emitter.emit(
                                    jobs[i], keys[i] or "", "failed",
                                    attempts[i], index=i,
                                )
                                unfinished.remove(i)
                            else:
                                report.retries += 1
                                emitter.emit(
                                    jobs[i], keys[i] or "", "retry",
                                    attempts[i], index=i,
                                )
                                retry = pool.submit(_guarded, runner, jobs[i])
                                futures[retry] = i
                                pending.add(retry)
        except BrokenProcessPool:
            # A worker died hard (segfault, os._exit): every in-flight
            # future is lost but nothing already checkpointed is.  Finish
            # the remaining cells in-process, each isolated, charging one
            # retry to each — the poison cell fails alone, the rest land.
            report.retries += len(unfinished)
            for i in unfinished:
                attempts[i] = attempts.get(i, 0) + 1
                emitter.emit(jobs[i], keys[i] or "", "retry", attempts[i], index=i)
            run_serially(unfinished, attempts)

    if store is not None and report.executed:
        store.rebuild_index()
    report.wall_s = time.perf_counter() - t0
    return report
