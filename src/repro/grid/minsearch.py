"""Minimum-heap search as a resumable state machine, batched across targets.

The paper's "smallest heap in which the program completes" (§4.1) is a
doubling-then-bisection search over heap sizes at frame granularity.
Each individual search is inherently sequential — every probe depends on
the last — but a campaign needs *many* searches (one per benchmark, per
collector, per scale), and those are independent.  :func:`find_min_heaps`
runs them as coupled state machines: every round collects one probe per
still-active search, executes the whole round as one grid batch (through
the store and the parallel executor), and feeds the outcomes back.  Six
benchmarks' bisections therefore fan out together instead of running six
serial O(log n) ladders — and with a warm store, replay without a single
run.

The probe sequence of each search is exactly the sequential algorithm's
(:func:`repro.harness.runner.find_min_heap` delegates here with a single
target), so the returned minima are identical by construction:

* Phase ``double``: double from the start guess until a heap completes.
* Phase ``down`` (start guess already completed): bisect *downward* for
  the smallest completing multiple of :data:`FRAME_BYTES` — O(log n)
  probes where the old one-frame-at-a-time walk burned one full run per
  frame.  Under the same monotonicity assumption the bisection phase has
  always made, the result equals the linear walk's.
* Phase ``bisect``: the classic upward bisection between the last
  failure and the first success.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import OutOfMemory
from .executor import execute_jobs
from .store import ResultStore

#: One search target: (benchmark, collector).
Target = Tuple[str, str]


def _round_frames(nbytes: int, frame_bytes: int) -> int:
    return max(2 * frame_bytes, (nbytes // frame_bytes) * frame_bytes)


class _Search:
    """One doubling/bisection search, driven probe by probe.

    ``probe()`` names the next heap size to test (``None`` when done);
    ``feed(completed)`` consumes the outcome and advances the state.
    """

    def __init__(self, lo: int, max_bytes: int, frame_bytes: int):
        self.frame = frame_bytes
        self.max_bytes = max_bytes
        self.start = lo
        self.phase = "double"
        self.lo = lo  # in double/bisect: highest known-failing heap
        self.hi = lo  # lowest known-completing heap (once one exists)
        self.result: Optional[int] = None
        self.failed = False
        self._pending: Optional[int] = None

    # -- probe selection, one per phase --------------------------------
    def probe(self) -> Optional[int]:
        if self.result is not None or self.failed:
            return None
        if self.phase == "double":
            self._pending = self.hi
        elif self.phase == "down":
            # Invariant: hi completes; everything at or below lo fails
            # (lo starts one frame below the 2-frame floor, a virtual
            # failure — heaps smaller than two frames cannot exist).
            if self.hi - self.lo <= self.frame:
                self.result = self.hi
                return None
            mid = ((self.lo + self.hi) // 2 // self.frame) * self.frame
            mid = max(mid, self.lo + self.frame)
            if mid >= self.hi:
                self.result = self.hi
                return None
            self._pending = mid
        else:  # bisect (upward): lo fails, hi completes
            if self.hi - self.lo <= self.frame:
                self.result = self.hi
                return None
            mid = _round_frames((self.lo + self.hi) // 2, self.frame)
            if mid in (self.lo, self.hi):
                self.result = self.hi
                return None
            self._pending = mid
        return self._pending

    # -- outcome consumption -------------------------------------------
    def feed(self, completed: bool) -> None:
        heap = self._pending
        self._pending = None
        if self.phase == "double":
            if completed:
                if heap == self.start:
                    # The start guess may already sit above the minimum:
                    # bisect down to the smallest completing heap.
                    self.phase = "down"
                    self.lo = 2 * self.frame - self.frame
                    self.hi = heap
                else:
                    self.phase = "bisect"
                    self.lo = heap // 2
                    self.hi = heap
            else:
                doubled = heap * 2
                if doubled > self.max_bytes:
                    self.failed = True
                else:
                    self.hi = doubled
        elif self.phase == "down":
            if completed:
                self.hi = heap
            else:
                self.lo = heap
        else:  # bisect
            if completed:
                self.hi = heap
            else:
                self.lo = heap


def find_min_heaps(
    targets: Sequence[Target],
    scale: float = 1.0,
    seed: int = 13,
    start_bytes: Optional[int] = None,
    max_bytes: int = 4 * 1024 * 1024,
    *,
    store: Optional[ResultStore] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    bus=None,
) -> Dict[Target, int]:
    """Minimum heaps for many (benchmark, collector) targets at once.

    Returns ``{(benchmark, collector): min_heap_bytes}``.  Probe runs go
    through :func:`repro.grid.executor.execute_jobs`, so a store serves
    previously computed probes and each round's probes (one per active
    search) execute in parallel.  Raises :class:`OutOfMemory` naming the
    first target for which no heap up to ``max_bytes`` completes.
    """
    from ..harness.runner import FRAME_BYTES
    from ..specs import load as load_spec

    searches: Dict[Target, _Search] = {}
    for benchmark, collector in targets:
        spec = load_spec(benchmark, scale)
        lo = start_bytes or max(4 * FRAME_BYTES, spec.total_alloc_bytes // 64)
        lo = _round_frames(lo, FRAME_BYTES)
        searches[(benchmark, collector)] = _Search(lo, max_bytes, FRAME_BYTES)

    while True:
        round_targets: List[Target] = []
        jobs = []
        for target, search in searches.items():
            heap = search.probe()
            if heap is not None:
                round_targets.append(target)
                jobs.append((target[0], target[1], heap, scale, seed))
        if not jobs:
            break
        report = execute_jobs(
            jobs,
            store=store,
            parallel=parallel,
            max_workers=max_workers,
            bus=bus,
        )
        for target, stats in zip(round_targets, report.results):
            searches[target].feed(stats.completed)

    for (benchmark, collector), search in searches.items():
        if search.failed:
            raise OutOfMemory(
                f"{benchmark}/{collector}: no heap up to {max_bytes} bytes works"
            )
    return {target: search.result for target, search in searches.items()}
