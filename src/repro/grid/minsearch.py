"""Minimum-heap search as a resumable state machine, batched across targets.

The paper's "smallest heap in which the program completes" (§4.1) is a
doubling-then-bisection search over heap sizes at frame granularity.
Each individual search is inherently sequential — every probe depends on
the last — but a campaign needs *many* searches (one per benchmark, per
collector, per scale), and those are independent.  :func:`find_min_heaps`
runs them as coupled state machines: every round collects one probe per
still-active search, executes the whole round as one grid batch (through
the store and the parallel executor), and feeds the outcomes back.  Six
benchmarks' bisections therefore fan out together instead of running six
serial O(log n) ladders — and with a warm store, replay without a single
run.

The probe sequence of each search is exactly the sequential algorithm's
(:func:`repro.harness.runner.find_min_heap` delegates here with a single
target), so the returned minima are identical by construction.  The
double → downward-bisect → upward-bisect state machine itself is the
shared :class:`repro.grid.monotone.MonotoneSearch` (the SLO rate search
drives the same machine over a rate lattice); here the searched value is
the heap size, the lattice unit is :data:`FRAME_BYTES`, the floor is the
two-frame minimum heap, and the monotone predicate is "the run
completes".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import OutOfMemory
from .executor import execute_jobs
from .monotone import MonotoneSearch, round_to_step
from .store import ResultStore

#: One search target: (benchmark, collector).
Target = Tuple[str, str]


def _round_frames(nbytes: int, frame_bytes: int) -> int:
    return round_to_step(nbytes, frame_bytes, 2 * frame_bytes)


class _Search(MonotoneSearch):
    """Minimum-heap instantiation of :class:`MonotoneSearch`.

    ``probe()`` names the next heap size to test (``None`` when done);
    ``feed(completed)`` consumes the outcome and advances the state.
    Kept under its historical name (and heap-flavoured constructor) for
    the property tests that pin the probe sequence.
    """

    def __init__(self, lo: int, max_bytes: int, frame_bytes: int):
        super().__init__(
            lo, max_bytes, frame_bytes, floor=2 * frame_bytes
        )
        self.frame = frame_bytes
        self.max_bytes = max_bytes


def find_min_heaps(
    targets: Sequence[Target],
    scale: float = 1.0,
    seed: int = 13,
    start_bytes: Optional[int] = None,
    max_bytes: int = 4 * 1024 * 1024,
    *,
    store: Optional[ResultStore] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    bus=None,
) -> Dict[Target, int]:
    """Minimum heaps for many (benchmark, collector) targets at once.

    Returns ``{(benchmark, collector): min_heap_bytes}``.  Probe runs go
    through :func:`repro.grid.executor.execute_jobs`, so a store serves
    previously computed probes and each round's probes (one per active
    search) execute in parallel.  Raises :class:`OutOfMemory` naming the
    first target for which no heap up to ``max_bytes`` completes.
    """
    from ..harness.runner import FRAME_BYTES
    from ..specs import load as load_spec

    searches: Dict[Target, _Search] = {}
    for benchmark, collector in targets:
        spec = load_spec(benchmark, scale)
        lo = start_bytes or max(4 * FRAME_BYTES, spec.total_alloc_bytes // 64)
        lo = _round_frames(lo, FRAME_BYTES)
        searches[(benchmark, collector)] = _Search(lo, max_bytes, FRAME_BYTES)

    while True:
        round_targets: List[Target] = []
        jobs = []
        for target, search in searches.items():
            heap = search.probe()
            if heap is not None:
                round_targets.append(target)
                jobs.append((target[0], target[1], heap, scale, seed))
        if not jobs:
            break
        report = execute_jobs(
            jobs,
            store=store,
            parallel=parallel,
            max_workers=max_workers,
            bus=bus,
        )
        for target, stats in zip(round_targets, report.results):
            searches[target].feed(stats.completed)

    for (benchmark, collector), search in searches.items():
        if search.failed:
            raise OutOfMemory(
                f"{benchmark}/{collector}: no heap up to {max_bytes} bytes works"
            )
    return {target: search.result for target, search in searches.items()}
