"""repro.grid: the sharded grid executor and its on-disk result store.

Every figure in the paper is a (benchmark × collector × heap-size) grid
of fixed-seed cells, and every cell is a pure function of its key: the
run re-derives its entire world from ``(benchmark, collector, heap_bytes,
scale, seed)`` on a given substrate tier.  That purity is what this
package spends:

* :mod:`repro.grid.store` — a content-addressed on-disk
  :class:`ResultStore`.  Each cell is keyed by a deterministic
  fingerprint of its identity (including the substrate tier and the
  store-format version) and persisted as checksummed JSONL shard
  entries plus an atomically rebuilt index, so any cell ever computed —
  by a previous process, a CI job, or an interrupted campaign — is a
  dictionary lookup.  Corrupt or truncated entries are detected and
  recomputed, never trusted (DESIGN §14).

* :mod:`repro.grid.executor` — a fault-tolerant executor replacing
  static ``pool.map`` chunking with as-completed dispatch over a shared
  job queue: cost-model ordering (smaller heaps do more GCs — longest
  first, to kill tail idling), per-cell retry with failures recorded
  rather than the batch lost, ``grid.job`` progress events on the
  telemetry bus, and checkpointing through the store (every finished
  cell is durable immediately, so re-running an interrupted campaign
  executes only the missing cells).

* :mod:`repro.grid.monotone` — the doubling/bisection search over a
  monotone predicate as a resumable state machine
  (:class:`MonotoneSearch`), shared by the minimum-heap search and the
  SLO max-sustainable-rate search.

* :mod:`repro.grid.minsearch` — the minimum-heap instantiation, so the
  six benchmarks' searches fan their probes out together instead of
  bisecting serially.

The experiment layer (``repro.harness.experiments``, ``beltway-bench
exp/all/report --store DIR``) runs entirely on top of these; results are
bit-identical to fresh serial runs by construction and by test.
"""

from .executor import GridFailure, GridReport, execute_jobs
from .minsearch import find_min_heaps
from .monotone import MonotoneSearch, round_to_step
from .store import STORE_FORMAT_VERSION, ResultStore, cell_key

__all__ = [
    "ResultStore",
    "cell_key",
    "STORE_FORMAT_VERSION",
    "GridReport",
    "GridFailure",
    "MonotoneSearch",
    "round_to_step",
    "execute_jobs",
    "find_min_heaps",
]
