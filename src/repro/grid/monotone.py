"""A reusable doubling/bisection search over a monotone predicate.

Two campaigns in this repo are the same search wearing different units:

* the minimum-heap search (:mod:`repro.grid.minsearch`) — the smallest
  heap size, in frames, at which a run *completes*;
* the SLO rate search (:mod:`repro.slo.search`) — the smallest offered
  rate, in rate-step units, at which a server workload *violates* its
  latency/MMU bound (the knee sits one step below it).

Both assume a predicate that is monotone in the searched value: false
below some threshold, true at and above it.  :class:`MonotoneSearch` is
that search as a resumable state machine, value-axis agnostic — values
are multiples of ``step`` between ``floor`` and ``max_value``:

* Phase ``double``: double from the start guess until the predicate
  holds; doubling past ``max_value`` fails the search (no satisfying
  value in range).
* Phase ``down`` (the start guess already satisfies): bisect *downward*
  for the smallest satisfying multiple of ``step``, seeded with a
  virtual failure one step below ``floor`` — values below the floor do
  not exist, so they count as non-satisfying.
* Phase ``bisect``: the classic upward bisection between the last
  failure and the first success.

The probe sequence is exactly the one ``grid.minsearch`` has always
issued (property-pinned against a linear reference in ``tests/grid``),
so generalising did not move any minimum.  The driver protocol is
``probe()`` → next value to test (``None`` when done) and
``feed(satisfied)`` → consume the outcome; callers run many searches in
lockstep rounds and batch each round's probes through the grid executor.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MonotoneSearch", "round_to_step"]


def round_to_step(value: float, step: int, floor: int) -> int:
    """``value`` rounded down onto the search lattice, clamped to the floor."""
    return max(floor, (int(value) // step) * step)


class MonotoneSearch:
    """One doubling/bisection search for the smallest satisfying value.

    ``probe()`` names the next value to test (``None`` when done);
    ``feed(satisfied)`` consumes the outcome and advances the state.
    Terminal state is either ``result`` (the smallest value, a multiple
    of ``step`` in ``[floor, max_value]``, at which the predicate held)
    or ``failed`` (the predicate held nowhere up to ``max_value``).
    """

    def __init__(self, start: int, max_value: int, step: int,
                 floor: Optional[int] = None):
        self.step = step
        self.max_value = max_value
        self.floor = 2 * step if floor is None else floor
        self.start = start
        self.phase = "double"
        self.lo = start  # in double/bisect: highest known-failing value
        self.hi = start  # lowest known-satisfying value (once one exists)
        self.result: Optional[int] = None
        self.failed = False
        self._pending: Optional[int] = None

    # -- probe selection, one per phase --------------------------------
    def probe(self) -> Optional[int]:
        if self.result is not None or self.failed:
            return None
        if self.phase == "double":
            self._pending = self.hi
        elif self.phase == "down":
            # Invariant: hi satisfies; everything at or below lo fails
            # (lo starts one step below the floor, a virtual failure —
            # values below the floor cannot exist).
            if self.hi - self.lo <= self.step:
                self.result = self.hi
                return None
            mid = ((self.lo + self.hi) // 2 // self.step) * self.step
            mid = max(mid, self.lo + self.step)
            if mid >= self.hi:
                self.result = self.hi
                return None
            self._pending = mid
        else:  # bisect (upward): lo fails, hi satisfies
            if self.hi - self.lo <= self.step:
                self.result = self.hi
                return None
            mid = round_to_step((self.lo + self.hi) // 2, self.step, self.floor)
            if mid in (self.lo, self.hi):
                self.result = self.hi
                return None
            self._pending = mid
        return self._pending

    # -- outcome consumption -------------------------------------------
    def feed(self, satisfied: bool) -> None:
        value = self._pending
        self._pending = None
        if self.phase == "double":
            if satisfied:
                if value == self.start:
                    # The start guess may already sit above the minimum:
                    # bisect down to the smallest satisfying value.
                    self.phase = "down"
                    self.lo = self.floor - self.step
                    self.hi = value
                else:
                    self.phase = "bisect"
                    self.lo = value // 2
                    self.hi = value
            else:
                doubled = value * 2
                if doubled > self.max_value:
                    self.failed = True
                else:
                    self.hi = doubled
        elif self.phase == "down":
            if satisfied:
                self.hi = value
            else:
                self.lo = value
        else:  # bisect
            if satisfied:
                self.hi = value
            else:
                self.lo = value
