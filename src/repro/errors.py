"""Exception hierarchy for the Beltway reproduction.

Every failure mode of the simulated memory system raises a subclass of
:class:`ReproError` so callers (the experiment harness in particular) can
distinguish *collector* failures (``OutOfMemory`` at a too-small heap size)
from genuine bugs (``HeapCorruption``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class ConfigError(ReproError):
    """An invalid collector or benchmark configuration was requested."""


class OutOfMemory(ReproError):
    """The heap could not satisfy an allocation request.

    For copying collectors this means the copy-reserve invariant could not
    be maintained: even after collecting, there was not enough free space to
    hold the requested object plus the reserve.  The experiment harness uses
    this error to discover the minimum heap size of a benchmark (Table 1).
    """

    def __init__(self, message: str, requested_words: int = 0):
        super().__init__(message)
        self.requested_words = requested_words


class HeapCorruption(ReproError):
    """An invariant of the simulated heap was violated.

    Raised by the heap verifier and by defensive checks in the object model
    (e.g. a reference slot holding a non-object address).  This always
    indicates a bug in a collector, never a legitimate runtime condition.
    """


class InvalidAddress(HeapCorruption):
    """An address was outside any mapped frame or not word aligned."""


class BarrierError(ReproError):
    """A pointer store bypassed or confused the write barrier."""
