"""Object lifetime machinery for the synthetic mutators.

Lifetimes are expressed the way the GC literature measures them: in *bytes
of subsequent allocation* (the paper's time-to-die trigger uses the same
unit).  Each allocation site draws a death time from its lifetime class;
the engine reaps objects whose death volume has passed.

The classes below give the engine the standard demographic vocabulary:
``immediate`` objects underpin the weak generational hypothesis,
``medium`` objects are the ones older-first collectors exploit (alive long
enough to be promoted, dead soon after), and ``immortal`` objects model
pretenurable data the paper's related work segregates.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..runtime.roots import Handle


@dataclass(frozen=True)
class LifetimeClass:
    """Death volume sampled uniformly from [lo_bytes, hi_bytes].

    ``hi_bytes = 0`` means immortal (never reaped).
    """

    name: str
    lo_bytes: int = 0
    hi_bytes: int = 0

    @property
    def immortal(self) -> bool:
        return self.hi_bytes == 0

    def sample(self, rng: random.Random) -> Optional[int]:
        """Bytes of future allocation until death (None = immortal)."""
        if self.immortal:
            return None
        if self.hi_bytes <= self.lo_bytes:
            return self.lo_bytes
        return rng.randint(self.lo_bytes, self.hi_bytes)


class DeathSchedule:
    """Min-heap of (death_volume, handle) reaped as allocation advances."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Handle]] = []
        self._tiebreak = 0
        self.reaped = 0

    def schedule(self, death_volume: int, handle: Handle) -> None:
        self._tiebreak += 1
        heapq.heappush(self._heap, (death_volume, self._tiebreak, handle))

    def reap(self, allocated_bytes: int) -> int:
        """Drop every handle whose death volume has passed; returns count."""
        count = 0
        heap = self._heap
        while heap and heap[0][0] <= allocated_bytes:
            _, _, handle = heapq.heappop(heap)
            handle.drop()
            count += 1
        self.reaped += count
        return count

    def drop_all(self) -> int:
        """Kill everything scheduled (phase boundaries)."""
        count = len(self._heap)
        for _, _, handle in self._heap:
            handle.drop()
        self._heap.clear()
        self.reaped += count
        return count

    def drop_fraction(self, rng: random.Random, fraction: float) -> int:
        """Kill a random ``fraction`` of scheduled objects now (phase
        boundaries: a compiler iteration finishing, a transaction batch
        retiring).  Survivors keep their original death volumes."""
        if not self._heap:
            return 0
        keep: List[Tuple[int, int, Handle]] = []
        count = 0
        for entry in self._heap:
            if rng.random() < fraction:
                entry[2].drop()
                count += 1
            else:
                keep.append(entry)
        heapq.heapify(keep)
        self._heap = keep
        self.reaped += count
        return count

    def __len__(self) -> int:
        return len(self._heap)

    def pick(self, randbelow) -> Optional[Handle]:
        """One uniformly random scheduled handle, or None if empty.

        ``randbelow`` is the rng's ``_randbelow`` bound method; the draw
        sequence is identical to ``peek_handles(rng, 1)`` (``randrange(n)``
        for positive n is exactly one ``_randbelow(n)`` call).
        """
        heap = self._heap
        if not heap:
            return None
        return heap[randbelow(len(heap))][2]

    def peek_handles(self, rng: random.Random, k: int) -> List[Handle]:
        """Up to ``k`` random scheduled-live handles (for pointer mutation)."""
        if not self._heap:
            return []
        picks = []
        for _ in range(k):
            _, _, handle = self._heap[rng.randrange(len(self._heap))]
            picks.append(handle)
        return picks
