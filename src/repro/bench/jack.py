"""_228_jack — a parser generator generating its own parser, repeatedly
(SPEC JVM98).

Demographics: sixteen nearly identical iterations.  Each iteration builds
parse tables, token streams and intermediate strings that accumulate over
the iteration and are dropped almost entirely at its end — a sawtooth
live-size profile with clumped deaths, plus a torrent of short-lived
string buffers in between.
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB

ITERATIONS = 16
TOTAL = 320 * KB


def _setup_grammar(engine: SyntheticMutator) -> None:
    """Immortal grammar representation shared by all iterations."""
    mu = engine.mu
    rules = engine.alloc_immortal("refarr", length=24)
    for i in range(24):
        rule = engine.alloc_immortal("node")
        mu.write_int(rule, 0, i)
        mu.write(rules, i, rule)


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="jack",
        total_alloc_bytes=TOTAL,
        sites=[
            # string fragments, tokens: die immediately
            AllocSite(weight=0.48, type_name="small", lifetime="immediate", work=4.0),
            # parse-tree / table entries: live to the iteration boundary
            AllocSite(weight=0.32, type_name="node", lifetime="medium", link_prob=0.2, work=5.0),
            # character buffers
            AllocSite(
                weight=0.12, type_name="buf", lifetime="immediate", length=(4, 20), work=3.0
            ),
            # NFA/DFA state blocks
            AllocSite(weight=0.08, type_name="big", lifetime="medium", link_prob=0.15, work=6.0),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 2 * KB),
            # medium stretches across most of one 20 KB iteration
            "medium": LifetimeClass("medium", 4 * KB, 20 * KB),
        },
        mutation_rate=0.08,
        read_rate=0.60,
        phase_bytes=TOTAL // ITERATIONS,
        phase_drop_fraction=0.95,
        setup=_setup_grammar,
        locality=LocalityModel(cache_words=16 * 1024, cache_sensitivity=0.05),
        paper=Table1Row(
            min_heap_bytes=20 * KB,
            total_alloc_bytes=TOTAL,
            gcs_large_heap=16,
            gcs_small_heap=135,
            description="Generates a parser repeatedly",
        ),
    )
