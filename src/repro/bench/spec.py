"""Benchmark registry and scaling (the paper's Table 1, reproduced).

The paper evaluates six SPEC programs on a 128 MB PowerMac.  Our simulated
heaps are scaled **1024× down** (paper MB → our KB): every ratio the paper
plots — heap size over minimum heap size, increment percentages, survival
rates, relative GC counts — is preserved, while a full 33-point heap sweep
of all six benchmarks stays tractable in pure Python.

Paper Table 1 (original units):

    benchmark   min heap   total alloc   GCs (large/small heap)
    _202_jess     12 MB      301 MB          24 / 337
    _205_raytrace 15 MB      127 MB           9 / 139
    _209_db       22 MB      102 MB           5 / 115
    _213_javac    32 MB      266 MB          10 / 100
    _228_jack     20 MB      320 MB          16 / 135
    pseudojbb     70 MB      381 MB           4 / 126
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from .engine import WorkloadSpec

KB = 1024

#: Canonical benchmark order used by every figure.
BENCHMARK_NAMES = ("jess", "raytrace", "db", "javac", "jack", "pseudojbb")

_ALIASES = {
    "_202_jess": "jess",
    "_205_raytrace": "raytrace",
    "_209_db": "db",
    "_213_javac": "javac",
    "_228_jack": "jack",
    "pseudojbb": "pseudojbb",
    "jbb": "pseudojbb",
}


def _registry() -> Dict[str, Callable[[], WorkloadSpec]]:
    from . import db, jack, javac, jess, pseudojbb, raytrace

    return {
        "jess": jess.spec,
        "raytrace": raytrace.spec,
        "db": db.spec,
        "javac": javac.spec,
        "jack": jack.spec,
        "pseudojbb": pseudojbb.spec,
    }


def canonical_name(name: str) -> str:
    token = name.strip().lower()
    token = _ALIASES.get(token, token)
    if token not in BENCHMARK_NAMES:
        raise ConfigError(f"unknown benchmark {name!r}; know {BENCHMARK_NAMES}")
    return token


def benchmark_spec(name: str, scale: float = 1.0) -> WorkloadSpec:
    """The WorkloadSpec for ``name``; ``scale`` shortens the run (tests)."""
    spec = _registry()[canonical_name(name)]()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec


def get_spec(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Deprecated: use :func:`repro.specs.load` (any ref kind) or
    :func:`benchmark_spec` (registry names only)."""
    import warnings

    warnings.warn(
        "get_spec() is deprecated; use repro.specs.load(ref) — it also "
        "resolves workload files and spec objects",
        DeprecationWarning,
        stacklevel=2,
    )
    return benchmark_spec(name, scale)


def all_specs(scale: float = 1.0) -> List[WorkloadSpec]:
    return [benchmark_spec(name, scale) for name in BENCHMARK_NAMES]
