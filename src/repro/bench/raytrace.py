"""_205_raytrace — a ray tracer (SPEC JVM98).

Demographics: a moderately sized immortal scene graph (geometry, BSP
nodes) built during setup, then a rendering loop allocating enormous
numbers of tiny vectors/intersection records that die within the
expression that created them.  Very low pointer mutation — rays are
written once — and few collections are needed at large heaps (9 in the
paper's Table 1).
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB


def _setup_scene(engine: SyntheticMutator) -> None:
    """Immortal scene graph: objects, BSP tree, materials (~5 KB scaled)."""
    mu = engine.mu
    index = engine.alloc_immortal("refarr", length=56)
    for i in range(56):
        prim = engine.alloc_immortal("big")  # 64 B primitives
        mu.write_int(prim, 0, i)
        mu.write(index, i, prim)
    # BSP interior nodes
    previous = None
    for i in range(52):
        node = engine.alloc_immortal("node")
        if previous is not None:
            mu.write(node, 0, previous)
        previous = node


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="raytrace",
        total_alloc_bytes=127 * KB,
        sites=[
            # vectors / intersection points: die immediately
            AllocSite(weight=0.72, type_name="small", lifetime="immediate", work=5.0),
            # rays: die within one pixel
            AllocSite(weight=0.18, type_name="node", lifetime="immediate", work=6.0),
            # shading records: short
            AllocSite(weight=0.08, type_name="big", lifetime="short", work=6.0),
            # per-scanline buffers
            AllocSite(
                weight=0.02, type_name="buf", lifetime="short", length=(8, 24), work=3.0
            ),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 1 * KB),
            "short": LifetimeClass("short", 1 * KB, 4 * KB),
        },
        mutation_rate=0.02,
        read_rate=0.80,
        setup=_setup_scene,
        locality=LocalityModel(cache_words=16 * 1024, cache_sensitivity=0.05),
        paper=Table1Row(
            min_heap_bytes=15 * KB,
            total_alloc_bytes=127 * KB,
            gcs_large_heap=9,
            gcs_small_heap=139,
            description="A ray tracing program",
        ),
    )
