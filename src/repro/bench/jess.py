"""_202_jess — an expert system shell (SPEC JVM98).

Demographics: the highest allocation-to-live ratio of the suite (301 MB
allocated against a ~12 MB minimum heap).  A small, long-lived rule
network is built at startup; the working memory then churns through huge
numbers of tiny, immediately-dying fact and token objects, with a modest
stream of medium-lived partial matches.  Classic weak-generational-
hypothesis territory: nursery collectors shine, full-heap collectors pay.
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB


def _setup_rule_network(engine: SyntheticMutator) -> None:
    """The immortal Rete network: an index array over rule nodes."""
    mu = engine.mu
    table = engine.alloc_immortal("refarr", length=40)
    previous = None
    for i in range(80):
        node = engine.alloc_immortal("node")
        mu.write_int(node, 0, i)
        if i < 40:
            mu.write(table, i, node)
        if previous is not None:
            mu.write(node, 1, previous)
        previous = node


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="jess",
        total_alloc_bytes=301 * KB,
        sites=[
            # fact/token objects: die almost immediately
            AllocSite(weight=0.55, type_name="small", lifetime="immediate", work=3.0),
            # partial matches: survive a rule firing or two
            AllocSite(weight=0.28, type_name="node", lifetime="short", link_prob=0.15, work=5.0),
            # activations: medium-lived
            AllocSite(weight=0.10, type_name="big", lifetime="medium", link_prob=0.10, work=6.0),
            # agenda vectors
            AllocSite(
                weight=0.07, type_name="refarr", lifetime="short", length=(2, 8), work=4.0
            ),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, int(1.5 * KB)),
            "short": LifetimeClass("short", 512, 3 * KB),
            "medium": LifetimeClass("medium", 2 * KB, 8 * KB),
        },
        mutation_rate=0.10,
        read_rate=0.50,
        setup=_setup_rule_network,
        locality=LocalityModel(cache_words=16 * 1024, cache_sensitivity=0.05),
        paper=Table1Row(
            min_heap_bytes=12 * KB,
            total_alloc_bytes=301 * KB,
            gcs_large_heap=24,
            gcs_small_heap=337,
            description="An expert system shell",
        ),
    )
