"""pseudojbb — SPEC JBB2000 modified to run a fixed transaction count.

Demographics: the largest benchmark of the suite (70 MB minimum heap).
Immortal warehouse/district/item infrastructure is built at startup; the
transaction loop then creates order and order-line objects that live for
a *window of transactions* before retiring — the classic middle-aged
population that defeats pure nursery collectors (promoted, then dead
soon after).  Orders are linked into warehouse queues, generating heavy
old→young pointer traffic.

Locality: the paper twice singles pseudojbb out — Fig. 1(b)'s paging at
large heaps and §4.2.6's "Appel performs very poorly in large heaps ...
the program thrashes when its nursery becomes too large".  The locality
model therefore includes both a strong cache sensitivity (penalising
large allocation regions) and a physical-memory bound at ~2× the minimum
heap, beyond which footprint pages.
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB

WAREHOUSE_CHUNKS = 6
ITEMS_PER_CHUNK = 32


def _setup_warehouses(engine: SyntheticMutator) -> None:
    """Immortal 3-tier infrastructure (~18 KB scaled), chunk-indexed."""
    mu = engine.mu
    directory = engine.alloc_immortal("refarr", length=WAREHOUSE_CHUNKS)
    for c in range(WAREHOUSE_CHUNKS):
        chunk = engine.alloc_immortal("refarr", length=ITEMS_PER_CHUNK)
        mu.write(directory, c, chunk)
        for i in range(ITEMS_PER_CHUNK):
            item = engine.alloc_immortal("big")
            mu.write_int(item, 0, c * ITEMS_PER_CHUNK + i)
            mu.write(chunk, i, item)


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="pseudojbb",
        total_alloc_bytes=381 * KB,
        sites=[
            # orders / order lines: middle-aged, linked into queues
            AllocSite(weight=0.34, type_name="big", lifetime="order", link_prob=0.35, work=6.0),
            # per-transaction records
            AllocSite(weight=0.34, type_name="node", lifetime="short", link_prob=0.10, work=5.0),
            # transaction temporaries
            AllocSite(weight=0.22, type_name="small", lifetime="immediate", work=4.0),
            # batch vectors
            AllocSite(
                weight=0.10, type_name="refarr", lifetime="order", length=(3, 10),
                link_prob=0.25, work=4.0,
            ),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 1 * KB),
            "short": LifetimeClass("short", 1 * KB, 6 * KB),
            # the middle-aged order window: long enough to be promoted by
            # any nursery collector, dead well before a full-heap GC
            "order": LifetimeClass("order", 8 * KB, 48 * KB),
        },
        mutation_rate=0.25,
        read_rate=1.0,
        setup=_setup_warehouses,
        locality=LocalityModel(
            cache_words=16 * 1024,
            cache_sensitivity=0.50,
            # ~2x the minimum heap: larger footprints thrash (Fig. 1b).
            memory_words=(140 * KB) // 4,
            paging_factor=3.0,
        ),
        paper=Table1Row(
            min_heap_bytes=70 * KB,
            total_alloc_bytes=381 * KB,
            gcs_large_heap=4,
            gcs_small_heap=126,
            description="Emulates a 3-tier transaction processing system",
        ),
    )
