"""The synthetic-mutator engine driving every benchmark workload.

A :class:`WorkloadSpec` declares a benchmark's demographics — allocation
sites with size and lifetime distributions, pointer-mutation and read
rates, cyclic-garbage construction, phase boundaries and a locality model.
The engine executes the spec deterministically against a VM: it is a real
mutator (rooted handles, barriered stores) whose behaviour the collectors
observe exactly as they would a Java program's.

The collector-relevant levers, mapped to the paper's five key ideas
(§2.1):

* infant mortality  ← ``immediate``/``short`` lifetime classes;
* old objects       ← ``immortal`` setup structures and ``long`` classes;
* time to die       ← ``medium`` classes (the older-first sweet spot);
* pointer tracking  ← ``link_prob`` (old→young edges) and
  ``mutation_rate`` (random pointer shuffling);
* completeness      ← ``cycle_every_bytes`` rings that die together after
  aging across increments (javac's cyclic structures, §4.2.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..heap.address import WORD_BYTES
from ..heap.objectmodel import HEADER_WORDS
from ..runtime.mutator import MutatorContext
from ..runtime.roots import Handle
from ..runtime.vm import VM
from ..sim.locality import NO_LOCALITY, LocalityModel
from ..sim.stats import RunStats
from .lifetime import DeathSchedule, LifetimeClass

#: Shared object vocabulary (word sizes include the 3-word header).
STANDARD_TYPES: Tuple[Tuple[str, int, int], ...] = (
    ("small", 1, 2),  # 6 words / 24 B — cons cells, iterator cursors
    ("node", 3, 2),  # 8 words / 32 B — typical small Java object
    ("big", 4, 9),  # 16 words / 64 B — records, transaction objects
)

#: Type names a declarative workload may allocate from (the standard
#: vocabulary plus the two array shapes every VM defines).
WORKLOAD_TYPE_NAMES: Tuple[str, ...] = ("small", "node", "big", "refarr", "buf")


def ensure_standard_types(vm: VM) -> None:
    """Define the shared object vocabulary on ``vm`` (idempotent).

    Both mutator engines — the closed-loop :class:`SyntheticMutator` and
    the request-driven server engine (:mod:`repro.workloads.engine`) —
    allocate from this vocabulary, so their workload specs are portable
    across engines.
    """
    existing = {d.name for d in vm.types}
    for name, nrefs, nscalars in STANDARD_TYPES:
        if name not in existing:
            vm.define_type(name, nrefs=nrefs, nscalars=nscalars)
    if "refarr" not in existing:
        vm.define_ref_array("refarr")
    if "buf" not in existing:
        vm.define_scalar_array("buf")


@dataclass(frozen=True)
class AllocSite:
    """One allocation site of a workload."""

    weight: float
    type_name: str  # "small" | "node" | "big" | "refarr" | "buf"
    lifetime: str  # key into WorkloadSpec.lifetimes
    length: Tuple[int, int] = (0, 0)  # array length range
    link_prob: float = 0.0  # P(an existing live object points at me)
    work: float = 4.0  # mutator computation per allocation


@dataclass(frozen=True)
class Table1Row:
    """The paper's Table 1 characterisation (already scaled to our units)."""

    min_heap_bytes: int
    total_alloc_bytes: int
    gcs_large_heap: int
    gcs_small_heap: int
    description: str = ""


@dataclass
class WorkloadSpec:
    """Complete declarative description of one benchmark."""

    name: str
    total_alloc_bytes: int
    sites: List[AllocSite]
    lifetimes: Dict[str, LifetimeClass]
    mutation_rate: float = 0.0  # pointer shuffles per allocation
    read_rate: float = 0.0  # field reads per allocation
    cycle_every_bytes: int = 0  # build a doomed ring every N bytes
    cycle_size: int = 0
    cycle_lifetime: str = "medium"
    phase_bytes: int = 0  # phase boundary period (0 = none)
    phase_drop_fraction: float = 0.0  # fraction of scheduled killed there
    setup: Optional[Callable[["SyntheticMutator"], None]] = None
    locality: LocalityModel = NO_LOCALITY
    paper: Optional[Table1Row] = None

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if self.total_alloc_bytes <= 0:
            raise ConfigError(f"{self.name}: total_alloc_bytes must be positive")
        if not self.sites:
            raise ConfigError(f"{self.name}: a workload needs allocation sites")
        total_weight = sum(site.weight for site in self.sites)
        if total_weight <= 0:
            raise ConfigError(f"{self.name}: site weights must sum > 0")
        for site in self.sites:
            if site.weight < 0:
                raise ConfigError(f"{self.name}: negative site weight")
            if site.lifetime not in self.lifetimes:
                raise ConfigError(
                    f"{self.name}: site lifetime {site.lifetime!r} is not "
                    f"defined (have {sorted(self.lifetimes)})"
                )
        if self.cycle_every_bytes and self.cycle_size <= 1:
            raise ConfigError(f"{self.name}: cycles need cycle_size >= 2")
        if self.cycle_every_bytes and self.cycle_lifetime not in self.lifetimes:
            raise ConfigError(
                f"{self.name}: cycle lifetime {self.cycle_lifetime!r} undefined"
            )
        if self.phase_bytes and not 0 <= self.phase_drop_fraction <= 1:
            raise ConfigError(
                f"{self.name}: phase_drop_fraction must be in [0, 1]"
            )

    def scaled(self, factor: float) -> "WorkloadSpec":
        """A copy with allocation volume scaled by ``factor``.

        Phase boundaries scale with it so the run keeps its number of
        phases (a 0.5x javac still compiles four times, each half as
        long); lifetimes and live-set sizes are *not* scaled — the factor
        shortens the run, it does not change the heap shape."""
        import dataclasses

        return dataclasses.replace(
            self,
            total_alloc_bytes=int(self.total_alloc_bytes * factor),
            phase_bytes=int(self.phase_bytes * factor),
        )


def no_gc_heap_bytes(spec, factor: int = 16) -> int:
    """Heap size at which a run of ``spec`` never needs to collect.

    The idealised free-list/infinite-heap reference the SLO distillation
    subtracts: with the heap sized to a multiple of *everything the run
    will ever allocate*, no belt fills, no collection triggers, and the
    measured latencies are pure mutator cost (arrivals are seeded
    independently of the collector, so the populations stay comparable).
    ``factor`` 16 leaves room for the spec's ``total_alloc_bytes`` being
    an estimate for server workloads (request mix and session/cache
    churn are stochastic) — validated to produce zero collections across
    the collector families on the bundled specs.  Accepts anything with
    a ``total_alloc_bytes`` attribute (bench or server specs); the
    result is frame-aligned so it is a legal heap size.
    """
    from ..runtime.vm import EXPERIMENT_FRAME_SHIFT

    frame = 1 << EXPERIMENT_FRAME_SHIFT
    want = int(spec.total_alloc_bytes) * factor
    return max(2 * frame, -(-want // frame) * frame)


class SyntheticMutator:
    """Executes a WorkloadSpec against a VM."""

    def __init__(self, vm: VM, spec: WorkloadSpec, seed: int = 13):
        self.vm = vm
        self.spec = spec
        self.rng = random.Random(seed)
        self.mu = MutatorContext(vm)
        self.schedule = DeathSchedule()
        self.immortals: List[Handle] = []
        self.allocated_bytes = 0
        self._ensure_types()
        self._weights = [site.weight for site in spec.sites]
        self._next_cycle = spec.cycle_every_bytes
        self._next_phase = spec.phase_bytes
        self.cycles_built = 0
        self.phases_completed = 0
        # Allocation-loop caches (ISSUE 2): cumulative weights feed
        # rng.choices directly (same draw sequence as passing weights=),
        # per-site rows pre-resolve the descriptor and lifetime lookups,
        # and the compiled ref-count closure replaces the two-call
        # type_of/length_of walk in the random-slot picker.
        from itertools import accumulate

        self._cum_weights = list(accumulate(self._weights))
        self._site_desc = {
            site.type_name: vm.types.by_name(site.type_name)
            for site in spec.sites
        }
        self._site_rows = [
            (
                site,
                self._site_desc[site.type_name],
                spec.lifetimes[site.lifetime],
                site.type_name in ("small", "node", "big"),
            )
            for site in spec.sites
        ]
        self._ref_count_of = vm.model.compile_ref_count()
        # randrange(n) for positive n is exactly one _randbelow(n) draw;
        # binding it directly skips randrange's argument normalisation in
        # the three random-pick helpers below (identical rng stream).
        self._randbelow = self.rng._randbelow

    # ------------------------------------------------------------------
    def _ensure_types(self) -> None:
        ensure_standard_types(self.vm)

    # ------------------------------------------------------------------
    # Allocation helpers
    # ------------------------------------------------------------------
    def alloc_site(self, site: AllocSite) -> Handle:
        desc = self._site_desc.get(site.type_name)
        if desc is None:
            desc = self.vm.types.by_name(site.type_name)
        length = 0
        if site.length != (0, 0):
            length = self.rng.randint(*site.length)
        handle = self.mu.alloc(desc, length)
        self.allocated_bytes += desc.size_words(length) * WORD_BYTES
        return handle

    def alloc_immortal(self, type_name: str, length: int = 0) -> Handle:
        """Setup-time allocation pinned for the whole run."""
        desc = self.vm.types.by_name(type_name)
        handle = self.mu.alloc(desc, length)
        self.allocated_bytes += desc.size_words(length) * WORD_BYTES
        self.immortals.append(handle)
        return handle

    def _random_slot(self, handle: Handle) -> int:
        count = self._ref_count_of(handle.addr)
        return self._randbelow(count) if count else -1

    def _random_live(self, include_immortals: bool = True) -> Optional[Handle]:
        immortals = self.immortals
        pool = (len(immortals) if include_immortals else 0) + len(self.schedule)
        if pool == 0:
            return None
        randbelow = self._randbelow
        if include_immortals and randbelow(pool) < len(immortals):
            return immortals[randbelow(len(immortals))]
        return self.schedule.pick(randbelow)

    def link_from_live(self, target: Handle) -> None:
        """Make a random *mortal* live object point at ``target``.

        Holders are drawn from the death-scheduled population only: a
        pointer from an immortal would retain its target (and the target's
        whole subtree) for the rest of the run, which no SPEC benchmark
        does by accident.  Mortal holders still produce old→young pointers
        once promoted — the traffic the write barriers exist for."""
        holder = self._random_live(include_immortals=False)
        if holder is None or holder.is_null:
            return
        slot = self._random_slot(holder)
        if slot >= 0:
            self.mu.write(holder, slot, target)

    # ------------------------------------------------------------------
    # Behaviours
    # ------------------------------------------------------------------
    def _mutate_pointers(self) -> None:
        a = self._random_live(include_immortals=False)
        b = self._random_live()
        if a is None or b is None or a.is_null or b.is_null:
            return
        slot = self._random_slot(a)
        if slot >= 0:
            self.mu.write(a, slot, b)

    def _read_fields(self) -> None:
        a = self._random_live()
        if a is None or a.is_null:
            return
        slot = self._random_slot(a)
        if slot >= 0:
            self.mu.read_addr(a, slot)

    def _build_cycle(self) -> None:
        """Grow a cyclic structure whose members span *increments*.

        Each call allocates a small ring and cross-links it with the ring
        built ``cycle_every_bytes`` of allocation earlier — far enough
        apart that the two generations of ring nodes are promoted by
        different nursery collections into different belt-1 increments.
        The resulting dead structure is cyclic across increments: complete
        configurations reclaim it when the top belt is collected en masse;
        Beltway X.X never does (the javac anecdote of §4.2.4).
        """
        spec = self.spec
        death = spec.lifetimes[spec.cycle_lifetime].sample(self.rng)
        nodes = []
        desc = self.vm.types.by_name("node")
        for _ in range(spec.cycle_size):
            handle = self.mu.alloc(desc)
            self.allocated_bytes += desc.size_words() * WORD_BYTES
            nodes.append(handle)
        for i, handle in enumerate(nodes):
            self.mu.write(handle, 0, nodes[(i + 1) % len(nodes)])
        pending = getattr(self, "_pending_cycle_entry", None)
        if pending is not None and not pending.is_null:
            # Cross-increment back edges: this ring <-> the ring built one
            # cycle period earlier.  Rings pair up (and only pair up — a
            # longer chain would keep the whole history alive through the
            # always-rooted newest ring), so each dead pair is an isolated
            # cycle spanning two increments.
            self.mu.write(nodes[0], 1, pending)
            self.mu.write(pending, 1, nodes[0])
            pending.drop()
            self._pending_cycle_entry = None
        else:
            self._pending_cycle_entry = self.mu.copy_handle(nodes[0])
        for handle in nodes:
            if death is None:
                self.immortals.append(handle)
            else:
                self.schedule.schedule(self.allocated_bytes + death, handle)
        self.cycles_built += 1

    def _phase_boundary(self) -> None:
        """End of a compiler iteration / parser run / transaction batch."""
        self.schedule.drop_fraction(self.rng, self.spec.phase_drop_fraction)
        self.phases_completed += 1
        self.mu.work(64.0)  # per-phase bookkeeping computation

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        spec = self.spec
        rng = self.rng
        if spec.setup is not None:
            spec.setup(self)
        # Inner-loop locals: every per-iteration attribute walk and dict
        # lookup below runs tens of thousands of times per benchmark.  The
        # rng draw sequence is unchanged: rows only replace the choices
        # population values, cum_weights replaces the per-call accumulate.
        rows = self._site_rows
        cum_weights = self._cum_weights
        choices = rng.choices
        random_ = rng.random
        randint = rng.randint
        mu = self.mu
        mu_alloc = mu.alloc
        mu_write_int = mu.write_int
        mu_work = mu.work
        schedule = self.schedule
        schedule_add = schedule.schedule
        schedule_reap = schedule.reap
        immortals_append = self.immortals.append
        total = spec.total_alloc_bytes
        mutation_rate = spec.mutation_rate
        read_whole, read_frac = divmod(spec.read_rate, 1.0)
        read_whole = int(read_whole)
        cycle_every = spec.cycle_every_bytes
        phase_bytes = spec.phase_bytes
        while self.allocated_bytes < total:
            site, desc, lifetime, scalar_shape = choices(
                rows, cum_weights=cum_weights
            )[0]
            length = 0
            if site.length != (0, 0):
                length = randint(*site.length)
            handle = mu_alloc(desc, length)
            size_code = desc.size_code
            allocated = self.allocated_bytes + (
                size_code if size_code >= 0 else HEADER_WORDS + length
            ) * WORD_BYTES
            self.allocated_bytes = allocated
            if scalar_shape:
                mu_write_int(handle, 0, allocated & 0x7FFFFFFF)
            if site.link_prob and random_() < site.link_prob:
                self.link_from_live(handle)
            death = lifetime.sample(rng)
            if death is None:
                immortals_append(handle)
            else:
                schedule_add(allocated + death, handle)
            if mutation_rate and random_() < mutation_rate:
                self._mutate_pointers()
            # rates above 1.0 mean several operations per allocation
            for _ in range(read_whole):
                self._read_fields()
            if read_frac and random_() < read_frac:
                self._read_fields()
            if cycle_every and self.allocated_bytes >= self._next_cycle:
                self._build_cycle()
                self._next_cycle += cycle_every
            if phase_bytes and self.allocated_bytes >= self._next_phase:
                self._phase_boundary()
                self._next_phase += phase_bytes
            mu_work(site.work)
            schedule_reap(self.allocated_bytes)
        return self.vm.finish()

    # ------------------------------------------------------------------
    @property
    def live_objects(self) -> int:
        return len(self.immortals) + len(self.schedule)
