"""Synthetic SPEC workload substrate (six benchmarks + the engine)."""

from .engine import (
    AllocSite,
    STANDARD_TYPES,
    SyntheticMutator,
    Table1Row,
    WorkloadSpec,
)
from .lifetime import DeathSchedule, LifetimeClass
from .spec import (
    BENCHMARK_NAMES,
    KB,
    all_specs,
    benchmark_spec,
    canonical_name,
    get_spec,
)

__all__ = [
    "AllocSite",
    "BENCHMARK_NAMES",
    "DeathSchedule",
    "KB",
    "LifetimeClass",
    "STANDARD_TYPES",
    "SyntheticMutator",
    "Table1Row",
    "WorkloadSpec",
    "all_specs",
    "benchmark_spec",
    "canonical_name",
    "get_spec",
]
