"""Demographic validation: measure what the synthetic workloads actually do.

The substitution argument in DESIGN.md rests on the synthetic mutators
exhibiting the demographics the paper's insights exploit (§2.1).  This
module measures those demographics *empirically* from a run — infant
mortality, promotion rates, middle-aged populations, pointer-write mix —
so the test suite can assert them instead of trusting the spec sheets:

* the weak generational hypothesis: most allocated bytes die before
  their first collection;
* time-to-die: survival out of a FIFO-aged belt is far below survival
  out of the nursery;
* benchmark signatures: db reads ≫ writes, pseudojbb's middle-aged
  orders, javac's clumped phase deaths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.vm import VM
from ..sim.stats import RunStats


@dataclass
class Demographics:
    """Empirical collector-visible behaviour of one run."""

    allocated_bytes: int = 0
    allocations: int = 0
    #: bytes copied out of nursery-belt collections (survived young)
    nursery_copied_bytes: int = 0
    #: bytes collected in nursery-belt collections (the denominator)
    nursery_collected_bytes: int = 0
    #: same, for the first mature belt (survival after FIFO aging)
    mature_copied_bytes: int = 0
    mature_collected_bytes: int = 0
    field_reads: int = 0
    field_writes: int = 0
    collections: int = 0

    @property
    def nursery_survival(self) -> float:
        """Fraction of nursery bytes surviving their first collection."""
        if not self.nursery_collected_bytes:
            return 0.0
        return self.nursery_copied_bytes / self.nursery_collected_bytes

    @property
    def mature_survival(self) -> float:
        """Fraction of belt-1 bytes surviving after FIFO time-to-die."""
        if not self.mature_collected_bytes:
            return 0.0
        return self.mature_copied_bytes / self.mature_collected_bytes

    @property
    def infant_mortality(self) -> float:
        """Fraction of nursery bytes dead by their first collection —
        the weak generational hypothesis, measured."""
        return 1.0 - self.nursery_survival

    @property
    def read_write_ratio(self) -> float:
        return self.field_reads / self.field_writes if self.field_writes else 0.0

    def summary(self) -> str:
        return (
            f"alloc={self.allocated_bytes}B in {self.allocations} objects; "
            f"infant mortality={100 * self.infant_mortality:.1f}%; "
            f"mature survival={100 * self.mature_survival:.1f}%; "
            f"reads/writes={self.read_write_ratio:.2f}"
        )


def observe(vm: VM) -> Demographics:
    """Attach demographic observation to ``vm``; returns the (live,
    continuously updated) Demographics.  Must be called before the run."""
    demo = Demographics()

    def on_collection(result) -> None:
        demo.collections += 1
        bytes_collected = result.from_words * 4
        bytes_copied = result.copied_words * 4
        if result.belts_collected == (0,):
            demo.nursery_collected_bytes += bytes_collected
            demo.nursery_copied_bytes += bytes_copied
        elif result.belts_collected == (1,):
            demo.mature_collected_bytes += bytes_collected
            demo.mature_copied_bytes += bytes_copied

    vm.plan.collection_listeners.append(on_collection)
    demo._vm = vm  # late-bound counters read at finish time
    return demo


def finalize(demo: Demographics) -> Demographics:
    """Copy the VM-side counters into the demographics record."""
    vm = demo._vm
    demo.allocated_bytes = vm.plan.allocated_words * 4
    demo.allocations = vm.plan.allocations
    demo.field_reads = vm.field_reads
    demo.field_writes = vm.field_writes
    return demo


def measure_benchmark(
    benchmark: str,
    collector: str = "25.25.100",
    heap_multiple: float = 2.0,
    scale: float = 0.5,
    seed: int = 13,
) -> Demographics:
    """Run ``benchmark`` and return its measured demographics."""
    from ..bench.engine import SyntheticMutator
    from ..bench.spec import benchmark_spec
    from ..harness.runner import find_min_heap

    spec = benchmark_spec(benchmark, scale)
    minimum = find_min_heap(benchmark, "gctk:Appel", scale=scale)
    vm = VM(
        int(heap_multiple * minimum),
        collector=collector,
        locality=spec.locality,
        benchmark_name=spec.name,
    )
    demo = observe(vm)
    SyntheticMutator(vm, spec, seed=seed).run()
    return finalize(demo)
