"""_209_db — an in-memory database (SPEC JVM98).

Demographics: almost all live data is a big, immortal database — an index
vector over record objects — built during setup; the query loop then
allocates only small, immediately-dying temporaries while *reading*
heavily and shuffling index entries (the famous address-vector sort).
GC is "not a dominant factor" (§4.2.6) but the benchmark is very
locality-sensitive: performance varies with how collectors lay out the
records, which the cost model expresses through a high cache sensitivity.
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB

#: Number of database records (the scaled equivalent of db's ~16 K),
#: indexed through chunked vectors (objects may not exceed a frame).
CHUNKS = 4
RECORDS_PER_CHUNK = 24


def _setup_database(engine: SyntheticMutator) -> None:
    """The immortal database: a chunked index vector over 64-byte records."""
    mu = engine.mu
    directory = engine.alloc_immortal("refarr", length=CHUNKS)
    chunks = []
    for c in range(CHUNKS):
        chunk = engine.alloc_immortal("refarr", length=RECORDS_PER_CHUNK)
        mu.write(directory, c, chunk)
        chunks.append(chunk)
        for i in range(RECORDS_PER_CHUNK):
            record = engine.alloc_immortal("big")
            mu.write_int(record, 0, c * RECORDS_PER_CHUNK + i)
            values = engine.alloc_immortal("buf", length=6)  # field payload
            mu.write(record, 0, values)
            mu.write(chunk, i, record)

    rng = engine.rng
    original_mutate = engine._mutate_pointers

    def shuffle_index() -> None:
        """db's dominant mutation: swapping entries of the index vector."""
        chunk = chunks[rng.randrange(CHUNKS)]
        i = rng.randrange(RECORDS_PER_CHUNK)
        j = rng.randrange(RECORDS_PER_CHUNK)
        a = engine.mu.read(chunk, i)
        b = engine.mu.read(chunk, j)
        engine.mu.write(chunk, i, b)
        engine.mu.write(chunk, j, a)
        a.drop()
        b.drop()
        if rng.random() < 0.1:
            original_mutate()

    engine._mutate_pointers = shuffle_index


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="db",
        total_alloc_bytes=102 * KB,
        sites=[
            # query temporaries: enumerators, string fragments
            AllocSite(weight=0.78, type_name="small", lifetime="immediate", work=6.0),
            # result assemblies
            AllocSite(weight=0.16, type_name="node", lifetime="short", work=6.0),
            # transient result vectors
            AllocSite(
                weight=0.06, type_name="refarr", lifetime="short", length=(2, 10), work=4.0
            ),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 1 * KB),
            "short": LifetimeClass("short", 1 * KB, 5 * KB),
        },
        mutation_rate=0.45,  # the index shuffle
        read_rate=2.5,  # db reads far more than it allocates
        setup=_setup_database,
        locality=LocalityModel(cache_words=12 * 1024, cache_sensitivity=0.45),
        paper=Table1Row(
            min_heap_bytes=22 * KB,
            total_alloc_bytes=102 * KB,
            gcs_large_heap=5,
            gcs_small_heap=115,
            description="Simulates a database management system",
        ),
    )
