"""_213_javac — the JDK 1.0.2 Java compiler compiling jess (SPEC JVM98).

Demographics: four compilation iterations, each of which grows large,
heavily *cyclic* medium-lived structures (ASTs, symbol tables, constant
pools that reference each other) and then releases almost everything at
the iteration boundary.  The clumped deaths and the cross-increment
cycles are exactly what §4.2.4 blames for Beltway 25.25's regression on
javac: an incomplete configuration never reclaims a large dead cycle
whose members were promoted into different increments.
"""

from __future__ import annotations

from ..sim.locality import LocalityModel
from .engine import AllocSite, SyntheticMutator, Table1Row, WorkloadSpec
from .lifetime import LifetimeClass
from .spec import KB

#: The paper compiles jess four times.
ITERATIONS = 4
TOTAL = 266 * KB


def _setup_compiler(engine: SyntheticMutator) -> None:
    """Immortal compiler infrastructure: intern table, type objects."""
    mu = engine.mu
    intern = engine.alloc_immortal("refarr", length=32)
    for i in range(32):
        sym = engine.alloc_immortal("small")
        mu.write(intern, i, sym)


def spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="javac",
        total_alloc_bytes=TOTAL,
        sites=[
            # AST nodes: live until the end of the compilation iteration
            AllocSite(weight=0.42, type_name="node", lifetime="medium", link_prob=0.35, work=5.0),
            # scanner tokens and strings: die fast
            AllocSite(weight=0.30, type_name="small", lifetime="short", work=4.0),
            # symbol table entries / class representations
            AllocSite(weight=0.16, type_name="big", lifetime="medium", link_prob=0.30, work=6.0),
            # member vectors
            AllocSite(
                weight=0.12, type_name="refarr", lifetime="medium", length=(2, 12),
                link_prob=0.2, work=4.0,
            ),
        ],
        lifetimes={
            "short": LifetimeClass("short", 0, 4 * KB),
            # medium: up to most of an iteration — the phase boundary kills
            # the stragglers in a clump.
            "medium": LifetimeClass("medium", 4 * KB, 32 * KB),
        },
        mutation_rate=0.20,
        read_rate=0.80,
        cycle_every_bytes=2 * KB,  # doubly-linked ASTs, scope cycles
        cycle_size=10,
        cycle_lifetime="medium",
        phase_bytes=TOTAL // ITERATIONS,
        phase_drop_fraction=0.85,
        setup=_setup_compiler,
        locality=LocalityModel(cache_words=16 * 1024, cache_sensitivity=0.10),
        paper=Table1Row(
            min_heap_bytes=32 * KB,
            total_alloc_bytes=TOTAL,
            gcs_large_heap=10,
            gcs_small_heap=100,
            description="The Sun JDK 1.02 Java compiler compiling jess",
        ),
    )
