"""Differential checking: real heap vs. shadow graph, in lockstep.

At every ``gc.end`` (and on demand) the checker walks the real heap from
the root tables and the shadow graph from its mirrored root slots *in
lockstep*: each step pairs a real address with the shadow node that must
live there.  Along the way it checks

* **object set** — every shadow-reachable object exists on the real heap,
  exactly once (the pairing is a bijection: no aliasing, no duplicates);
* **forwarding coherence** — no reachable object carries a forwarding
  status and no reference points into an unmapped or unstamped frame
  (stale pointers into evacuated frames die here);
* **shape and payload** — type, length, null-ness of every reference
  slot, and every scalar word match the oracle.

A clean walk doubles as the address remap: collections move objects, so
the pairing discovered here becomes the shadow's next ``by_addr`` index.
All heap access goes through :class:`~repro.sanitizer.heapcheck.RawHeapReader`,
so checking charges no simulated loads and perturbs nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .heapcheck import RawHeapReader
from .report import Violation
from .shadow import ShadowGraph, ShadowNode

#: Stop piling up evidence after this many violations per check pass.
MAX_VIOLATIONS = 25


class DifferentialChecker:
    """Pairs the real heap with the shadow graph and reports divergence."""

    def __init__(self, reader: RawHeapReader, shadow: ShadowGraph):
        self.reader = reader
        self.shadow = shadow
        self.objects_compared = 0
        self.edges_compared = 0

    def check_and_remap(
        self, collection: int = -1
    ) -> Tuple[List[Violation], Optional[Dict[int, ShadowNode]]]:
        """Run one lockstep walk.

        Returns ``(violations, by_addr)``; ``by_addr`` is the fresh
        address index when the walk was clean, else ``None`` (a corrupt
        pairing must not poison the oracle).
        """
        violations: List[Violation] = []
        reader = self.reader

        def flag(check: str, message: str, addr: int = 0) -> None:
            violations.append(Violation(
                check=check,
                message=message,
                addr=addr,
                frame=reader.frame_index(addr) if addr else -1,
                collection=collection,
            ))

        # Roots: every live table slot must agree on null-ness.
        pairs: List[Tuple[int, ShadowNode]] = []
        for table, real_slots, shadow_slots in self.shadow.root_pairs():
            for index, addr in enumerate(real_slots):
                node = shadow_slots.get(index)
                if node is None:
                    if addr:
                        flag(
                            "diff.roots",
                            f"root slot {index} holds {addr:#x} but the "
                            f"shadow has no object there",
                            addr,
                        )
                    continue
                if not addr:
                    flag(
                        "diff.roots",
                        f"root slot {index} lost shadow object "
                        f"#{node.serial} ({node.type_name})",
                    )
                    continue
                pairs.append((addr, node))

        by_addr: Dict[int, ShadowNode] = {}
        located: Dict[int, int] = {}  # id(node) -> addr
        queue = pairs
        queue.reverse()  # pop() from the end == original order first
        while queue:
            if len(violations) >= MAX_VIOLATIONS:
                return violations, None
            addr, node = queue.pop()
            seen = by_addr.get(addr)
            if seen is not None:
                if seen is not node:
                    flag(
                        "diff.alias",
                        f"address {addr:#x} reached as both shadow object "
                        f"#{seen.serial} and #{node.serial}",
                        addr,
                    )
                continue
            prev = located.get(id(node))
            if prev is not None:
                if prev != addr:
                    flag(
                        "diff.duplicate",
                        f"shadow object #{node.serial} found at both "
                        f"{prev:#x} and {addr:#x}",
                        addr,
                    )
                continue
            error = reader.check_object(addr)
            if error:
                flag("forwarding", error, addr)
                continue
            view = reader.view(addr)
            by_addr[addr] = node
            located[id(node)] = addr
            self.objects_compared += 1
            if view.desc.name != node.type_name or view.length != node.length:
                flag(
                    "diff.shape",
                    f"object at {addr:#x} is {view.desc.name}[{view.length}]"
                    f" but shadow #{node.serial} is "
                    f"{node.type_name}[{node.length}]",
                    addr,
                )
                continue
            for index, (target, child) in enumerate(zip(view.refs, node.refs)):
                self.edges_compared += 1
                if (target == 0) != (child is None):
                    flag(
                        "diff.edge",
                        f"ref slot {index} of {addr:#x} "
                        f"(shadow #{node.serial}): heap holds "
                        f"{target:#x}, shadow holds "
                        + (f"#{child.serial}" if child else "null"),
                        addr,
                    )
                    continue
                if target:
                    queue.append((target, child))
            if view.scalars != tuple(node.scalars):
                for index, (got, want) in enumerate(
                    zip(view.scalars, node.scalars)
                ):
                    if got != want:
                        flag(
                            "diff.scalar",
                            f"scalar slot {index} of {addr:#x} (shadow "
                            f"#{node.serial}): heap holds {got}, shadow "
                            f"holds {want}",
                            addr,
                        )
                        break
        if violations:
            return violations, None
        return violations, by_addr
