"""Deterministic fault injection: break the collectors on purpose.

Every fault is an *attach-time* wrapper around a collection-critical seam
(the same mechanism telemetry and the sanitizer use, DESIGN §10/§11): a
VM whose faults were never armed executes untouched code, and ``disarm``
restores every patched attribute.  Faults are deterministic and
seed-addressable — a :class:`FaultSpec` names the fault kind and either
the exact occurrence to break (``nth``) or a ``seed`` from which the
occurrence is derived — so the same spec breaks the same store in every
run, which is what makes "every registered fault is detected" a testable
meta-property rather than a flaky one.

Registered kinds (each provably detected by the differential checker or
the invariant suite; see ``tests/sanitizer/test_fault_matrix.py``):

``barrier.drop-entry``
    The nth remembered-set insert (Beltway ``RememberedSets.insert``,
    GCTk ``SequentialStoreBuffer.append``) is silently dropped —
    detected by remset completeness.
``remset.corrupt-slot``
    The nth insert records a wrong slot address in the right frame pair —
    detected by remset completeness (the real slot is uncovered).
``copy.skip-forward``
    After a collection's trace, one root slot is wound back to the
    evacuated address — a skipped forward; detected as a stale pointer
    by the differential walk (forwarding coherence).
``order.stale-stamp``
    From the nth restamp on, one frame's entry in the flat ``orders``
    table the compiled barrier reads disagrees with its increment's
    stamp — detected by the belt/increment ordering invariant (Beltway
    only).
``reserve.shrink``
    From the nth query on, the plan under-reports its copy reserve —
    detected by the copy-reserve accounting invariant (Beltway only).
``scalar.corrupt``
    After the nth collection, one reachable scalar payload word is
    incremented — detected by the differential walk's payload compare.

Faults must be armed *before* the sanitizer attaches (the sanitizer
re-snapshots the write path) and before any mutator context is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigError
from ..heap.objectmodel import HEADER_WORDS
from .heapcheck import RawHeapReader

FAULT_KINDS = (
    "barrier.drop-entry",
    "remset.corrupt-slot",
    "copy.skip-forward",
    "order.stale-stamp",
    "reserve.shrink",
    "scalar.corrupt",
)

#: Fault kinds that only make sense on a Beltway plan.
BELTWAY_ONLY = ("order.stale-stamp", "reserve.shrink")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to arm: which seam, and which occurrence to break."""

    kind: str
    nth: Optional[int] = None  #: 1-based occurrence; None = derive from seed
    seed: int = 0
    param: int = 2  #: kind-specific magnitude (reserve.shrink frame count)

    def resolved_nth(self) -> int:
        """The occurrence this spec breaks (seed-addressable when ``nth``
        is not given)."""
        if self.nth is not None:
            if self.nth < 1:
                raise ConfigError(f"fault nth must be >= 1, got {self.nth}")
            return self.nth
        return 1 + (self.seed * 2654435761) % 7

    def describe(self) -> str:
        return f"{self.kind}@{self.resolved_nth()}"


class FaultInjector:
    """Armed faults on one VM; tracks firings and owns the undo list."""

    def __init__(self, vm, specs: Sequence[FaultSpec]):
        self.vm = vm
        self.specs = list(specs)
        self.events: List[str] = []  #: one entry per fault firing
        self._undo: List[Callable[[], None]] = []
        for spec in self.specs:
            _ARMERS.get(spec.kind, _unknown_kind)(self, spec)

    @property
    def fired(self) -> bool:
        return bool(self.events)

    def disarm(self) -> None:
        """Restore every patched attribute (LIFO, so stacked wrappers on
        the same seam unwind correctly)."""
        while self._undo:
            self._undo.pop()()

    # -- plumbing ------------------------------------------------------
    def _patch(self, obj, name: str, wrapper) -> None:
        """Instance-patch ``obj.name`` and register the exact inverse."""
        had_instance_attr = name in vars(obj)
        original = getattr(obj, name)
        setattr(obj, name, wrapper)

        def undo():
            if had_instance_attr:
                setattr(obj, name, original)
            else:
                delattr(obj, name)

        self._undo.append(undo)


def arm_faults(vm, specs: Sequence[FaultSpec]) -> FaultInjector:
    """Arm ``specs`` on ``vm``; returns the injector (public API)."""
    return FaultInjector(vm, specs)


def _unknown_kind(injector: FaultInjector, spec: FaultSpec) -> None:
    raise ConfigError(
        f"unknown fault kind {spec.kind!r}; registered: "
        + ", ".join(FAULT_KINDS)
    )


def _is_beltway(plan) -> bool:
    return hasattr(plan, "belts")


def _require_beltway(plan, spec: FaultSpec) -> None:
    if not _is_beltway(plan):
        raise ConfigError(
            f"fault kind {spec.kind!r} requires a Beltway plan"
        )


def _recompile_write_paths(injector: FaultInjector, plan, vm) -> None:
    """Re-bake the compiled store/init closures so they capture the
    wrapped insert (the originals froze ``remsets.insert`` into their
    namespace at construction — DESIGN §9)."""
    injector._patch(
        plan, "write_ref_field", plan.barrier.compile_write_field(plan.model)
    )
    injector._patch(
        plan, "_init_object", plan.barrier.compile_init_object(plan.model)
    )
    injector._patch(vm, "_write_ref_field", plan.write_ref_field)


# ----------------------------------------------------------------------
# Remembered-set seams (core.barrier / core.remset / gctk.ssb)
# ----------------------------------------------------------------------
def _arm_insert_fault(injector: FaultInjector, spec: FaultSpec,
                      corrupt: bool) -> None:
    plan = injector.vm.plan
    nth = spec.resolved_nth()
    state = {"n": 0}
    events = injector.events
    if _is_beltway(plan):
        remsets = plan.remsets
        inner = remsets.insert

        def insert(src, tgt, slot):
            state["n"] += 1
            if state["n"] == nth:
                if corrupt:
                    events.append(
                        f"{spec.kind}: insert #{nth} pair ({src},{tgt}) "
                        f"slot {slot:#x} corrupted to {slot ^ 8:#x}"
                    )
                    inner(src, tgt, slot ^ 8)
                else:
                    events.append(
                        f"{spec.kind}: insert #{nth} pair ({src},{tgt}) "
                        f"slot {slot:#x} dropped"
                    )
                return
            inner(src, tgt, slot)

        injector._patch(remsets, "insert", insert)
    else:
        ssb = plan.ssb
        inner = ssb.append

        def append(slot):
            state["n"] += 1
            if state["n"] == nth:
                if corrupt:
                    events.append(
                        f"{spec.kind}: SSB append #{nth} slot {slot:#x} "
                        f"corrupted to {slot ^ 8:#x}"
                    )
                    inner(slot ^ 8)
                else:
                    events.append(
                        f"{spec.kind}: SSB append #{nth} slot {slot:#x} "
                        f"dropped"
                    )
                return
            inner(slot)

        injector._patch(ssb, "append", append)
    _recompile_write_paths(injector, plan, injector.vm)


def _arm_drop_entry(injector: FaultInjector, spec: FaultSpec) -> None:
    _arm_insert_fault(injector, spec, corrupt=False)


def _arm_corrupt_slot(injector: FaultInjector, spec: FaultSpec) -> None:
    _arm_insert_fault(injector, spec, corrupt=True)


# ----------------------------------------------------------------------
# Copy seams (core.collector / gctk.copying)
# ----------------------------------------------------------------------
def _post_collection_seam(injector: FaultInjector, apply) -> None:
    """Run ``apply(collection_number)`` after each collection's trace but
    *before* the collection listeners (and hence the checker) observe the
    result — the window where a real collector bug would sit.

    Beltway: ``plan.collector.collect`` returns before ``plan.collect``
    fires listeners, so wrapping the collector is enough.  GCTk plans
    fire listeners inside ``plan._emit``, so the seam is there instead.
    """
    plan = injector.vm.plan
    state = {"n": 0}
    if _is_beltway(plan):
        collector = plan.collector
        inner = collector.collect

        def collect(batch, reason):
            result = inner(batch, reason)
            state["n"] += 1
            apply(state["n"])
            return result

        injector._patch(collector, "collect", collect)
    else:
        inner = plan._emit

        def _emit(result):
            state["n"] += 1
            apply(state["n"])
            return inner(result)

        injector._patch(plan, "_emit", _emit)


def _arm_skip_forward(injector: FaultInjector, spec: FaultSpec) -> None:
    """Wind one root slot back to its pre-collection (evacuated) address:
    the observable effect of a forward the trace skipped."""
    plan = injector.vm.plan
    nth = spec.resolved_nth()
    events = injector.events
    snapshots = {"before": None}
    state = {"fired": False}

    def snapshot():
        snapshots["before"] = [list(array) for array in plan.root_arrays]

    # Take the pre-trace snapshot at every collection entry point (GCTk
    # plans call minor/major directly from the allocator).
    entered = {"depth": 0}
    for entry in ("collect", "minor_collect", "major_collect"):
        inner_entry = getattr(plan, entry, None)
        if inner_entry is None:
            continue

        def make_entry(inner):
            def wrapped(*args, **kwargs):
                if entered["depth"]:
                    return inner(*args, **kwargs)
                entered["depth"] = 1
                snapshot()
                try:
                    return inner(*args, **kwargs)
                finally:
                    entered["depth"] = 0

            return wrapped

        injector._patch(plan, entry, make_entry(inner_entry))

    def apply(count):
        if state["fired"] or count < nth:
            return
        before = snapshots["before"]
        if before is None:
            return
        for array, old_slots in zip(plan.root_arrays, before):
            for index, (old, new) in enumerate(zip(old_slots, array)):
                if old and new != old:
                    array[index] = old
                    state["fired"] = True
                    events.append(
                        f"{spec.kind}: root slot {index} wound back from "
                        f"{new:#x} to evacuated {old:#x} after "
                        f"collection #{count}"
                    )
                    return

    _post_collection_seam(injector, apply)


def _arm_scalar_corrupt(injector: FaultInjector, spec: FaultSpec) -> None:
    """Flip one reachable scalar payload word right after a collection —
    the signature of a copy that lost data."""
    vm = injector.vm
    plan = vm.plan
    nth = spec.resolved_nth()
    events = injector.events
    state = {"fired": False}
    reader = RawHeapReader(vm.space, plan.model)

    def apply(count):
        if state["fired"] or count < nth:
            return
        order, error = reader.walk(
            value for array in plan.root_arrays for value in array
        )
        if error:
            return
        for addr in order:
            view = reader.view(addr)
            if not view.scalars:
                continue
            frame = reader.frame_of(addr)
            slot = ((addr >> 2) & reader.space._word_mask) + \
                HEADER_WORDS + len(view.refs)
            frame.words[slot] += 1
            state["fired"] = True
            events.append(
                f"{spec.kind}: scalar word 0 of {addr:#x} bumped from "
                f"{view.scalars[0]} after collection #{count}"
            )
            return

    _post_collection_seam(injector, apply)


# ----------------------------------------------------------------------
# Order and reserve seams (core.order / core.reserve, Beltway only)
# ----------------------------------------------------------------------
def _arm_stale_stamp(injector: FaultInjector, spec: FaultSpec) -> None:
    plan = injector.vm.plan
    _require_beltway(plan, spec)
    nth = spec.resolved_nth()
    state = {"n": 0, "fired": False}
    events = injector.events
    inner = plan.restamp

    def restamp():
        inner()
        state["n"] += 1
        if state["n"] < nth:
            return
        for belt in plan.belts:
            for inc in belt.increments:
                for frame in inc.region.frames:
                    plan.space.orders[frame.index] = inc.stamp + 1
                    if not state["fired"]:
                        state["fired"] = True
                        events.append(
                            f"{spec.kind}: orders[{frame.index}] bumped to "
                            f"{inc.stamp + 1} (belt {belt.index} front "
                            f"stamp {inc.stamp}) at restamp #{state['n']}"
                        )
                    return

    injector._patch(plan, "restamp", restamp)


def _arm_reserve_shrink(injector: FaultInjector, spec: FaultSpec) -> None:
    plan = injector.vm.plan
    _require_beltway(plan, spec)
    nth = spec.resolved_nth()
    shrink = max(1, spec.param)
    state = {"n": 0, "fired": False}
    events = injector.events
    inner = plan.current_reserve_frames

    def current_reserve_frames():
        honest = inner()
        state["n"] += 1
        if state["n"] < nth or honest == 0:
            return honest
        if not state["fired"]:
            state["fired"] = True
            events.append(
                f"{spec.kind}: reserve under-reported {honest} -> "
                f"{max(0, honest - shrink)} from query #{state['n']}"
            )
        return max(0, honest - shrink)

    injector._patch(plan, "current_reserve_frames", current_reserve_frames)


_ARMERS = {
    "barrier.drop-entry": _arm_drop_entry,
    "remset.corrupt-slot": _arm_corrupt_slot,
    "copy.skip-forward": _arm_skip_forward,
    "order.stale-stamp": _arm_stale_stamp,
    "reserve.shrink": _arm_reserve_shrink,
    "scalar.corrupt": _arm_scalar_corrupt,
}
