"""Standalone collector invariants, checked at collection boundaries.

These checks need no shadow graph — they hold between the real heap and
the collector's own bookkeeping, so they run even where the differential
walk has nothing to say:

* **remset completeness** (before a collection): every reference from a
  later-collected frame into a sooner-collected frame is covered by a
  remembered-set entry.  For Beltway plans the order relation is the
  flat ``orders`` stamp table (boot frames carry an infinite order, so
  boot→heap edges must be remembered too); for the GCTk baselines it is
  nursery membership, with boot sources exempt because the boot image is
  rescanned wholesale.
* **forwarding coherence**: nothing reachable carries a forwarding
  status or points into an unmapped/unstamped frame (the walk shared
  with the differential checker enforces this per object).
* **belt/increment FIFO ordering** (Beltway): along each belt the
  increment stamps strictly increase front to back, and every frame of
  an increment agrees with its increment's stamp in both the ``Frame``
  header and the flat ``orders`` table the compiled barrier reads.
* **copy-reserve accounting** (Beltway): the reserve the plan *claims*
  equals an independent recomputation through the class's own method —
  an instance-level lie (exactly what the reserve fault plants) cannot
  hide.

All heap access goes through the counter-free
:class:`~repro.sanitizer.heapcheck.RawHeapReader`; remset reads use the
drain-only accessors (``pairs`` / ``entries_for_pair``), which are
counter-safe the same way ``len(remsets)`` is (dedup totals are
order-independent).
"""

from __future__ import annotations

from typing import List, Tuple

from ..heap.address import WORD_BYTES
from ..heap.objectmodel import HEADER_WORDS
from .heapcheck import RawHeapReader
from .report import Violation


def _is_beltway(plan) -> bool:
    return hasattr(plan, "belts")


def check_remset_completeness(
    plan, reader: RawHeapReader, collection: int = -1
) -> Tuple[List[Violation], int]:
    """Walk the live heap and demand a remset entry for every edge the
    next collection would otherwise miss.  Returns ``(violations,
    edges_checked)``."""
    violations: List[Violation] = []
    order, walk_error = reader.walk(plan.roots())
    if walk_error:
        violations.append(Violation(
            check="forwarding", message=walk_error, collection=collection,
        ))
        return violations, 0
    shift = reader.space.frame_shift
    edges = 0
    if _is_beltway(plan):
        orders = plan.space.orders
        remsets = plan.remsets
        entry_sets = {}
        for addr in order:
            source_frame = addr >> shift
            for index, target in enumerate(reader.view(addr).refs):
                if not target:
                    continue
                target_frame = target >> shift
                if target_frame == source_frame:
                    continue
                if orders[target_frame] >= orders[source_frame]:
                    continue
                edges += 1
                key = (source_frame, target_frame)
                entries = entry_sets.get(key)
                if entries is None:
                    entries = set(
                        remsets.entries_for_pair(source_frame, target_frame)
                    )
                    entry_sets[key] = entries
                slot = addr + (index + HEADER_WORDS) * WORD_BYTES
                if slot not in entries:
                    violations.append(Violation(
                        check="remset-completeness",
                        message=(
                            f"edge {addr:#x}[{index}] -> {target:#x} "
                            f"(frame {source_frame} order "
                            f"{orders[source_frame]} -> frame "
                            f"{target_frame} order {orders[target_frame]}) "
                            f"has no remset entry for slot {slot:#x}"
                        ),
                        addr=slot,
                        frame=source_frame,
                        collection=collection,
                    ))
    else:
        nursery = plan.barrier.nursery_frames
        remembered = set(plan.ssb.slots)
        for addr in order:
            source_frame = addr >> shift
            if source_frame in nursery:
                continue
            if reader.is_boot(addr):
                continue  # the boot image is rescanned wholesale
            for index, target in enumerate(reader.view(addr).refs):
                if not target or (target >> shift) not in nursery:
                    continue
                edges += 1
                slot = addr + (index + HEADER_WORDS) * WORD_BYTES
                if slot not in remembered:
                    violations.append(Violation(
                        check="remset-completeness",
                        message=(
                            f"old->young edge {addr:#x}[{index}] -> "
                            f"{target:#x} has no SSB entry for slot "
                            f"{slot:#x}"
                        ),
                        addr=slot,
                        frame=source_frame,
                        collection=collection,
                    ))
    return violations, edges


def check_structure(plan, collection: int = -1) -> List[Violation]:
    """Belt/increment FIFO ordering and stamp coherence (Beltway only)."""
    if not _is_beltway(plan):
        return []
    violations: List[Violation] = []
    orders = plan.space.orders
    for belt in plan.belts:
        previous = 0
        # Increments are named by belt position (front = 0), not by
        # ``inc.id``: ids come from a process-global counter, and the
        # determinism tests pin reports byte-identical across runs.
        for position, inc in enumerate(belt.increments):
            label = f"increment {belt.index}.{position}"
            if inc.stamp <= previous:
                violations.append(Violation(
                    check="belt-fifo",
                    message=(
                        f"belt {belt.index}: {label} stamp "
                        f"{inc.stamp} does not increase over the "
                        f"increment in front of it ({previous})"
                    ),
                    collection=collection,
                ))
            previous = inc.stamp
            for frame in inc.region.frames:
                if frame.collect_order != inc.stamp:
                    violations.append(Violation(
                        check="order-stamp",
                        message=(
                            f"frame {frame.index} carries order "
                            f"{frame.collect_order} but its "
                            f"{label} is stamped {inc.stamp}"
                        ),
                        frame=frame.index,
                        collection=collection,
                    ))
                if orders[frame.index] != inc.stamp:
                    violations.append(Violation(
                        check="order-stamp",
                        message=(
                            f"orders[{frame.index}] = "
                            f"{orders[frame.index]} disagrees with "
                            f"{label} stamp {inc.stamp} — the "
                            f"compiled barrier is reading a stale order"
                        ),
                        frame=frame.index,
                        collection=collection,
                    ))
    return violations


def check_reserve(plan, collection: int = -1) -> List[Violation]:
    """Copy-reserve accounting: the plan's claimed reserve must equal an
    honest recomputation via the class's own method (Beltway only)."""
    if not _is_beltway(plan):
        return []
    claimed = plan.current_reserve_frames()
    honest = type(plan).current_reserve_frames(plan)
    if claimed == honest:
        return []
    return [Violation(
        check="copy-reserve",
        message=(
            f"plan claims a copy reserve of {claimed} frame(s) but the "
            f"policy arithmetic requires {honest}"
        ),
        collection=collection,
    )]
