"""``attach_sanitizer(vm)``: wire the oracle, checker and invariants up.

Mirrors ``attach_tracer``: attaching builds a private
:class:`~repro.obs.bus.TelemetryBus`, hooks standard VM instrumentation
to it for ``gc.start`` / ``gc.end`` boundaries, and wraps the VM's
mutator-facing operations (``alloc`` / ``write_ref`` / ``write_int`` and
root-table acquire/release via the ``runtime.mutator`` observer hook) as
instance attributes feeding the shadow graph.  A VM that was never
attached executes untouched code — the golden-counter and
interpreter-call-ratio gates pin that down, exactly as they do for
telemetry (DESIGN §10/§11).

Check cadence:

* ``gc.start`` — remset completeness (every edge the imminent collection
  needs is remembered), belt/increment ordering, reserve accounting;
* ``gc.end`` — ordering and reserve again, then the differential walk
  (object set, edges, payloads, forwarding coherence), whose clean
  pairing becomes the shadow's post-collection address index;
* :meth:`Sanitizer.check_now` — everything at once, on demand (the
  harness runs it after the mutator finishes).

With ``halt_on_violation`` (the default) the first violation raises
:class:`~repro.sanitizer.report.SanitizerViolation` carrying the report,
so a corrupted heap is caught at the boundary where it first became
observable rather than at some later crash.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..obs import TelemetryBus, attach
from .diff import DifferentialChecker
from .heapcheck import RawHeapReader
from .invariants import (
    check_remset_completeness,
    check_reserve,
    check_structure,
)
from .report import SanitizerReport, SanitizerViolation, Violation
from .shadow import ShadowGraph


class Sanitizer:
    """One VM's shadow graph, checkers, and mutator hooks."""

    def __init__(self, vm, halt_on_violation: bool = True):
        if getattr(vm.plan, "root_arrays", None):
            raise ConfigError(
                "attach_sanitizer must run before any mutator context is "
                "created (the shadow graph has to see every root from the "
                "start)"
            )
        self.vm = vm
        self.halt_on_violation = halt_on_violation
        self.report = SanitizerReport()
        self.shadow = ShadowGraph()
        self.reader = RawHeapReader(vm.space, vm.plan.model)
        self.differ = DifferentialChecker(self.reader, self.shadow)
        self._tables: List[tuple] = []
        self._detached = False
        # Collection boundaries arrive over a private bus, like the tracer.
        self.bus = TelemetryBus()
        self._inst = attach(vm, self.bus, snapshot_every=0)
        self.bus.subscribe(self)
        # Mutator events: instance-attribute wrapping, shadow after the
        # real operation succeeded.
        self._inner_alloc = vm.alloc
        self._inner_write_ref = vm.write_ref
        self._inner_write_int = vm.write_int
        vm.alloc = self._alloc
        vm.write_ref = self._write_ref
        vm.write_int = self._write_int
        vm.mutator_observer = self

    # ------------------------------------------------------------------
    # Mutator hooks
    # ------------------------------------------------------------------
    def _alloc(self, desc, length: int = 0) -> int:
        addr = self._inner_alloc(desc, length)
        error = self.shadow.on_alloc(addr, desc, length)
        if error:
            self._flag("shadow", error, addr)
        return addr

    def _write_ref(self, obj: int, index: int, value: int) -> None:
        self._inner_write_ref(obj, index, value)
        error = self.shadow.on_write_ref(obj, index, value)
        if error:
            self._flag("shadow", error, obj)

    def _write_int(self, obj: int, index: int, value: int) -> None:
        self._inner_write_int(obj, index, value)
        error = self.shadow.on_write_int(obj, index, value)
        if error:
            self._flag("shadow", error, obj)

    def observe_mutator(self, mu) -> None:
        """``runtime.mutator`` hook: mirror this context's root table.

        Called by ``MutatorContext.__init__`` (before it caches bound
        methods) whenever ``vm.mutator_observer`` is set.
        """
        table = mu.table
        shadow = self.shadow
        inner_acquire = table.acquire
        inner_release = table.release

        def acquire(addr):
            handle = inner_acquire(addr)
            error = shadow.on_acquire(table, handle._index, addr)
            if error:
                self._flag("shadow", error, addr)
            return handle

        def release(index):
            inner_release(index)
            shadow.on_release(table, index)

        table.acquire = acquire
        table.release = release
        self._tables.append((table, inner_acquire, inner_release))

    # ------------------------------------------------------------------
    # Bus subscriber: collection boundaries
    # ------------------------------------------------------------------
    def accept(self, event) -> None:
        if event.kind == "gc.start":
            self._boundary_check(
                int(event.data.get("seq", -1)), completeness=True, diff=False
            )
        elif event.kind == "gc.end":
            self.report.collections_checked += 1
            self._boundary_check(
                int(event.data.get("id", -1)), completeness=False, diff=True
            )

    def check_now(self) -> SanitizerReport:
        """Run the full suite immediately (harness calls this at run end)."""
        self._boundary_check(-1, completeness=True, diff=True)
        return self.report

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def _boundary_check(
        self, collection: int, completeness: bool, diff: bool
    ) -> None:
        plan = self.vm.plan
        violations: List[Violation] = []
        violations.extend(check_structure(plan, collection))
        violations.extend(check_reserve(plan, collection))
        if completeness:
            found, edges = check_remset_completeness(
                plan, self.reader, collection
            )
            violations.extend(found)
            self.report.remset_edges_checked += edges
        if diff and not violations:
            found, by_addr = self.differ.check_and_remap(collection)
            violations.extend(found)
            if by_addr is not None:
                self.shadow.rebind(by_addr)
            self.report.objects_compared = self.differ.objects_compared
            self.report.edges_compared = self.differ.edges_compared
        self._record(violations)

    def _flag(self, check: str, message: str, addr: int = 0) -> None:
        self._record([Violation(
            check=check,
            message=message,
            addr=addr,
            frame=self.reader.frame_index(addr) if addr else -1,
        )])

    def _record(self, violations: List[Violation]) -> None:
        if not violations:
            return
        for violation in violations:
            self.report.record(violation)
        if self.halt_on_violation:
            raise SanitizerViolation(self.report, violations[0])

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Return the VM to the untouched-code path."""
        if self._detached:
            return
        self._detached = True
        vm = self.vm
        del vm.alloc, vm.write_ref, vm.write_int
        vm.mutator_observer = None
        for table, _inner_acquire, _inner_release in self._tables:
            del table.acquire, table.release
        self._tables.clear()
        self.bus.unsubscribe(self)
        self._inst.detach()


def attach_sanitizer(
    vm, halt_on_violation: bool = True
) -> Sanitizer:
    """Attach a :class:`Sanitizer` to ``vm`` and return it (public API).

    Must be called before the first ``MutatorContext`` is created, and
    after any faults are armed (:func:`repro.sanitizer.faults.arm_faults`).
    """
    return Sanitizer(vm, halt_on_violation=halt_on_violation)
