"""Heap verifier and raw heap access for the sanitizer.

This module absorbs the former ``repro.heap.verify`` (the old path keeps a
deprecation shim).  It carries two readers over the same frame-walk logic:

* :class:`HeapVerifier` — the historical debug verifier.  It goes through
  the *counted* :class:`~repro.heap.objectmodel.ObjectModel` accessors, so
  a verifying run charges loads exactly as it always has (``--verify``
  runs and golden counters depend on that accounting staying put).
* :class:`RawHeapReader` — the sanitizer's accessor.  It reads frame
  storage directly and never touches ``load_count`` / ``store_count`` or
  the address-space frame cache, so the differential checker can walk the
  whole heap at every ``gc.end`` while the checked run's statistics stay
  bit-identical to an unchecked run (the reads-never-acts rule of
  DESIGN.md §10, extended to the sanitizer in §11).

Both share :func:`frame_bounds_error` so the "object overruns its frame's
used prefix" check cannot drift between the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from ..errors import HeapCorruption
from ..heap.address import WORD_BYTES
from ..heap.frame import BOOT_ORDER, UNASSIGNED_ORDER, Frame
from ..heap.objectmodel import (
    FORWARDED_BIT,
    HEADER_WORDS,
    ObjectModel,
    TypeDescriptor,
)
from ..heap.space import AddressSpace


def frame_bounds_error(
    space: AddressSpace, frame: Frame, addr: int, size_words: int
) -> Optional[str]:
    """Shared used-prefix bounds check; ``None`` when the object fits."""
    offset_words = (addr - space.frame_base(frame)) // WORD_BYTES
    if offset_words + size_words > frame.used_words:
        return (
            f"object {addr:#x} ({size_words} words) overruns frame "
            f"{frame.index} used prefix ({frame.used_words} words)"
        )
    return None


@dataclass
class VerifyReport:
    """Summary of a successful verification pass."""

    objects: int
    words: int
    ref_slots: int

    @property
    def live_bytes(self) -> int:
        return self.words * WORD_BYTES


class HeapVerifier:
    """Breadth-first verification of everything reachable from the roots."""

    def __init__(self, space: AddressSpace, model: ObjectModel):
        self.space = space
        self.model = model

    def check_object(self, addr: int) -> int:
        """Validate a single object header; returns its size in words."""
        if addr % WORD_BYTES:
            raise HeapCorruption(f"object address {addr:#x} misaligned")
        if not self.space.is_mapped(addr):
            raise HeapCorruption(f"object address {addr:#x} unmapped")
        frame = self.space.frame_containing(addr)
        if frame.collect_order == UNASSIGNED_ORDER:
            raise HeapCorruption(
                f"object {addr:#x} lives in unstamped frame {frame.index}"
            )
        status = self.model.status(addr)
        if status & FORWARDED_BIT:
            raise HeapCorruption(
                f"object {addr:#x} is forwarded outside a collection"
            )
        size = self.model.size_words(addr)  # raises if the type is bogus
        error = frame_bounds_error(self.space, frame, addr, size)
        if error:
            raise HeapCorruption(error)
        return size

    def verify(self, roots: Iterable[int]) -> VerifyReport:
        """Walk the heap from ``roots``; raises :class:`HeapCorruption` on
        the first violated invariant, otherwise reports live totals."""
        visited: Set[int] = set()
        queue = []
        ref_slots = 0
        for root in roots:
            if root and root not in visited:
                visited.add(root)
                queue.append(root)
        words = 0
        model = self.model
        while queue:
            obj = queue.pop()
            words += self.check_object(obj)
            _, type_value, _, ref_values = model.scan_ref_slots(obj)
            ref_slots += 1 + len(ref_values)
            if type_value and type_value not in visited:
                visited.add(type_value)
                queue.append(type_value)
            for target in ref_values:
                if target == 0:
                    continue
                if target not in visited:
                    visited.add(target)
                    queue.append(target)
        return VerifyReport(objects=len(visited), words=words, ref_slots=ref_slots)


# ----------------------------------------------------------------------
# Counter-free access (sanitizer side)
# ----------------------------------------------------------------------
@dataclass
class ObjectView:
    """A decoded object, read without charging a single simulated load."""

    addr: int
    frame_index: int
    status: int
    type_addr: int
    desc: TypeDescriptor
    length: int
    refs: Tuple[int, ...]
    scalars: Tuple[int, ...]

    @property
    def forwarded(self) -> bool:
        return bool(self.status & FORWARDED_BIT)

    @property
    def size_words(self) -> int:
        return HEADER_WORDS + len(self.refs) + len(self.scalars)


class RawHeapReader:
    """Counter-free heap reads for the differential checker.

    Everything here goes straight to ``Frame.words`` storage: no
    ``load_count`` charge, no frame-cache fill, no RNG draw — a reader
    that cannot perturb the run it is checking.
    """

    def __init__(self, space: AddressSpace, model: ObjectModel):
        self.space = space
        self.model = model
        self._by_addr = model.types._by_addr

    # -- frames --------------------------------------------------------
    def frame_index(self, addr: int) -> int:
        return addr >> self.space.frame_shift

    def frame_of(self, addr: int) -> Optional[Frame]:
        index = addr >> self.space.frame_shift
        frames = self.space._frames
        if 0 <= index < len(frames):
            return frames[index]
        return None

    def order_of(self, addr: int) -> int:
        frame = self.frame_of(addr)
        return UNASSIGNED_ORDER if frame is None else frame.collect_order

    def is_boot(self, addr: int) -> bool:
        return self.order_of(addr) == BOOT_ORDER

    # -- words / objects ----------------------------------------------
    def word(self, addr: int) -> int:
        frame = self.frame_of(addr)
        if frame is None:
            raise HeapCorruption(f"raw read from unmapped address {addr:#x}")
        return frame.words[(addr >> 2) & self.space._word_mask]

    def check_object(self, addr: int) -> Optional[str]:
        """:meth:`HeapVerifier.check_object`'s counter-free twin; returns
        an error string instead of raising (``None`` = well formed)."""
        if addr % WORD_BYTES:
            return f"object address {addr:#x} misaligned"
        frame = self.frame_of(addr)
        if frame is None:
            return f"object address {addr:#x} unmapped"
        if frame.collect_order == UNASSIGNED_ORDER:
            return f"object {addr:#x} lives in unstamped frame {frame.index}"
        base = (addr >> 2) & self.space._word_mask
        words = frame.words
        status = words[base]
        if status & FORWARDED_BIT:
            return f"object {addr:#x} is forwarded outside a collection"
        desc = self._by_addr.get(words[base + 1])
        if desc is None:
            return (
                f"object {addr:#x} has bogus type word "
                f"{words[base + 1]:#x}"
            )
        size = desc.size_words(words[base + 2])
        return frame_bounds_error(self.space, frame, addr, size)

    def view(self, addr: int) -> ObjectView:
        """Decode the whole object; raises :class:`HeapCorruption` when the
        header is malformed (callers usually :meth:`check_object` first)."""
        frame = self.frame_of(addr)
        if frame is None:
            raise HeapCorruption(f"object address {addr:#x} unmapped")
        base = (addr >> 2) & self.space._word_mask
        words = frame.words
        type_addr = words[base + 1]
        desc = self._by_addr.get(type_addr)
        if desc is None:
            raise HeapCorruption(
                f"object {addr:#x} has bogus type word {type_addr:#x}"
            )
        length = words[base + 2]
        code = desc.ref_code
        nrefs = length if code < 0 else code
        code = desc.scalar_code
        nscalars = length if code < 0 else code
        first = base + HEADER_WORDS
        return ObjectView(
            addr=addr,
            frame_index=frame.index,
            status=words[base],
            type_addr=type_addr,
            desc=desc,
            length=length,
            refs=tuple(words[first:first + nrefs]),
            scalars=tuple(words[first + nrefs:first + nrefs + nscalars]),
        )

    def walk(self, roots: Iterable[int]) -> Tuple[List[int], Optional[str]]:
        """Reachable mutator-heap objects from ``roots`` (boot objects and
        type edges are not followed), in deterministic visit order.

        Returns ``(addresses, error)``; a structural error aborts the walk
        at the offending object.
        """
        visited: Set[int] = set()
        order: List[int] = []
        queue: List[int] = []
        for root in roots:
            if root and root not in visited:
                visited.add(root)
                queue.append(root)
        while queue:
            obj = queue.pop()
            error = self.check_object(obj)
            if error:
                return order, error
            order.append(obj)
            for target in self.view(obj).refs:
                if target and target not in visited and not self.is_boot(target):
                    visited.add(target)
                    queue.append(target)
        return order, None
