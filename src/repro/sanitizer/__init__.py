"""Shadow-graph differential checking and fault injection (DESIGN §11).

The sanitizer is the repo's root-cause safety net: a pure-Python *oracle*
of what the heap must contain (``shadow``), a differential checker that
compares the real heap against it at every collection boundary (``diff``),
a standalone invariant suite (``invariants``), and a deterministic
fault-injection layer whose every registered fault is provably detected
by one of the two (``faults``).  ``heapcheck`` hosts the heap verifier
(moved from ``repro.heap.verify``) plus the counter-free reader both
checkers are built on.

Only ``heapcheck`` is imported eagerly: ``repro.core`` and ``repro.gctk``
import it while *this* package must be importable from them, so the
attach/shadow/fault surface is resolved lazily (PEP 562).
"""

from .heapcheck import (
    HeapVerifier,
    ObjectView,
    RawHeapReader,
    VerifyReport,
    frame_bounds_error,
)

_LAZY = {
    "Sanitizer": ".attach",
    "attach_sanitizer": ".attach",
    "SanitizerReport": ".report",
    "SanitizerViolation": ".report",
    "Violation": ".report",
    "ShadowGraph": ".shadow",
    "ShadowNode": ".shadow",
    "DifferentialChecker": ".diff",
    "FAULT_KINDS": ".faults",
    "FaultInjector": ".faults",
    "FaultSpec": ".faults",
    "arm_faults": ".faults",
}

__all__ = [
    "HeapVerifier",
    "ObjectView",
    "RawHeapReader",
    "VerifyReport",
    "frame_bounds_error",
] + sorted(_LAZY)


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module, __name__), name)
