"""Sanitizer violations and the report that carries them.

A :class:`Violation` pins a broken invariant to a check name, an address
and a frame; a :class:`SanitizerReport` accumulates them along with how
much checking actually ran (so "zero violations" is distinguishable from
"never looked").  Reports serialise deterministically: two runs with the
same seed and the same fault spec produce byte-identical ``to_dict()``
output, which is what the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError


@dataclass(frozen=True)
class Violation:
    """One broken invariant, located as precisely as the check allows."""

    check: str  #: "diff", "remset-completeness", "forwarding", ...
    message: str
    addr: int = 0  #: offending object or slot address (0 = not applicable)
    frame: int = -1  #: frame index of ``addr`` (-1 = not applicable)
    collection: int = -1  #: collection sequence number when detected

    def to_dict(self) -> Dict:
        return {
            "check": self.check,
            "message": self.message,
            "addr": self.addr,
            "frame": self.frame,
            "collection": self.collection,
        }

    def __str__(self) -> str:
        where = f" @ {self.addr:#x} (frame {self.frame})" if self.addr else ""
        return f"[{self.check}]{where} {self.message}"


@dataclass
class SanitizerReport:
    """Everything a sanitized run learned, violations first."""

    violations: List[Violation] = field(default_factory=list)
    collections_checked: int = 0
    objects_compared: int = 0
    edges_compared: int = 0
    remset_edges_checked: int = 0
    faults_injected: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "collections_checked": self.collections_checked,
            "objects_compared": self.objects_compared,
            "edges_compared": self.edges_compared,
            "remset_edges_checked": self.remset_edges_checked,
            "faults_injected": list(self.faults_injected),
        }

    def summary(self) -> str:
        if self.ok:
            return (
                f"sanitizer OK: {self.collections_checked} collections "
                f"checked, {self.objects_compared} objects compared"
            )
        lines = [
            f"sanitizer FAILED: {len(self.violations)} violation(s) after "
            f"{self.collections_checked} checked collection(s)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class SanitizerViolation(ReproError):
    """Raised at the first violation so a corrupted heap never runs on.

    Carries the full :class:`SanitizerReport` accumulated so far.
    """

    def __init__(self, report: SanitizerReport, violation: Optional[Violation] = None):
        self.report = report
        self.violation = violation or (
            report.violations[0] if report.violations else None
        )
        super().__init__(str(self.violation) if self.violation else report.summary())
