"""The shadow object graph: a pure-Python oracle of what must be live.

The shadow mirrors every *mutator-visible* heap operation — allocation,
reference stores, scalar stores, root acquisition and release — as plain
Python objects holding plain Python references.  It is deliberately an
**oracle, not a model**: it records what the mutator did and lets Python's
own object graph define reachability; it knows nothing about belts,
frames, copying or remsets, and it never reads collector state.  Whatever
the collectors do to addresses, the shadow's answer to "which objects are
live, how do they point at each other, and what scalar payloads do they
hold" cannot drift — which is exactly what makes it a trustworthy side of
a differential check.

Addresses appear only as the ``by_addr`` index mapping the *current*
address of each object to its shadow node.  Collections move objects, so
the index is stale after every ``gc.end`` until the differential checker
re-derives it by walking real roots and shadow roots in lockstep
(:mod:`repro.sanitizer.diff`) — the remap *is* the check.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional, Tuple


class ShadowNode:
    """One allocated object: type, payload, and outgoing references."""

    __slots__ = ("serial", "type_name", "length", "refs", "scalars")

    def __init__(self, serial: int, type_name: str, length: int,
                 nrefs: int, nscalars: int):
        self.serial = serial  #: allocation order, for stable reporting
        self.type_name = type_name
        self.length = length
        self.refs: List[Optional["ShadowNode"]] = [None] * nrefs
        self.scalars: List[int] = [0] * nscalars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShadowNode #{self.serial} {self.type_name}[{self.length}]>"


class ShadowGraph:
    """The oracle: shadow nodes plus the current address index.

    All mutator hooks return an error string (``None`` = fine) instead of
    raising, so the :class:`~repro.sanitizer.attach.Sanitizer` owns the
    violation policy.
    """

    def __init__(self) -> None:
        self.by_addr: Dict[int, ShadowNode] = {}
        self._serial = count(1)
        self.allocations = 0
        #: table id -> (RootTable, {slot index -> node}); the live slots of
        #: these tables are the shadow's roots.
        self.tables: Dict[int, Tuple[object, Dict[int, ShadowNode]]] = {}

    # -- mutator events ------------------------------------------------
    def on_alloc(self, addr: int, desc, length: int) -> Optional[str]:
        if addr in self.by_addr:
            return (
                f"allocation returned address {addr:#x} already occupied "
                f"by shadow object #{self.by_addr[addr].serial}"
            )
        code = desc.ref_code
        nrefs = length if code < 0 else code
        code = desc.scalar_code
        nscalars = length if code < 0 else code
        self.by_addr[addr] = ShadowNode(
            next(self._serial), desc.name, length, nrefs, nscalars
        )
        self.allocations += 1
        return None

    def on_write_ref(self, obj: int, index: int, value: int) -> Optional[str]:
        node = self.by_addr.get(obj)
        if node is None:
            return f"reference store into unknown object {obj:#x}"
        if value:
            target = self.by_addr.get(value)
            if target is None:
                return f"reference store of unknown target {value:#x}"
        else:
            target = None
        if not 0 <= index < len(node.refs):
            return (
                f"reference store slot {index} out of range for shadow "
                f"object #{node.serial} ({node.type_name})"
            )
        node.refs[index] = target
        return None

    def on_write_int(self, obj: int, index: int, value: int) -> Optional[str]:
        node = self.by_addr.get(obj)
        if node is None:
            return f"scalar store into unknown object {obj:#x}"
        if not 0 <= index < len(node.scalars):
            return (
                f"scalar store slot {index} out of range for shadow "
                f"object #{node.serial} ({node.type_name})"
            )
        node.scalars[index] = value
        return None

    # -- roots ---------------------------------------------------------
    def on_acquire(self, table, slot: int, addr: int) -> Optional[str]:
        slots = self.tables.setdefault(id(table), (table, {}))[1]
        if addr:
            node = self.by_addr.get(addr)
            if node is None:
                return f"root acquired for unknown object {addr:#x}"
            slots[slot] = node
        else:
            slots.pop(slot, None)
        return None

    def on_release(self, table, slot: int) -> None:
        entry = self.tables.get(id(table))
        if entry is not None:
            entry[1].pop(slot, None)

    # -- checker support -----------------------------------------------
    def root_pairs(self):
        """Yield ``(table, real_slots, shadow_slots)`` per registered table."""
        for table, shadow_slots in self.tables.values():
            yield table, table.slots, shadow_slots

    def rebind(self, by_addr: Dict[int, ShadowNode]) -> None:
        """Adopt the post-collection address index derived by the checker.

        Only objects the checker reached stay indexed; unreached shadow
        nodes are unreachable in the oracle too, so no future mutator
        event can name them.
        """
        self.by_addr = by_addr
