"""Experiment harness: runners, per-figure experiments, and the CLI."""

from .experiments import (
    ALL_EXPERIMENTS,
    BASELINE,
    ExperimentResult,
    cached_sweep,
    clear_caches,
    min_heap,
)
from .runner import (
    FRAME_BYTES,
    RunOptions,
    RunReport,
    find_min_heap,
    run,
    run_benchmark,  # deprecated shim, kept importable for one cycle
    run_many,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "BASELINE",
    "ExperimentResult",
    "FRAME_BYTES",
    "RunOptions",
    "RunReport",
    "cached_sweep",
    "clear_caches",
    "find_min_heap",
    "min_heap",
    "run",
    "run_benchmark",
    "run_many",
]
