"""Experiment harness: runners, per-figure experiments, and the CLI."""

from .experiments import (
    ALL_EXPERIMENTS,
    BASELINE,
    ExperimentResult,
    cached_sweep,
    clear_caches,
    min_heap,
)
from .runner import FRAME_BYTES, find_min_heap, run_benchmark

__all__ = [
    "ALL_EXPERIMENTS",
    "BASELINE",
    "ExperimentResult",
    "FRAME_BYTES",
    "cached_sweep",
    "clear_caches",
    "find_min_heap",
    "min_heap",
    "run_benchmark",
]
