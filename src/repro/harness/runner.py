"""Run benchmarks against collectors; discover minimum heap sizes.

Every figure in the paper is built from :func:`run_benchmark` calls: one
(benchmark, collector, heap size) → RunStats.  Minimum heaps (Table 1 and
the x-axis normalisation of every plot) come from :func:`find_min_heap`,
a doubling-then-bisection search over heap sizes at frame granularity —
the same "smallest heap in which the program completes" definition the
paper uses (§4.1).

:func:`run_many` is the process-parallel fan-out behind the sweep layer:
each (benchmark, collector, heap size) run is completely independent (its
own VM, its own seeded PRNG), so farming the grid out to a
``ProcessPoolExecutor`` returns *bit-identical* ``RunStats`` to the serial
loop — same seeds, same cost-model cycles — just sooner.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bench.engine import SyntheticMutator
from ..bench.spec import get_spec
from ..errors import OutOfMemory, ReproError
from ..runtime.vm import EXPERIMENT_FRAME_SHIFT, VM
from ..sim.stats import RunStats

#: Frame size used by all experiments (bytes).
FRAME_BYTES = 1 << EXPERIMENT_FRAME_SHIFT

#: One grid cell: (benchmark, collector, heap_bytes, scale, seed).
RunJob = Tuple[str, str, int, float, int]


def run_benchmark(
    benchmark: str,
    collector: str,
    heap_bytes: int,
    scale: float = 1.0,
    seed: int = 13,
    debug_verify: bool = False,
) -> RunStats:
    """One complete run; OutOfMemory is reported, not raised."""
    spec = get_spec(benchmark, scale)
    vm = VM(
        heap_bytes,
        collector=collector,
        locality=spec.locality,
        debug_verify=debug_verify,
        benchmark_name=spec.name,
    )
    engine = SyntheticMutator(vm, spec, seed=seed)
    try:
        return engine.run()
    except OutOfMemory as error:
        return vm.finish(completed=False, failure=str(error))


def run_benchmark_profiled(
    benchmark: str,
    collector: str,
    heap_bytes: int,
    scale: float = 1.0,
    seed: int = 13,
    debug_verify: bool = False,
) -> Tuple[RunStats, Dict[str, float]]:
    """:func:`run_benchmark` plus a wall-time phase breakdown.

    Returns ``(stats, phases)`` where ``phases`` maps ``mutator`` /
    ``barrier`` / ``collect`` / ``verify`` / ``total`` to seconds of host
    wall time.  The barrier and collector phases are measured by wrapping
    the plan's compiled store path and ``collect`` entry point; mutator
    time is the remainder.  Wrapping adds per-store timer overhead, so
    the *absolute* numbers run slower than an unprofiled run — the split
    is what this is for (finding where a configuration spends its time).
    """
    spec = get_spec(benchmark, scale)
    vm = VM(
        heap_bytes,
        collector=collector,
        locality=spec.locality,
        debug_verify=debug_verify,
        benchmark_name=spec.name,
    )
    phases = {"mutator": 0.0, "barrier": 0.0, "collect": 0.0, "verify": 0.0}
    perf = time.perf_counter

    inner_write = vm._write_ref_field

    def timed_write(obj: int, index: int, value: int) -> None:
        t0 = perf()
        try:
            inner_write(obj, index, value)
        finally:
            phases["barrier"] += perf() - t0

    vm._write_ref_field = timed_write

    plan = vm.plan
    # Collections enter through plan.collect (Beltway, semispace) or the
    # minor/major entry points the Appel allocation path calls directly;
    # a depth guard keeps delegation (collect -> minor_collect) from
    # double-counting.
    depth = [0]

    def _timed_entry(inner):
        def timed(*args, **kwargs):
            if depth[0]:
                return inner(*args, **kwargs)
            depth[0] = 1
            t0 = perf()
            try:
                return inner(*args, **kwargs)
            finally:
                depth[0] = 0
                phases["collect"] += perf() - t0

        return timed

    for entry in ("collect", "minor_collect", "major_collect"):
        inner = getattr(plan, entry, None)
        if inner is not None:
            setattr(plan, entry, _timed_entry(inner))

    inner_verify = plan.verify

    def timed_verify(*args, **kwargs):
        t0 = perf()
        try:
            return inner_verify(*args, **kwargs)
        finally:
            phases["verify"] += perf() - t0

    plan.verify = timed_verify

    engine = SyntheticMutator(vm, spec, seed=seed)
    t0 = perf()
    try:
        stats = engine.run()
    except OutOfMemory as error:
        stats = vm.finish(completed=False, failure=str(error))
    total = perf() - t0
    # verify() runs both standalone (debug) and from inside collect();
    # subtract only the non-collect phases from the mutator remainder.
    phases["total"] = total
    phases["mutator"] = max(
        0.0, total - phases["barrier"] - phases["collect"]
    )
    return stats, phases


def _run_job(job: RunJob) -> RunStats:
    """Execute one grid cell (module-level so it pickles for worker pools)."""
    benchmark, collector, heap_bytes, scale, seed = job
    return run_benchmark(benchmark, collector, heap_bytes, scale=scale, seed=seed)


def run_many(
    jobs: Iterable[RunJob],
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[RunStats]:
    """Run a batch of independent grid cells, in input order.

    With ``parallel=True`` the jobs fan out over a
    ``ProcessPoolExecutor``; ``parallel=False`` is the escape hatch that
    runs the identical code in-process (useful under debuggers, on
    platforms without ``fork``/``spawn`` headroom, or to rule the pool out
    when bisecting a bug).  Both paths return bit-identical results:
    every run re-derives its whole world from ``(benchmark, collector,
    heap_bytes, scale, seed)``.
    """
    jobs = list(jobs)
    if not parallel or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    # Imported lazily: worker processes re-importing this module must not
    # pay for (or recursively trigger) executor machinery.
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        chunksize = max(1, len(jobs) // (4 * (pool._max_workers or 1)))
        return list(pool.map(_run_job, jobs, chunksize=chunksize))


def find_min_heap(
    benchmark: str,
    collector: str,
    scale: float = 1.0,
    seed: int = 13,
    start_bytes: Optional[int] = None,
    max_bytes: int = 4 * 1024 * 1024,
) -> int:
    """Smallest heap (bytes, frame granularity) where the run completes."""
    spec = get_spec(benchmark, scale)
    lo = start_bytes or max(4 * FRAME_BYTES, spec.total_alloc_bytes // 64)
    lo = _round_frames(lo)

    def completes(heap_bytes: int) -> bool:
        return run_benchmark(
            benchmark, collector, heap_bytes, scale=scale, seed=seed
        ).completed

    # Phase 1: double until success.
    hi = lo
    while not completes(hi):
        hi *= 2
        if hi > max_bytes:
            raise OutOfMemory(
                f"{benchmark}/{collector}: no heap up to {max_bytes} bytes works"
            )
    if hi == lo:
        # Walk down: lo may already be above the minimum.
        while lo > 2 * FRAME_BYTES and completes(lo - FRAME_BYTES):
            lo -= FRAME_BYTES
        return lo
    # Phase 2: bisect (lo fails, hi works) to frame granularity.
    lo = hi // 2
    while hi - lo > FRAME_BYTES:
        mid = _round_frames((lo + hi) // 2)
        if mid in (lo, hi):
            break
        if completes(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _round_frames(nbytes: int) -> int:
    return max(2 * FRAME_BYTES, (nbytes // FRAME_BYTES) * FRAME_BYTES)
