"""Run benchmarks against collectors; discover minimum heap sizes.

Every figure in the paper is built from :func:`run` calls: one
(benchmark, collector, heap size) → :class:`RunReport`.  Minimum heaps
(Table 1 and the x-axis normalisation of every plot) come from
:func:`find_min_heap`, a doubling-then-bisection search over heap sizes
at frame granularity — the same "smallest heap in which the program
completes" definition the paper uses (§4.1).

:func:`run` is the single entry point for executing a run; telemetry
(tracing, profiling, counter export) is selected through
:class:`RunOptions` rather than through parallel ``run_*`` variants.
When no telemetry is requested the VM executes with **no instrumentation
attached at all** — the golden-counter tests pin that path bit-identical
to the pre-telemetry harness.  The old :func:`run_benchmark` /
:func:`run_benchmark_profiled` names remain as deprecated shims.

:func:`run_many` is the process-parallel fan-out behind the sweep layer:
each (benchmark, collector, heap size) run is completely independent (its
own VM, its own seeded PRNG), so farming the grid out over worker
processes returns *bit-identical* ``RunStats`` to the serial loop — same
seeds, same cost-model cycles — just sooner.  Dispatch lives in
:mod:`repro.grid.executor` (as-completed scheduling, cost ordering,
per-cell retry) and results can be served from / checkpointed into a
:class:`repro.grid.store.ResultStore` via the ``store`` argument.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..bench.engine import SyntheticMutator
from ..core.config import BeltwayConfig
from ..errors import ConfigError, OutOfMemory
from ..obs import CounterSink, JsonlSink, RingBufferSink, TelemetryBus, attach
from ..runtime.vm import EXPERIMENT_FRAME_SHIFT, VM
from ..sim.stats import RunStats
from ..specs import SpecRef, load as load_spec
from ..workloads.engine import ServerMutator
from ..workloads.model import ServerWorkloadSpec

#: Frame size used by all experiments (bytes).
FRAME_BYTES = 1 << EXPERIMENT_FRAME_SHIFT

#: One grid cell: (benchmark ref, collector, heap_bytes, scale, seed).
#: The first element is any spec ref ``repro.specs.load`` resolves —
#: a registry name, a workload-file path, or a spec object.
RunJob = Tuple[SpecRef, str, int, float, int]


@dataclass(frozen=True)
class RunOptions:
    """Everything about *how* to execute a run (the *what* — benchmark,
    collector, heap — stays positional on :func:`run`).

    Telemetry is attached to the VM only if at least one of ``profile``,
    ``trace``, ``ring_buffer``, ``counters`` or ``sinks`` asks for it;
    otherwise the run is instrumentation-free and bit-identical to the
    pre-telemetry harness.
    """

    #: Workload length multiplier (1.0 = the scaled paper workload).
    scale: float = 1.0
    #: Benchmark PRNG seed; runs are fully determined by it.
    seed: int = 13
    #: Run the heap verifier after every collection (slow; debugging).
    verify: bool = False
    #: ``False`` (default): no profiling.  ``True``: legacy host
    #: wall-time phase breakdown only (wraps the store path — adds
    #: per-store overhead, so only the *split* is meaningful).  ``"full"``
    #: or a :class:`~repro.obs.profiler.ProfileOptions`: additionally
    #: attach the GC profiler (lifetime demographics, streaming pause
    #: analytics, heap-geometry timeline, cost attribution) and fill
    #: ``RunReport.profile`` with its :class:`ProfileReport`.
    profile: Union[bool, str, object] = False
    #: Write telemetry events as JSON lines to this path or text stream.
    trace: Optional[object] = None
    #: Emit a ``heap.snapshot`` event after every Nth collection
    #: (0 disables periodic snapshots).  Only used when telemetry is on.
    snapshot_every: int = 1
    #: Keep the last N events in memory (0 = unbounded); ``None`` disables
    #: the ring buffer.  Events land in ``RunReport.events``.
    ring_buffer: Optional[int] = None
    #: Fold events into a Prometheus-style counter snapshot
    #: (``RunReport.counters``).
    counters: bool = False
    #: Extra telemetry sinks (anything with ``accept(event)``) to
    #: subscribe for the duration of the run.  Not closed by the harness.
    sinks: Tuple = ()
    #: Attach the sanitizer (shadow graph + differential checker +
    #: invariant suite, ``repro.sanitizer``) for the whole run.  The
    #: first violation fails the run; the report lands in
    #: ``RunReport.sanitizer``.
    sanitize: bool = False
    #: Fault specs (:class:`~repro.sanitizer.faults.FaultSpec`) to arm
    #: before the run — deterministic collector sabotage for checker
    #: validation.  Implies nothing by itself; combine with ``sanitize``.
    faults: Tuple = ()


@dataclass
class RunReport:
    """Outcome of one :func:`run`: the stats plus whatever telemetry the
    options requested (``None`` for artefacts that were not enabled)."""

    stats: RunStats
    #: Host wall seconds per phase (``profile=True``), else ``None``.
    phases: Optional[Dict[str, float]] = None
    #: Prometheus-style name → value snapshot (``counters=True``).
    counters: Optional[Dict[str, float]] = None
    #: Ring-buffered :class:`~repro.obs.events.Event` list
    #: (``ring_buffer`` set).
    events: Optional[List] = None
    #: Lines written to the ``trace`` JSONL sink (0 when not tracing).
    trace_events_written: int = 0
    #: :class:`~repro.sanitizer.report.SanitizerReport` when
    #: ``options.sanitize`` was set, else ``None``.
    sanitizer: Optional[object] = None
    #: :class:`~repro.obs.profiler.ProfileReport` when ``options.profile``
    #: requested the full profiler (``"full"`` / ProfileOptions), else
    #: ``None``.
    profile: Optional[object] = None

    @property
    def completed(self) -> bool:
        return self.stats.completed

    @property
    def requests(self):
        """Request-latency results
        (:class:`~repro.workloads.latency.RequestStats`) for server
        workloads; ``None`` for the closed-loop SPEC replays."""
        return self.stats.requests


def _wants_telemetry(options: RunOptions) -> bool:
    return bool(
        options.profile
        or options.trace is not None
        or options.ring_buffer is not None
        or options.counters
        or options.sinks
    )


def _profile_options(options: RunOptions):
    """Coerce ``RunOptions.profile`` into a ProfileOptions-or-None.

    ``False`` and ``True`` keep their legacy meanings (no profiler;
    ``True`` still measures the host wall-time phase split).  ``"full"``
    means profiler defaults; a :class:`~repro.obs.profiler.ProfileOptions`
    instance is used as-is.  Anything else is a :class:`ConfigError`.
    """
    value = options.profile
    if value is False or value is True:
        return None
    # Imported lazily so the plain path never touches the profiler.
    from ..obs.profiler import ProfileOptions

    if value == "full":
        return ProfileOptions()
    if isinstance(value, ProfileOptions):
        return value
    raise ConfigError(
        f"RunOptions.profile must be False, True, 'full' or a "
        f"ProfileOptions, got {value!r}"
    )


def run(
    spec: SpecRef,
    plan: Union[str, BeltwayConfig],
    heap_bytes: int,
    *,
    options: Optional[RunOptions] = None,
) -> RunReport:
    """One complete run; OutOfMemory is reported, not raised.

    ``spec`` is any ref :func:`repro.specs.load` resolves — a benchmark
    name (``"jess"``), a declarative workload file (``"shop.yaml"``), or
    a spec object; ``plan`` a collector spec (``"25.25.100"``,
    ``"gctk:Appel"``, or a parsed
    :class:`~repro.core.config.BeltwayConfig`).  ``options`` selects
    scale/seed and any telemetry; with the defaults the run is
    instrumentation-free and ``RunReport.stats`` is all that is filled.
    Server workloads additionally fill ``RunReport.requests`` with
    request-latency percentiles.
    """
    options = options or RunOptions()
    profile_opts = _profile_options(options)  # validate before building a VM
    bench = load_spec(spec, options.scale)
    vm = VM(
        heap_bytes,
        collector=plan,
        locality=bench.locality,
        debug_verify=options.verify,
        benchmark_name=bench.name,
    )
    sanitizer = None
    injector = None
    if options.faults:
        # Imported lazily so the plain path never touches the sanitizer.
        from ..sanitizer.faults import arm_faults

        injector = arm_faults(vm, options.faults)
    if options.sanitize:
        from ..sanitizer import attach_sanitizer

        sanitizer = attach_sanitizer(vm)
    # The sanitizer (and any faults) must be in place before the engine
    # builds its MutatorContext — bound-method caches freeze the paths in.
    if isinstance(bench, ServerWorkloadSpec):
        engine = ServerMutator(vm, bench, seed=options.seed)
    else:
        engine = SyntheticMutator(vm, bench, seed=options.seed)

    if not _wants_telemetry(options):
        stats = _execute(engine, vm, sanitizer)
        return RunReport(
            stats=stats,
            sanitizer=_sanitizer_report(sanitizer, injector),
        )

    bus = TelemetryBus()
    jsonl = ring = counter_sink = None
    if options.trace is not None:
        jsonl = bus.subscribe(JsonlSink(options.trace))
    if options.ring_buffer is not None:
        ring = bus.subscribe(
            RingBufferSink(capacity=options.ring_buffer or None)
        )
    if options.counters:
        counter_sink = bus.subscribe(CounterSink())
    for sink in options.sinks:
        bus.subscribe(sink)
    inst = attach(
        vm, bus,
        snapshot_every=options.snapshot_every,
        profile=bool(options.profile),
    )
    if isinstance(engine, ServerMutator):
        # The engine reads ``bus`` at emit time, so handing it over after
        # attach() keeps the construction-order contract above intact.
        engine.bus = bus
    profiler = None
    if profile_opts is not None:
        from ..obs.profiler import Profiler

        # Shares the harness bus (one instrumentation feeds every sink);
        # attached before run.start so the profiler sees the identity.
        profiler = Profiler(vm, options=profile_opts, bus=bus)
    inst.begin(scale=options.scale, seed=options.seed)
    t0 = time.perf_counter()
    stats = _execute(engine, vm, sanitizer)
    phases = inst.end(stats, total_wall_s=time.perf_counter() - t0)
    profile_report = (
        profiler.finalise(stats) if profiler is not None else None
    )
    if jsonl is not None:
        jsonl.close()
    return RunReport(
        stats=stats,
        phases=phases if options.profile else None,
        counters=counter_sink.snapshot() if counter_sink is not None else None,
        events=list(ring.events) if ring is not None else None,
        trace_events_written=jsonl.count if jsonl is not None else 0,
        sanitizer=_sanitizer_report(sanitizer, injector),
        profile=profile_report,
    )


def _sanitizer_report(sanitizer, injector):
    """The run's SanitizerReport (None without ``sanitize``), with any
    fault firings folded in so the report names what was sabotaged."""
    if sanitizer is None:
        return None
    report = sanitizer.report
    if injector is not None:
        report.faults_injected.extend(injector.events)
    return report


def _execute(engine, vm, sanitizer) -> RunStats:
    """Run the mutator; fold OOM and sanitizer violations into the stats."""
    try:
        stats = engine.run()
        if sanitizer is not None:
            sanitizer.check_now()
        return stats
    except OutOfMemory as error:
        return _abort_stats(engine, vm, failure=str(error))
    except _sanitizer_violation() as error:
        return _abort_stats(engine, vm, failure=f"sanitizer: {error}")


def _abort_stats(engine, vm, failure: str) -> RunStats:
    """Failed-run stats; server engines still report partial latencies."""
    stats = vm.finish(completed=False, failure=failure)
    if isinstance(engine, ServerMutator):
        stats.requests = engine.request_stats()
    return stats


def _sanitizer_violation():
    """The sanitizer's exception type, imported only when it can occur."""
    from ..sanitizer.report import SanitizerViolation

    return SanitizerViolation


# ----------------------------------------------------------------------
# Deprecated pre-RunOptions entry points
# ----------------------------------------------------------------------
def run_benchmark(
    benchmark: str,
    collector: str,
    heap_bytes: int,
    scale: float = 1.0,
    seed: int = 13,
    debug_verify: bool = False,
) -> RunStats:
    """Deprecated: use :func:`run` (returns a :class:`RunReport`)."""
    warnings.warn(
        "run_benchmark() is deprecated; use "
        "run(spec, plan, heap_bytes, options=RunOptions(...)).stats",
        DeprecationWarning,
        stacklevel=2,
    )
    options = RunOptions(scale=scale, seed=seed, verify=debug_verify)
    return run(benchmark, collector, heap_bytes, options=options).stats


def run_benchmark_profiled(
    benchmark: str,
    collector: str,
    heap_bytes: int,
    scale: float = 1.0,
    seed: int = 13,
    debug_verify: bool = False,
) -> Tuple[RunStats, Dict[str, float]]:
    """Deprecated: use :func:`run` with ``RunOptions(profile=True)``."""
    warnings.warn(
        "run_benchmark_profiled() is deprecated; use "
        "run(spec, plan, heap_bytes, options=RunOptions(profile=True))",
        DeprecationWarning,
        stacklevel=2,
    )
    options = RunOptions(
        scale=scale, seed=seed, verify=debug_verify, profile=True
    )
    report = run(benchmark, collector, heap_bytes, options=options)
    return report.stats, report.phases


def _run_job(job: RunJob) -> RunStats:
    """Execute one grid cell (module-level so it pickles for worker pools)."""
    benchmark, collector, heap_bytes, scale, seed = job
    options = RunOptions(scale=scale, seed=seed)
    return run(benchmark, collector, heap_bytes, options=options).stats


def effective_workers(max_workers: Optional[int] = None) -> int:
    """Worker processes a parallel batch would actually get.

    Prefers ``os.process_cpu_count`` (3.13+: honours affinity masks and
    cgroup quotas, i.e. what containerised CI actually grants) and falls
    back to ``os.cpu_count`` on older interpreters.
    """
    cpus = getattr(os, "process_cpu_count", os.cpu_count)() or 1
    if max_workers is not None:
        cpus = min(cpus, max_workers)
    return max(1, cpus)


def should_parallelise(
    num_jobs: int,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> bool:
    """Whether a batch of ``num_jobs`` independent cells should fan out.

    Serial when the caller opted out, when there is at most one job, or
    when only one CPU is effectively available: a process pool on one
    core pays fork + pickle + re-import per worker and can repay none of
    it, so "parallel" sweeps on single-CPU runners measured *slower* than
    the serial loop.  Results are bit-identical either way, so the
    fallback is purely a scheduling decision; callers that need to know
    which path ran record it (``SweepResult.execution_mode``).
    """
    return parallel and num_jobs > 1 and effective_workers(max_workers) > 1


def run_many(
    jobs: Iterable[RunJob],
    parallel: Optional[bool] = True,
    max_workers: Optional[int] = None,
    store=None,
    bus=None,
) -> List[RunStats]:
    """Run a batch of independent grid cells, in input order.

    With ``parallel=True`` (or ``None``) the jobs fan out over worker
    processes — unless :func:`should_parallelise` vetoes it (one job, or
    one effective CPU), in which case the batch silently runs in-process.
    ``parallel=False`` is the explicit escape hatch (useful under
    debuggers, on platforms without ``fork``/``spawn`` headroom, or to
    rule the pool out when bisecting a bug).  All paths return
    bit-identical results: every run re-derives its whole world from
    ``(benchmark, collector, heap_bytes, scale, seed)``.

    Dispatch is :func:`repro.grid.executor.execute_jobs`: as-completed
    scheduling with cost-model ordering and per-cell crash retry, and —
    with a :class:`~repro.grid.store.ResultStore` as ``store`` — cells
    already computed by *any* previous process are served from disk while
    fresh results are checkpointed as they finish.

    With a telemetry ``bus``, campaign progress (``grid.job``) and every
    worker's forwarded run telemetry land on it — one merged timeline
    even on the multiprocess path (see :mod:`repro.obs.relay`).
    """
    # Imported lazily: worker processes re-importing this module must not
    # pay for (or recursively trigger) executor machinery.
    from ..grid.executor import execute_jobs

    return execute_jobs(
        list(jobs), store=store, parallel=parallel, max_workers=max_workers,
        bus=bus,
    ).results


def find_min_heap(
    benchmark: str,
    collector: str,
    scale: float = 1.0,
    seed: int = 13,
    start_bytes: Optional[int] = None,
    max_bytes: int = 4 * 1024 * 1024,
    store=None,
    bus=None,
) -> int:
    """Smallest heap (bytes, frame granularity) where the run completes.

    The doubling/bisection state machine lives in
    :mod:`repro.grid.minsearch`; this is the single-target convenience.
    Batch many searches with :func:`repro.grid.find_min_heaps` so their
    probes fan out together, and pass a store to make replays free.
    The walk below an already-completing start guess bisects downward
    (O(log n) probes) instead of stepping one frame per full run; the
    returned minimum is unchanged.
    """
    from ..grid.minsearch import find_min_heaps

    return find_min_heaps(
        [(benchmark, collector)],
        scale=scale,
        seed=seed,
        start_bytes=start_bytes,
        max_bytes=max_bytes,
        store=store,
        bus=bus,
        parallel=False,  # a single search is sequential by nature
    )[(benchmark, collector)]
