"""``beltway-bench``: command-line access to every reproduced experiment.

Examples
--------
::

    beltway-bench list
    beltway-bench run --benchmark jess --collector 25.25.100 --heap-kb 24
    beltway-bench minheap --benchmark javac --collector gctk:Appel
    beltway-bench experiment figure9 --points 9
    beltway-bench all --points 7
    beltway-bench experiment figure9 --full        # the paper's 33 points
    beltway-bench profile --benchmark jess --heap-kb 48 --output jess.md

Exit codes (consistent across subcommands): ``0`` success; ``1``
failure — a run that did not complete, a sanitizer violation, a failed
shape check, or an output artefact that could not be written; ``2``
usage errors (argparse).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import List, Optional

from ..bench.spec import BENCHMARK_NAMES, KB
from ..core.config import EXTENSION_CONFIGS, PAPER_CONFIGS
from ..errors import ConfigError
from ..kernels import TIER_ENV
from .experiments import ALL_EXPERIMENTS
from .runner import RunOptions, find_min_heap, run

#: --benchmark help once the argument stopped being a closed choice list.
_REF_HELP = (
    "benchmark name (" + ", ".join(BENCHMARK_NAMES) + ") or a declarative "
    "workload file (*.json / *.yaml)"
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0, help="workload length multiplier")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--tier", choices=("python", "numpy", "cffi", "auto"), default=None,
        help="substrate-kernel tier for every VM this command builds "
        "(default: the " + TIER_ENV + " environment variable, else auto; "
        "results are bit-identical across tiers)",
    )


def _add_grid(parser: argparse.ArgumentParser) -> None:
    """Grid-campaign flags for the commands that execute cell batches."""
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed result store: previously computed cells "
        "are served from here and fresh ones checkpointed as they finish",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="ignore --store and recompute every cell",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from --store (only the "
        "missing cells execute; requires --store)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="cap the worker processes of parallel batches",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream telemetry as JSON lines: campaign progress "
        "(grid.job), relayed worker run events, and cached-cell replays "
        "— one merged timeline (convert with 'beltway-bench trace')",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="beltway-bench",
        description="Beltway (PLDI 2002) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks, collectors, experiments")

    p_run = sub.add_parser("run", help="one benchmark/collector/heap run")
    p_run.add_argument("--benchmark", required=True, metavar="REF", help=_REF_HELP)
    p_run.add_argument("--collector", default="25.25.100")
    p_run.add_argument("--heap-kb", type=float, required=True)
    p_run.add_argument(
        "--profile", action="store_true",
        help="print a per-phase wall-time breakdown (mutator/barrier/collect/verify)",
    )
    p_run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream telemetry events (gc, heap snapshots, phases) as JSON lines",
    )
    p_run.add_argument(
        "--snapshot-every", type=int, default=1, metavar="N",
        help="with --trace: heap snapshot every N collections (0 disables)",
    )
    _add_common(p_run)

    p_check = sub.add_parser(
        "check",
        help="run benchmarks under the sanitizer (shadow graph + "
        "differential checker + invariant suite)",
    )
    p_check.add_argument(
        "--benchmark", action="append", default=None, metavar="REF",
        help="workload to check — " + _REF_HELP +
        " (repeatable; default: all six benchmarks)",
    )
    p_check.add_argument("--collector", default="25.25.100")
    p_check.add_argument(
        "--heap-kb", type=float, default=96.0,
        help="heap size per run (default 96)",
    )
    p_check.add_argument(
        "--fault", action="append", default=None, metavar="KIND[@NTH]",
        help="arm a deterministic fault before the run (e.g. "
        "barrier.drop-entry@3); repeatable",
    )
    _add_common(p_check)

    p_prof = sub.add_parser(
        "profile",
        help="profile one run (lifetime demographics, pause analytics, "
        "heap geometry, cost attribution) and write the report",
    )
    p_prof.add_argument("--benchmark", required=True, metavar="REF", help=_REF_HELP)
    p_prof.add_argument("--collector", default="25.25.100")
    p_prof.add_argument("--heap-kb", type=float, required=True)
    p_prof.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the markdown report here (default: stdout)",
    )
    p_prof.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="also write the full ProfileReport as JSON",
    )
    p_prof.add_argument(
        "--snapshot-every", type=int, default=1, metavar="N",
        help="heap-geometry sample every N collections (0: boundaries only)",
    )
    _add_common(p_prof)

    p_min = sub.add_parser("minheap", help="find the minimum heap size")
    p_min.add_argument("--benchmark", required=True, metavar="REF", help=_REF_HELP)
    p_min.add_argument("--collector", default="gctk:Appel")
    _add_common(p_min)
    _add_grid(p_min)

    p_srv = sub.add_parser(
        "serve",
        help="run a request-driven server workload from a declarative "
        "spec file and report request-latency percentiles",
    )
    p_srv.add_argument(
        "spec",
        help="server workload spec: a *.json / *.yaml file "
        "(see examples/workloads/)",
    )
    p_srv.add_argument("--collector", default="25.25.100")
    p_srv.add_argument(
        "--heap-kb", type=float, default=None,
        help="heap size (required unless --validate)",
    )
    p_srv.add_argument(
        "--rate", default=None, metavar="RPS[,RPS...]",
        help="override the spec's arrival rate (requests per second); a "
        "comma-separated ladder runs the workload once per rate",
    )
    p_srv.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="override the spec's observation window (simulated seconds)",
    )
    p_srv.add_argument(
        "--validate", action="store_true",
        help="validate the spec file and exit without running",
    )
    _add_common(p_srv)
    _add_grid(p_srv)

    p_slo = sub.add_parser(
        "slo",
        help="SLO-driven evaluation of a server workload: throughput-"
        "latency frontier (--rates) or max-sustainable-rate search "
        "(--search)",
    )
    p_slo.add_argument(
        "spec",
        help="server workload spec: a *.json / *.yaml file "
        "(see examples/workloads/)",
    )
    p_slo.add_argument(
        "--collector", action="append", default=None, metavar="NAME",
        help="collector to evaluate (repeatable; default 25.25.100)",
    )
    p_slo.add_argument(
        "--heap-kb", type=float, required=True,
        help="heap size of the measured operating point",
    )
    p_slo.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="frontier mode: comma-separated ladder of offered rates (rps)",
    )
    p_slo.add_argument(
        "--no-distill", action="store_true",
        help="frontier mode: skip the no-GC reference cells (no distilled "
        "GC cost columns)",
    )
    p_slo.add_argument(
        "--mmu-window", type=float, default=0.01, metavar="FRAC",
        help="MMU window as a fraction of the run (default 0.01)",
    )
    p_slo.add_argument(
        "--search", action="store_true",
        help="search mode: find the max sustainable rate under the "
        "declared SLO bounds",
    )
    p_slo.add_argument(
        "--slo-p50-ms", type=float, default=None, metavar="MS",
        help="SLO bound: p50 request latency (milliseconds)",
    )
    p_slo.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="SLO bound: p99 request latency (milliseconds)",
    )
    p_slo.add_argument(
        "--slo-p999-ms", type=float, default=None, metavar="MS",
        help="SLO bound: p99.9 request latency (milliseconds)",
    )
    p_slo.add_argument(
        "--slo-mmu", type=float, default=None, metavar="FRAC",
        help="SLO bound: minimum mutator utilisation at --mmu-window",
    )
    p_slo.add_argument(
        "--rate-step", type=int, default=100, metavar="RPS",
        help="search mode: rate lattice granularity (default 100)",
    )
    p_slo.add_argument(
        "--max-rate", type=int, default=None, metavar="RPS",
        help="search mode: ceiling of the searched range "
        "(default: 16x the start rate)",
    )
    p_slo.add_argument(
        "--start-rate", type=int, default=None, metavar="RPS",
        help="search mode: first probe (default: the spec's arrival rate)",
    )
    p_slo.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="also write the frontier/search data as JSON",
    )
    p_slo.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the rendered tables here (default: stdout)",
    )
    _add_common(p_slo)
    _add_grid(p_slo)

    p_exp = sub.add_parser("experiment", help="reproduce one table/figure")
    p_exp.add_argument("name", choices=sorted(ALL_EXPERIMENTS))
    p_exp.add_argument("--points", type=int, default=9, help="heap grid points")
    p_exp.add_argument("--full", action="store_true", help="use the paper's 33-point grid")
    _add_common(p_exp)
    _add_grid(p_exp)

    p_all = sub.add_parser("all", help="reproduce every table and figure")
    p_all.add_argument("--points", type=int, default=9)
    p_all.add_argument("--full", action="store_true")
    _add_common(p_all)
    _add_grid(p_all)

    p_tr = sub.add_parser(
        "trace",
        help="convert a --trace JSONL artefact to Chrome trace-event / "
        "Perfetto JSON (opens in ui.perfetto.dev)",
    )
    p_tr.add_argument(
        "artefact", help="telemetry JSONL file written by --trace"
    )
    p_tr.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="output path (default: <artefact stem>.perfetto.json)",
    )

    p_cmp = sub.add_parser(
        "compare",
        help="diff two artefacts (trace JSONL or 'slo --json' documents): "
        "counters, pause percentiles, MMU, request latencies, knees",
    )
    p_cmp.add_argument("baseline", help="artefact A (the baseline)")
    p_cmp.add_argument("candidate", help="artefact B (the candidate)")
    p_cmp.add_argument(
        "--threshold", type=float, default=5.0, metavar="PCT",
        help="relative regression threshold in percent (default 5)",
    )
    p_cmp.add_argument(
        "--metric-threshold", action="append", default=None,
        metavar="NAME=PCT", dest="metric_thresholds",
        help="per-metric threshold override (leaf or full metric name; "
        "repeatable)",
    )
    p_cmp.add_argument(
        "--verbose", action="store_true",
        help="also list unchanged-but-differing direction-free metrics",
    )

    p_rep = sub.add_parser("report", help="write a full markdown report")
    p_rep.add_argument("--output", default="beltway-report.md")
    p_rep.add_argument("--points", type=int, default=9)
    p_rep.add_argument("--full", action="store_true")
    p_rep.add_argument(
        "--only", nargs="*", choices=sorted(ALL_EXPERIMENTS), default=None,
        help="restrict to these experiments",
    )
    _add_common(p_rep)
    _add_grid(p_rep)
    return parser


def _open_store(parser: argparse.ArgumentParser, args, bus=None):
    """Resolve the grid flags of one invocation to a ResultStore (or None)
    and point the experiment layer at it (and at the campaign bus)."""
    if not hasattr(args, "store"):
        return None
    if args.resume and not args.store:
        parser.error("--resume requires --store (there is nothing to resume from)")
    store = None
    if args.store and not args.no_store:
        from ..grid.store import ResultStore

        store = ResultStore(args.store)
    from . import experiments

    experiments.configure_grid(store=store, max_workers=args.workers, bus=bus)
    return store


def _campaign_bus(args):
    """The ``--trace`` campaign telemetry: a bus streaming to JSONL.

    Returns ``(bus, close)`` — ``bus`` is ``None`` without ``--trace``;
    ``close()`` flushes the sink and prints the trace summary line,
    including the relay's drop count when any worker events were lost
    (drops are never silent, see :mod:`repro.obs.relay`).
    """
    if not getattr(args, "trace", None):
        return None, lambda: None
    from ..obs import JsonlSink, TelemetryBus
    from ..obs.relay import DropTally

    bus = TelemetryBus()
    sink = bus.subscribe(JsonlSink(args.trace))
    tally = bus.subscribe(DropTally())

    def close() -> None:
        count = sink.count
        bus.close()
        line = f"trace: {count} events -> {args.trace}"
        if tally.dropped:
            line += (
                f" ({tally.dropped} worker events dropped at the "
                f"forwarding buffer)"
            )
        print(line)

    return bus, close


def _finish_grid(store, code: int, close_trace=None) -> int:
    """Close the trace and the store, print the campaign summary, pass
    the exit code on."""
    from . import experiments

    # The grid config is process-wide; a later in-process caller must
    # not inherit this command's (now closed) trace bus or store.
    experiments.configure_grid()
    if close_trace is not None:
        close_trace()
    if store is not None:
        store.close()
        summary = f"grid: {store.hits} cached, {store.puts} executed"
        if store.corrupt_entries:
            summary += f", {store.corrupt_entries} corrupt entries recomputed"
        print(summary)
    return code


def _run_experiment(name: str, points: int, scale: float) -> bool:
    fn = ALL_EXPERIMENTS[name]
    kwargs = {}
    signature = inspect.signature(fn)
    if "points" in signature.parameters:
        kwargs["points"] = points
    if "scale" in signature.parameters:
        kwargs["scale"] = scale
    started = time.time()
    result = fn(**kwargs)
    print(result.text)
    elapsed = time.time() - started
    failed = result.failed_checks()
    verdict = "all shape checks PASS" if not failed else f"FAILED checks: {failed}"
    print(f"\n[{name}] {verdict} ({elapsed:.1f}s)\n")
    return not failed


def _parse_rates(parser: argparse.ArgumentParser, text: str) -> List[float]:
    """A comma-separated rate ladder (``"700"`` or ``"600,1200,2400"``)."""
    rates: List[float] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            rate = float(part)
        except ValueError:
            parser.error(f"invalid rate {part!r} in {text!r}")
        if rate <= 0:
            parser.error(f"rates must be positive (got {part!r})")
        rates.append(rate)
    if not rates:
        parser.error(f"no rates in {text!r}")
    return rates


def _serve(parser: argparse.ArgumentParser, args) -> int:
    """The ``serve`` subcommand: one open-loop server-workload run."""
    from ..specs import load as load_spec
    from ..workloads.model import ServerWorkloadSpec

    try:
        spec = load_spec(args.spec)
    except ConfigError as error:
        print(f"invalid workload spec: {error}", file=sys.stderr)
        return 1
    if not isinstance(spec, ServerWorkloadSpec):
        parser.error(
            f"'serve' needs a server workload spec file; "
            f"{args.spec!r} resolved to the closed-loop benchmark "
            f"{spec.name!r} (use 'run' for those)"
        )
    ladder = _parse_rates(parser, args.rate) if args.rate is not None else None
    if ladder is not None and len(ladder) == 1:
        spec = spec.with_rate(ladder[0])
        ladder = None
    if args.duration is not None:
        spec = spec.with_duration(args.duration)
    if args.validate:
        arrival = spec.arrival
        mix = ", ".join(f"{t.name}({t.weight:g})" for t in spec.tasks)
        print(f"{spec.name}: valid server workload")
        print(
            f"  arrival: {arrival.process} @ {arrival.rate_rps:g} req/s, "
            f"window {spec.duration_s:g}s (~{spec.expected_requests()} requests)"
        )
        print(f"  tasks: {mix}")
        print(f"  est. allocation: {spec.total_alloc_bytes / KB:.1f}KB")
        return 0
    if args.heap_kb is None:
        parser.error("serve needs --heap-kb (unless --validate)")
    heap_bytes = int(args.heap_kb * KB)
    bus, close_trace = _campaign_bus(args)
    store = _open_store(parser, args, bus=bus)
    from .runner import run_many

    # One grid batch whether the ladder has one rung or many: with
    # --trace, campaign progress and every run's (relayed) telemetry
    # land in one merged JSONL timeline; cached cells replay their
    # stored pause lists (see repro.obs.relay).
    rungs = ladder if ladder is not None else [None]
    results = run_many(
        [
            (spec.with_rate(rate) if rate is not None else spec,
             args.collector, heap_bytes, args.scale, args.seed)
            for rate in rungs
        ],
        max_workers=args.workers,
        store=store,
        bus=bus,
    )
    ok = True
    for rate, stats in zip(rungs, results):
        ok = ok and stats.completed
        print(stats.summary_row())
        requests = stats.requests
        if requests is not None:
            print(requests.summary_row())
            # The golden-snapshot grep line: full-precision reprs, so CI
            # can assert bit-identity of the percentiles with grep -F.
            at_rate = f"@{rate:g}rps" if rate is not None else ""
            print(
                f"latency-cycles {stats.benchmark}/{stats.collector}"
                f"{at_rate}: "
                f"p50={requests.p50_cycles!r} p99={requests.p99_cycles!r} "
                f"p99.9={requests.p999_cycles!r} max={requests.max_cycles!r}"
            )
    return _finish_grid(store, 0 if ok else 1, close_trace)


def _slo_bound(args):
    """The SLOBound declared by the ``slo`` flags (None: no bound given)."""
    from ..slo import SLOBound

    if all(
        value is None
        for value in (args.slo_p50_ms, args.slo_p99_ms, args.slo_p999_ms,
                      args.slo_mmu)
    ):
        return None
    return SLOBound.from_ms(
        p50=args.slo_p50_ms,
        p99=args.slo_p99_ms,
        p999=args.slo_p999_ms,
        min_mmu=args.slo_mmu,
        mmu_window_fraction=args.mmu_window,
    )


def _slo(parser: argparse.ArgumentParser, args) -> int:
    """The ``slo`` subcommand: frontier sweep or max-rate search."""
    import json

    from ..analysis.slo import (
        render_frontier,
        render_frontier_comparison,
        render_search_results,
    )
    from ..slo import max_sustainable_rates, sweep_frontier
    from ..specs import load as load_spec
    from ..workloads.model import ServerWorkloadSpec

    try:
        spec = load_spec(args.spec)
    except ConfigError as error:
        print(f"invalid workload spec: {error}", file=sys.stderr)
        return 1
    if not isinstance(spec, ServerWorkloadSpec):
        parser.error(
            f"'slo' needs a server workload spec file; {args.spec!r} "
            f"resolved to the closed-loop benchmark {spec.name!r}"
        )
    collectors = args.collector or ["25.25.100"]
    heap_bytes = int(args.heap_kb * KB)
    slo = _slo_bound(args)
    if args.search and slo is None:
        parser.error(
            "--search needs at least one SLO bound "
            "(--slo-p50-ms / --slo-p99-ms / --slo-p999-ms / --slo-mmu)"
        )
    if not args.search and args.rates is None:
        parser.error("frontier mode needs --rates (or use --search)")
    bus, close_trace = _campaign_bus(args)
    store = _open_store(parser, args, bus=bus)
    sections: List[str] = []
    artefact = {}

    if args.search:
        results = max_sustainable_rates(
            args.spec,
            [(collector, heap_bytes) for collector in collectors],
            slo,
            rate_step=args.rate_step,
            max_rate=args.max_rate,
            start_rate=args.start_rate,
            scale=args.scale,
            seed=args.seed,
            store=store,
            max_workers=args.workers,
            bus=bus,
        )
        ordered = [results[(c, heap_bytes)] for c in collectors]
        sections.append(render_search_results(ordered, slo.describe()))
        sections.append("\n".join(result.line() for result in ordered))
        artefact["search"] = {
            "benchmark": spec.name,
            "slo": slo.describe(),
            "results": [result.to_dict() for result in ordered],
        }
    else:
        rates = _parse_rates(parser, args.rates)
        frontiers = [
            sweep_frontier(
                args.spec,
                collector,
                heap_bytes,
                rates,
                scale=args.scale,
                seed=args.seed,
                store=store,
                max_workers=args.workers,
                bus=bus,
                distill=not args.no_distill,
                mmu_window_fraction=args.mmu_window,
            )
            for collector in collectors
        ]
        for frontier in frontiers:
            sections.append(render_frontier(frontier))
        if len(frontiers) > 1:
            sections.append(render_frontier_comparison(frontiers))
        sections.append(
            "\n".join(
                line for frontier in frontiers
                for line in frontier.point_lines()
            )
        )
        if slo is not None:
            sections.append(
                "\n".join(
                    f"knee {frontier.benchmark}/{frontier.collector}: "
                    + (f"{knee:g} rps" if knee is not None else "none")
                    + f" under {slo.describe()}"
                    for frontier in frontiers
                    for knee in (frontier.knee(slo),)
                )
            )
        artefact["frontiers"] = [frontier.to_dict() for frontier in frontiers]

    text = "\n\n".join(sections)
    try:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")
            print(f"slo report -> {args.output}")
        else:
            print(text)
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as stream:
                json.dump(artefact, stream, indent=1, sort_keys=True)
                stream.write("\n")
            print(f"slo JSON -> {args.json_path}")
    except OSError as error:
        print(f"error: cannot write slo artefact: {error}", file=sys.stderr)
        return _finish_grid(store, 1, close_trace)
    return _finish_grid(store, 0, close_trace)


def _trace(args) -> int:
    """The ``trace`` subcommand: telemetry JSONL -> Perfetto JSON."""
    from pathlib import Path

    from ..obs.sinks import JsonlLoadReport, iter_jsonl
    from ..obs.trace import build_timeline, write_perfetto

    report = JsonlLoadReport()
    try:
        events = list(iter_jsonl(args.artefact, validate=True, report=report))
    except OSError as error:
        print(f"error: cannot read trace artefact: {error}", file=sys.stderr)
        return 2
    if not events:
        print(
            f"error: no telemetry events in {args.artefact} "
            f"({report.skipped} line(s) skipped)",
            file=sys.stderr,
        )
        return 2
    timeline = build_timeline(events)
    output = args.output or Path(args.artefact).with_suffix("").name + ".perfetto.json"
    try:
        write_perfetto(timeline, output)
    except OSError as error:
        print(f"error: cannot write {output}: {error}", file=sys.stderr)
        return 1
    line = (
        f"trace: {len(timeline.spans)} spans from {len(events)} events "
        f"-> {output}"
    )
    if report.skipped:
        line += f" ({report.skipped} unreadable line(s) skipped)"
    truncated = timeline.attrs.get("truncated", [])
    if truncated:
        line += f" ({len(truncated)} partition(s) truncated mid-run)"
    print(line)
    return 0


def _compare(parser: argparse.ArgumentParser, args) -> int:
    """The ``compare`` subcommand: diff two artefacts, exit 1 on regression."""
    from ..analysis.compare import ArtefactError, compare_artefacts

    overrides = {}
    for item in args.metric_thresholds or ():
        name, sep, raw = item.partition("=")
        if not sep or not name:
            parser.error(f"--metric-threshold expects NAME=PCT, got {item!r}")
        try:
            pct = float(raw)
        except ValueError:
            parser.error(f"--metric-threshold {item!r}: {raw!r} is not a number")
        if pct < 0:
            parser.error(f"--metric-threshold {item!r}: threshold must be >= 0")
        overrides[name] = pct / 100.0
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    try:
        result = compare_artefacts(
            args.baseline,
            args.candidate,
            threshold=args.threshold / 100.0,
            metric_thresholds=overrides or None,
        )
    except ArtefactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render(verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except ConfigError as error:
        # Bad benchmark names, unresolvable refs, malformed collector
        # specs: usage errors, reported like argparse's own (exit 2).
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(parser: argparse.ArgumentParser, args) -> int:
    if getattr(args, "tier", None):
        # Through the environment rather than plumbing a parameter into
        # every run/sweep call: the VM resolves the tier at construction,
        # and worker processes of a parallel sweep inherit the setting.
        import os

        os.environ[TIER_ENV] = args.tier
    if args.command == "list":
        print("benchmarks: " + ", ".join(BENCHMARK_NAMES))
        print("collectors: " + ", ".join(PAPER_CONFIGS))
        print("gctk baselines: gctk:SS, gctk:Appel, gctk:Fixed.<pct>")
        print("extensions: " + ", ".join(EXTENSION_CONFIGS))
        print("experiments: " + ", ".join(sorted(ALL_EXPERIMENTS)))
        return 0
    if args.command == "run":
        report = run(
            args.benchmark,
            args.collector,
            int(args.heap_kb * KB),
            options=RunOptions(
                scale=args.scale,
                seed=args.seed,
                profile=args.profile,
                trace=args.trace,
                snapshot_every=args.snapshot_every,
            ),
        )
        print(report.stats.summary_row())
        if args.profile:
            phases = report.phases
            total = phases["total"] or 1e-12
            print("phase breakdown (host wall time):")
            for name in ("mutator", "barrier", "collect", "verify"):
                print(
                    f"  {name:<8} {phases[name] * 1000:9.1f} ms "
                    f"{100.0 * phases[name] / total:5.1f}%"
                )
            print(f"  {'total':<8} {total * 1000:9.1f} ms")
        if args.trace:
            print(
                f"trace: {report.trace_events_written} events -> {args.trace}"
            )
        return 0 if report.completed else 1
    if args.command == "profile":
        report = run(
            args.benchmark,
            args.collector,
            int(args.heap_kb * KB),
            options=RunOptions(
                scale=args.scale,
                seed=args.seed,
                profile="full",
                snapshot_every=args.snapshot_every,
            ),
        )
        profile = report.profile
        markdown = profile.to_markdown()
        try:
            if args.output:
                with open(args.output, "w", encoding="utf-8") as stream:
                    stream.write(markdown)
                print(f"profile report -> {args.output}")
            else:
                print(markdown, end="")
            if args.json_path:
                with open(args.json_path, "w", encoding="utf-8") as stream:
                    stream.write(profile.to_json())
                print(f"profile JSON -> {args.json_path}")
        except OSError as error:
            print(f"error: cannot write profile report: {error}", file=sys.stderr)
            return 1
        return 0 if report.completed else 1
    if args.command == "check":
        from ..sanitizer.faults import FAULT_KINDS, FaultSpec

        faults = []
        for text in args.fault or ():
            kind, _, nth = text.partition("@")
            if kind not in FAULT_KINDS:
                parser.error(
                    f"unknown fault kind {kind!r} "
                    f"(choose from: {', '.join(FAULT_KINDS)})"
                )
            if nth and not nth.isdigit():
                parser.error(f"fault occurrence must be an integer: {text!r}")
            faults.append(FaultSpec(kind, nth=int(nth) if nth else None))
        benchmarks = args.benchmark or list(BENCHMARK_NAMES)
        ok = True
        for name in benchmarks:
            report = run(
                name,
                args.collector,
                int(args.heap_kb * KB),
                options=RunOptions(
                    scale=args.scale,
                    seed=args.seed,
                    sanitize=True,
                    faults=tuple(faults),
                ),
            )
            sanitizer = report.sanitizer
            status = "OK" if (report.completed and sanitizer.ok) else "FAIL"
            print(
                f"[{status}] {name}/{args.collector}: "
                f"{sanitizer.collections_checked} collections checked, "
                f"{sanitizer.objects_compared} objects compared, "
                f"{len(sanitizer.violations)} violation(s)"
            )
            if not sanitizer.ok:
                print("  " + "\n  ".join(str(v) for v in sanitizer.violations))
            if not report.completed and sanitizer.ok:
                print(f"  run failed: {report.stats.failure}")
            if faults and not sanitizer.faults_injected:
                print(
                    "  note: armed fault(s) never fired on this "
                    "workload/collector — nothing was sabotaged"
                )
            ok = ok and report.completed and sanitizer.ok
        return 0 if ok else 1
    if args.command == "serve":
        return _serve(parser, args)
    if args.command == "slo":
        return _slo(parser, args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "compare":
        return _compare(parser, args)
    bus, close_trace = _campaign_bus(args)
    store = _open_store(parser, args, bus=bus)
    if args.command == "minheap":
        minimum = find_min_heap(
            args.benchmark, args.collector, scale=args.scale, seed=args.seed,
            store=store, bus=bus,
        )
        print(f"{args.benchmark}/{args.collector}: min heap = {minimum / KB:.1f}KB")
        return _finish_grid(store, 0, close_trace)
    points = 33 if getattr(args, "full", False) else args.points
    if args.command == "experiment":
        return _finish_grid(
            store,
            0 if _run_experiment(args.name, points, args.scale) else 1,
            close_trace,
        )
    if args.command == "all":
        ok = True
        for name in ALL_EXPERIMENTS:
            ok = _run_experiment(name, points, args.scale) and ok
        return _finish_grid(store, 0 if ok else 1, close_trace)
    if args.command == "report":
        from pathlib import Path

        from .report import write_report

        try:
            results = write_report(
                Path(args.output), points=points, scale=args.scale,
                names=args.only,
            )
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return _finish_grid(store, 1)
        failed = [n for n, r in results.items() if not r.all_checks_pass]
        print(f"wrote {args.output} ({len(results)} experiments)")
        if failed:
            print(f"FAILED shape checks in: {failed}")
            return _finish_grid(store, 1)
        return _finish_grid(store, 0)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
