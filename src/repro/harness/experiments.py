"""One entry point per table and figure of the paper's evaluation (§4).

Every function returns an :class:`ExperimentResult` holding

* ``text`` — the reproduced rows/series, rendered for the console;
* ``data`` — the underlying structured numbers;
* ``checks`` — named boolean *shape* assertions capturing the paper's
  qualitative claims (who wins, where, by roughly what factor).  The
  benchmark targets assert these, so a regression in any collector shows
  up as a failed reproduction, not a silently different curve.

Experiments accept ``points`` (heap-grid size; the paper used 33) and
``scale`` (workload length multiplier) so the quick benchmark targets can
run a coarser grid; shapes are stable across both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.mmu import max_pause, mmu_curve, overall_utilisation
from ..analysis.series import (
    geomean_across,
    geometric_mean,
    improvement_percent,
    relative_to_best,
)
from ..analysis.sweep import SweepResult, heap_multipliers, sweep
from ..analysis.plots import ascii_chart
from ..analysis.tables import render_mmu, render_series, render_table
from ..bench.spec import BENCHMARK_NAMES, KB, benchmark_spec
from ..runtime.vm import VM
from ..runtime.mutator import MutatorContext
from ..bench.engine import SyntheticMutator
from .runner import RunOptions, find_min_heap, run, run_many

#: The collector whose minimum heap defines each benchmark's 1.0x point,
#: as in the paper ("minimum heap size in which an Appel-style collector
#: does not fail", Table 1).
BASELINE = "gctk:Appel"

_min_heap_cache: Dict[Tuple[str, float], int] = {}
_sweep_cache: Dict[Tuple[str, str, int, float, int], SweepResult] = {}

#: Grid settings every experiment routes its runs through: an optional
#: :class:`~repro.grid.store.ResultStore` (cells served from disk and
#: checkpointed as they finish), the parallel override, and the worker
#: cap.  Set by :func:`configure_grid` (the CLI's ``--store``/``--workers``
#: flags land here); the defaults are store-less auto-parallel.
_grid: Dict[str, object] = {
    "store": None, "parallel": None, "max_workers": None, "bus": None,
}


def configure_grid(store=None, parallel=None, max_workers=None, bus=None) -> None:
    """Route all experiment runs through ``store`` and these executor
    settings (process-wide, like the caches; ``configure_grid()`` resets).
    With a telemetry ``bus``, every campaign batch emits ``grid.job``
    progress and relays worker run telemetry onto it."""
    _grid["store"] = store
    _grid["parallel"] = parallel
    _grid["max_workers"] = max_workers
    _grid["bus"] = bus


def grid_store():
    """The ResultStore experiments are currently routed through (or None)."""
    return _grid["store"]


@dataclass
class ExperimentResult:
    """Outcome of reproducing one table or figure."""

    name: str
    text: str
    data: Dict = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def _run_stats(benchmark: str, collector, heap_bytes: int, scale: float = 1.0):
    """One telemetry-free run; experiments only consume the stats."""
    if isinstance(collector, str):
        return _run_stats_many([(benchmark, collector, heap_bytes, scale, 13)])[0]
    return run(
        benchmark, collector, heap_bytes, options=RunOptions(scale=scale)
    ).stats


def _run_stats_many(jobs):
    """Batched telemetry-free runs through the grid executor: cells come
    from the configured store when present and fan out together when the
    pool pays for itself — bit-identical to per-cell :func:`_run_stats`."""
    return run_many(
        jobs,
        parallel=_grid["parallel"],
        max_workers=_grid["max_workers"],
        store=_grid["store"],
        bus=_grid["bus"],
    )


def min_heap(benchmark: str, scale: float = 1.0) -> int:
    return min_heaps([benchmark], scale)[benchmark]


def min_heaps(benchmarks: Sequence[str], scale: float = 1.0) -> Dict[str, int]:
    """Baseline minimum heaps for many benchmarks, searched as one batch.

    All still-unknown searches advance in lockstep — each round's probes
    (one per benchmark) execute as a single grid batch, so six bisections
    cost six serial ones only when running on one CPU with a cold store.
    Results populate the same process-level cache :func:`min_heap` uses.
    """
    missing = [b for b in benchmarks if (b, scale) not in _min_heap_cache]
    if missing:
        from ..grid.minsearch import find_min_heaps

        found = find_min_heaps(
            [(b, BASELINE) for b in missing],
            scale=scale,
            store=_grid["store"],
            parallel=_grid["parallel"],
            max_workers=_grid["max_workers"],
            bus=_grid["bus"],
        )
        for (benchmark, _collector), minimum in found.items():
            _min_heap_cache[(benchmark, scale)] = minimum
    return {b: _min_heap_cache[(b, scale)] for b in benchmarks}


def cached_sweep(
    benchmark: str, collector: str, points: int, scale: float, seed: int = 13
) -> SweepResult:
    key = (benchmark, collector, points, scale, seed)
    if key not in _sweep_cache:
        _sweep_cache[key] = sweep(
            benchmark,
            collector,
            min_heap(benchmark, scale),
            heap_multipliers(points),
            scale=scale,
            seed=seed,
            parallel=_grid["parallel"],
            max_workers=_grid["max_workers"],
            store=_grid["store"],
            bus=_grid["bus"],
        )
    return _sweep_cache[key]


def clear_caches() -> None:
    _min_heap_cache.clear()
    _sweep_cache.clear()


def _geomean_figure(
    collectors: Sequence[str],
    metric: str,
    benchmarks: Sequence[str],
    points: int,
    scale: float,
) -> Tuple[List[float], Dict[str, List[Optional[float]]]]:
    """Geometric mean across benchmarks of per-benchmark-normalised series.

    Each benchmark's series are first normalised by that benchmark's best
    value across all collectors and heap sizes (making benchmarks
    commensurable), then combined with a pointwise geometric mean, then
    re-normalised so the figure's best point is 1.0 — the paper's
    "relative to best result (lower is better)" axes.
    """
    multipliers = heap_multipliers(points)
    min_heaps(list(benchmarks), scale)  # fan the baseline searches out together
    per_collector: Dict[str, List[List[Optional[float]]]] = {c: [] for c in collectors}
    for benchmark in benchmarks:
        raw = {
            c: cached_sweep(benchmark, c, points, scale).series(metric)
            for c in collectors
        }
        normalised = relative_to_best(raw)
        for c in collectors:
            per_collector[c].append(normalised[c])
    combined = {c: geomean_across(per_collector[c]) for c in collectors}
    return multipliers, relative_to_best(combined)


def _value_at(series: List[Optional[float]], index: int) -> Optional[float]:
    return series[index] if 0 <= index < len(series) else None


def _mean_over(series: List[Optional[float]], indices: Sequence[int]) -> Optional[float]:
    values = [series[i] for i in indices if series[i] is not None]
    return geometric_mean(values) if values else None


def _paired_means(
    series_a: List[Optional[float]],
    series_b: List[Optional[float]],
    indices: Sequence[int],
) -> Tuple[Optional[float], Optional[float]]:
    """Geometric means of two series over the indices where *both* have
    values — gaps (failed runs) must not skew a head-to-head comparison."""
    shared = [
        i for i in indices if series_a[i] is not None and series_b[i] is not None
    ]
    if not shared:
        return None, None
    return (
        geometric_mean([series_a[i] for i in shared]),
        geometric_mean([series_b[i] for i in shared]),
    )


# ----------------------------------------------------------------------
# Table 1 — benchmark characteristics
# ----------------------------------------------------------------------
def table1(scale: float = 1.0) -> ExperimentResult:
    """Min heap, total allocation, and GCs at large & small heaps (Appel)."""
    rows = []
    data = {}
    checks = {}
    minima = min_heaps(list(BENCHMARK_NAMES), scale)
    stats = _run_stats_many(
        [
            (benchmark, BASELINE, heap, scale, 13)
            for benchmark in BENCHMARK_NAMES
            for heap in (minima[benchmark], 3 * minima[benchmark])
        ]
    )
    for pair, benchmark in enumerate(BENCHMARK_NAMES):
        spec = benchmark_spec(benchmark, scale)
        minimum = minima[benchmark]
        small, large = stats[2 * pair], stats[2 * pair + 1]
        paper = spec.paper
        rows.append(
            [
                benchmark,
                paper.description,
                f"{paper.min_heap_bytes / KB:.0f}KB",
                f"{minimum / KB:.1f}KB",
                f"{paper.total_alloc_bytes / KB:.0f}KB",
                f"{large.allocated_bytes / KB:.0f}KB",
                f"{paper.gcs_large_heap}/{paper.gcs_small_heap}",
                f"{large.collections}/{small.collections}",
            ]
        )
        data[benchmark] = {
            "min_heap_bytes": minimum,
            "paper_min_heap_bytes": paper.min_heap_bytes,
            "total_alloc_bytes": large.allocated_bytes,
            "gcs_large": large.collections,
            "gcs_small": small.collections,
        }
        # Shape: small heaps need far more GCs; minima agree within 2x of
        # the (scaled) paper value.
        checks[f"{benchmark}_gcs_ratio"] = small.collections > 2 * large.collections
        ratio = minimum / paper.min_heap_bytes
        checks[f"{benchmark}_min_heap_band"] = 0.5 <= ratio <= 2.0
    text = render_table(
        [
            "benchmark",
            "description",
            "min(paper)",
            "min(ours)",
            "alloc(paper)",
            "alloc(ours)",
            "GCs l/s (paper)",
            "GCs l/s (ours)",
        ],
        rows,
        title="Table 1: benchmark characteristics (scaled 1024x; Appel baseline)",
    )
    return ExperimentResult("table1", text, data, checks)


# ----------------------------------------------------------------------
# Figure 1 — the cost of GC under the Appel baseline
# ----------------------------------------------------------------------
def figure1(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """(a) % time in GC vs heap size; (b) total time relative to best."""
    multipliers = heap_multipliers(points)
    min_heaps(list(BENCHMARK_NAMES), scale)
    gc_fraction: Dict[str, List[Optional[float]]] = {}
    total_rel: Dict[str, List[Optional[float]]] = {}
    for benchmark in BENCHMARK_NAMES:
        result = cached_sweep(benchmark, BASELINE, points, scale)
        gc_fraction[benchmark] = [
            None if v is None else 100.0 * v
            for v in result.series("gc_fraction")
        ]
        total_rel.update(
            {benchmark: relative_to_best({benchmark: result.series("total_cycles")})[benchmark]}
        )
    checks = {}
    for benchmark in BENCHMARK_NAMES:
        series = gc_fraction[benchmark]
        first, last = series[0], series[-1]
        checks[f"{benchmark}_gc_fraction_falls"] = (
            first is not None and last is not None and last < first
        )
    # GC can consume a large share of time in tight heaps (paper: ~35%+).
    tight = [s[0] for s in gc_fraction.values() if s[0] is not None]
    checks["tight_heap_gc_share_large"] = max(tight) > 25.0
    # Optimal total time is not always at the largest heap (pseudojbb pages).
    jbb = total_rel["pseudojbb"]
    finite = [v for v in jbb if v is not None]
    checks["pseudojbb_degrades_at_large_heaps"] = (
        jbb[-1] is not None and jbb[-1] > min(finite) * 1.02
    )
    text = (
        render_series(
            multipliers,
            gc_fraction,
            "Figure 1(a): % of time in GC (Appel), per benchmark",
            value_format="{:5.1f}%",
        )
        + "\n\n"
        + render_series(
            multipliers,
            total_rel,
            "Figure 1(b): total time relative to per-benchmark best (Appel)",
        )
    )
    return ExperimentResult(
        "figure1",
        text,
        {"multipliers": multipliers, "gc_fraction": gc_fraction, "total_rel": total_rel},
        checks,
    )


# ----------------------------------------------------------------------
# Figures 2 & 3 — belt/increment structure traces
# ----------------------------------------------------------------------
def figure23() -> ExperimentResult:
    """Structural traces of the six configurations of Figs. 2 and 3."""
    sections = []
    data = {}
    checks = {}
    configs = ["BSS", "Appel", "BOFM.25", "BOF.25", "25.25", "25.25.100"]
    for config in configs:
        vm = VM(heap_bytes=64 * 256, collector=config)
        node = vm.define_type("cnode", nrefs=2, nscalars=1)
        mu = MutatorContext(vm)
        keep: List = []
        snapshots = []
        targets = [2, 5, 9]  # snapshot after these collection counts
        for i in range(5000):
            handle = mu.alloc(node)
            if i % 12 == 0:
                keep.append(handle)
                if len(keep) > 40:
                    keep.pop(0).drop()
            else:
                handle.drop()
            if targets and len(vm.plan.collections) >= targets[0]:
                snapshots.append(vm.plan.describe_structure())
                targets.pop(0)
                if not targets:
                    break
        diagram = "\n--- after next collections ---\n".join(snapshots)
        sections.append(f"== {config} ==\n{diagram}")
        belts = len(vm.plan.belts)
        data[config] = {
            "belts": belts,
            "collections": len(vm.plan.collections),
            "flips": vm.plan.flips,
        }
        checks[f"{config}_ran"] = len(vm.plan.collections) >= 3
    checks["BSS_single_belt"] = data["BSS"]["belts"] == 1
    checks["Appel_two_belts"] = data["Appel"]["belts"] == 2
    checks["BOFM_single_belt"] = data["BOFM.25"]["belts"] == 1
    checks["25.25.100_three_belts"] = data["25.25.100"]["belts"] == 3
    text = "Figures 2/3: belt and increment structure over successive collections\n\n"
    text += "\n\n".join(sections)
    return ExperimentResult("figure23", text, data, checks)


# ----------------------------------------------------------------------
# Figure 4 — write barrier behaviour
# ----------------------------------------------------------------------
def figure4(scale: float = 1.0) -> ExperimentResult:
    """Fast/slow path statistics of the frame barrier vs the boundary
    barrier (the paper's separate statistics runs, §4.1)."""
    rows = []
    data = {}
    configs = ["25.25.100", "Appel", "BOF.25", "gctk:Appel"]
    benchmark = "javac"
    heap = 2 * min_heap(benchmark, scale)
    all_stats = _run_stats_many(
        [(benchmark, config, heap, scale, 13) for config in configs]
    )
    for config, stats in zip(configs, all_stats):
        slow_pct = 100.0 * stats.barrier_slow / max(1, stats.barrier_fast)
        rows.append(
            [
                config,
                f"{stats.barrier_fast}",
                f"{stats.barrier_slow}",
                f"{slow_pct:.2f}%",
                f"{stats.remset_inserts}",
            ]
        )
        data[config] = {
            "fast": stats.barrier_fast,
            "slow": stats.barrier_slow,
            "slow_pct": slow_pct,
        }
    checks = {
        "slow_path_is_rare": all(d["slow_pct"] < 25.0 for d in data.values()),
        "barrier_executed": all(d["fast"] > 0 for d in data.values()),
        "incremental_configs_filter_most_stores": data["25.25.100"]["slow"]
        < data["25.25.100"]["fast"] * 0.25,
    }
    text = render_table(
        ["collector", "barrier fast", "barrier slow (taken)", "taken %", "remset inserts"],
        rows,
        title=f"Figure 4: write-barrier path statistics ({benchmark}, 2x min heap)",
    )
    return ExperimentResult("figure4", text, data, checks)


# ----------------------------------------------------------------------
# Figure 5 — Beltway as Appel
# ----------------------------------------------------------------------
def figure5(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """Appel vs Beltway 100.100 vs 100.100.100 (geomean GC & total time)."""
    collectors = [BASELINE, "100.100", "100.100.100"]
    multipliers, gc_series = _geomean_figure(
        collectors, "gc_cycles", BENCHMARK_NAMES, points, scale
    )
    _, total_series = _geomean_figure(
        collectors, "total_cycles", BENCHMARK_NAMES, points, scale
    )
    checks = {}
    # Beltway 100.100 performs the same as the Appel baseline.
    indices = range(len(multipliers))
    b100_total, appel_total = _paired_means(
        total_series["100.100"], total_series[BASELINE], indices
    )
    checks["beltway_100_100_matches_appel"] = (
        appel_total is not None
        and b100_total is not None
        and abs(b100_total - appel_total) / appel_total < 0.12
    )
    # The third generation alone is not the source of X.X.100's advantage:
    # at most heap sizes 100.100.100 is no better than ~10% off Appel.
    mid = [i for i in indices if multipliers[i] >= 1.4]
    ba3_mid, appel_mid = _paired_means(
        total_series["100.100.100"], total_series[BASELINE], mid
    )
    checks["third_generation_alone_no_big_win"] = (
        appel_mid is not None
        and ba3_mid is not None
        and ba3_mid > appel_mid * 0.90
    )
    text = (
        render_series(multipliers, gc_series, "Figure 5(a): GC time relative to best (geomean)")
        + "\n\n"
        + render_series(
            multipliers, total_series, "Figure 5(b): total time relative to best (geomean)"
        )
        + "\n\n"
        + ascii_chart(
            multipliers, total_series, "Figure 5(b) as a chart (lower is better)"
        )
    )
    return ExperimentResult(
        "figure5",
        text,
        {"multipliers": multipliers, "gc": gc_series, "total": total_series},
        checks,
    )


# ----------------------------------------------------------------------
# Figure 6 — incrementality in generational collectors
# ----------------------------------------------------------------------
def figure6(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """Fixed-size nurseries (10/25/50%) vs the flexible Appel nursery."""
    collectors = [BASELINE, "gctk:Fixed.10", "gctk:Fixed.25", "gctk:Fixed.50"]
    multipliers, gc_series = _geomean_figure(
        collectors, "gc_cycles", BENCHMARK_NAMES, points, scale
    )
    _, total_series = _geomean_figure(
        collectors, "total_cycles", BENCHMARK_NAMES, points, scale
    )
    checks = {}
    indices = [i for i in range(len(multipliers)) if multipliers[i] >= 1.2]
    beats = []
    for c in collectors:
        if c == BASELINE:
            continue
        fixed_mean, appel_mean = _paired_means(
            total_series[c], total_series[BASELINE], indices
        )
        if fixed_mean is not None and appel_mean is not None:
            beats.append(appel_mean <= fixed_mean * 1.02)
    checks["appel_beats_every_fixed_nursery"] = bool(beats) and all(beats)
    # Fixed nurseries fail at small heap sizes where Appel completes.
    checks["fixed_fails_in_tight_heaps"] = any(
        total_series[c][0] is None for c in collectors if c != BASELINE
    ) and total_series[BASELINE][0] is not None
    text = (
        render_series(multipliers, gc_series, "Figure 6(a): GC time relative to best (geomean)")
        + "\n\n"
        + render_series(
            multipliers, total_series, "Figure 6(b): total time relative to best (geomean)"
        )
        + "\n\n"
        + ascii_chart(
            multipliers, total_series, "Figure 6(b) as a chart (lower is better)"
        )
    )
    return ExperimentResult(
        "figure6",
        text,
        {"multipliers": multipliers, "gc": gc_series, "total": total_series},
        checks,
    )


# ----------------------------------------------------------------------
# Figure 7 — incrementality in Beltway X.X.100
# ----------------------------------------------------------------------
def figure7(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """Beltway X.X.100 for X in {10, 25, 33, 50}."""
    collectors = ["10.10.100", "25.25.100", "33.33.100", "50.50.100"]
    multipliers, gc_series = _geomean_figure(
        collectors, "gc_cycles", BENCHMARK_NAMES, points, scale
    )
    _, total_series = _geomean_figure(
        collectors, "total_cycles", BENCHMARK_NAMES, points, scale
    )
    indices = [
        i
        for i in range(len(multipliers))
        if all(total_series[c][i] is not None for c in collectors)
    ]
    means = {c: _mean_over(total_series[c], indices) for c in collectors}
    checks = {}
    robust = [means[c] for c in ("25.25.100", "33.33.100", "50.50.100") if means[c]]
    checks["robust_across_increment_sizes"] = (
        len(robust) == 3 and max(robust) / min(robust) < 1.15
    )
    checks["smallest_increment_degrades"] = (
        means["10.10.100"] is not None
        and means["10.10.100"] > min(robust) * 1.02
    )
    text = (
        render_series(multipliers, gc_series, "Figure 7(a): GC time relative to best (geomean)")
        + "\n\n"
        + render_series(
            multipliers, total_series, "Figure 7(b): total time relative to best (geomean)"
        )
        + "\n\n"
        + ascii_chart(
            multipliers, total_series, "Figure 7(b) as a chart (lower is better)"
        )
    )
    return ExperimentResult(
        "figure7",
        text,
        {"multipliers": multipliers, "gc": gc_series, "total": total_series, "means": means},
        checks,
    )


# ----------------------------------------------------------------------
# Figure 8 — Beltway X.X versus X.X.100 (completeness trade-off)
# ----------------------------------------------------------------------
def figure8(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """25.25 vs 25.25.100 vs Appel, plus the javac completeness anecdote."""
    collectors = ["25.25", "25.25.100", BASELINE]
    multipliers, gc_series = _geomean_figure(
        collectors, "gc_cycles", BENCHMARK_NAMES, points, scale
    )
    _, total_series = _geomean_figure(
        collectors, "total_cycles", BENCHMARK_NAMES, points, scale
    )
    indices = range(len(multipliers))
    mean_xx, mean_complete = _paired_means(
        total_series["25.25"], total_series["25.25.100"], indices
    )
    checks = {
        "incomplete_no_geomean_win": mean_xx is not None
        and mean_complete is not None
        and abs(mean_xx - mean_complete) / mean_complete < 0.15,
    }
    # javac: 25.25 "never reclaims a large cyclic garbage structure"
    # (§4.2.4).  The robust observable is the reclamation floor — the
    # lowest post-collection occupancy late in the run: the incomplete
    # configuration's floor stays inflated by the retained
    # cross-increment cycles, the complete configuration's falls back
    # towards the live set at its full top-belt collections.
    javac_min = min_heap("javac", scale)
    javac_heap = int(1.5 * javac_min)
    xx, complete = _run_stats_many(
        [
            ("javac", "25.25", javac_heap, scale, 13),
            ("javac", "25.25.100", javac_heap, scale, 13),
        ]
    )
    floor_xx = xx.late_occupancy_floor()
    floor_complete = complete.late_occupancy_floor()
    checks["javac_punishes_incompleteness"] = (not xx.completed) or (
        complete.completed and floor_xx > 1.5 * floor_complete
    )
    data = {
        "multipliers": multipliers,
        "gc": gc_series,
        "total": total_series,
        "javac_floors": {"25.25": floor_xx, "25.25.100": floor_complete},
    }
    text = (
        render_series(multipliers, gc_series, "Figure 8(a): GC time relative to best (geomean)")
        + "\n\n"
        + render_series(
            multipliers, total_series, "Figure 8(b): total time relative to best (geomean)"
        )
        + "\n\n"
        + ascii_chart(
            multipliers, total_series, "Figure 8(b) as a chart (lower is better)"
        )
        + "\n\njavac reclamation floor @1.5x min heap (lower = more garbage"
        + " reclaimed):\n"
        + f"  25.25     {floor_xx} bytes retained"
        + f" ({'ok' if xx.completed else 'FAILED'})\n"
        + f"  25.25.100 {floor_complete} bytes retained"
        + f" ({'ok' if complete.completed else 'FAILED'})"
    )
    return ExperimentResult("figure8", text, data, checks)


# ----------------------------------------------------------------------
# Figure 9 — the headline: Beltway 25.25.100 vs generational collectors
# ----------------------------------------------------------------------
def figure9(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """Beltway 25.25.100 vs Appel vs Fixed-25 (geomean GC & total time)."""
    collectors = ["25.25.100", BASELINE, "gctk:Fixed.25"]
    multipliers, gc_series = _geomean_figure(
        collectors, "gc_cycles", BENCHMARK_NAMES, points, scale
    )
    _, total_series = _geomean_figure(
        collectors, "total_cycles", BENCHMARK_NAMES, points, scale
    )
    small = [i for i, m in enumerate(multipliers) if m <= 1.6]
    large = [i for i, m in enumerate(multipliers) if m >= 2.2]
    # Head-to-head comparisons are made per benchmark over the heap sizes
    # where *both* collectors completed, then combined geometrically —
    # this keeps each benchmark's tight-heap points (where Beltway's
    # advantage is largest) in the comparison even when another benchmark
    # leaves a gap there.
    ratios_small = []
    ratios_large = []
    for benchmark in BENCHMARK_NAMES:
        raw_b = cached_sweep(benchmark, "25.25.100", points, scale).series("total_cycles")
        raw_a = cached_sweep(benchmark, BASELINE, points, scale).series("total_cycles")
        b_small, a_small = _paired_means(raw_b, raw_a, small)
        if b_small is not None:
            ratios_small.append(b_small / a_small)
        b_large, a_large = _paired_means(raw_b, raw_a, large)
        if b_large is not None:
            ratios_large.append(b_large / a_large)
    ratio_small = geometric_mean(ratios_small) if ratios_small else None
    ratio_large = geometric_mean(ratios_large) if ratios_large else None
    beltway_small, appel_small = ratio_small, 1.0
    beltway_large, appel_large = ratio_large, 1.0
    checks = {}
    checks["beltway_wins_small_heaps"] = (
        ratio_small is not None and ratio_small < 1.0
    )
    improvement = (
        improvement_percent(1.0, ratio_small) if ratio_small is not None else 0.0
    )
    checks["small_heap_improvement_at_least_5pct"] = improvement >= 5.0
    checks["competitive_at_large_heaps"] = (
        ratio_large is not None and ratio_large < 1.10
    )
    # GC time robustness in small heaps.
    gc_small_b, gc_small_a = _paired_means(
        gc_series["25.25.100"], gc_series[BASELINE], small
    )
    checks["gc_time_reduced_in_small_heaps"] = (
        gc_small_b is not None and gc_small_a is not None and gc_small_b < gc_small_a
    )
    text = (
        render_series(multipliers, gc_series, "Figure 9(a): GC time relative to best (geomean)")
        + "\n\n"
        + render_series(
            multipliers, total_series, "Figure 9(b): total time relative to best (geomean)"
        )
        + "\n\n"
        + ascii_chart(
            multipliers, total_series, "Figure 9(b) as a chart (lower is better)"
        )
        + f"\n\nsmall-heap (<=1.6x) total-time improvement over Appel: {improvement:.1f}%"
    )
    return ExperimentResult(
        "figure9",
        text,
        {
            "multipliers": multipliers,
            "gc": gc_series,
            "total": total_series,
            "improvement_small_heaps_pct": improvement,
        },
        checks,
    )


# ----------------------------------------------------------------------
# Figure 10 — per-benchmark total time
# ----------------------------------------------------------------------
def figure10(points: int = 9, scale: float = 1.0) -> ExperimentResult:
    """Per-benchmark total execution time, the paper's six panels."""
    collectors = ["25.25.100", BASELINE, "gctk:Fixed.25"]
    multipliers = heap_multipliers(points)
    min_heaps(list(BENCHMARK_NAMES), scale)
    sections = []
    data = {}
    checks = {}
    wins_at_small = 0
    for benchmark in BENCHMARK_NAMES:
        raw = {
            c: cached_sweep(benchmark, c, points, scale).series("total_cycles")
            for c in collectors
        }
        rel = relative_to_best(raw)
        sections.append(
            render_series(
                multipliers, rel, f"Figure 10 ({benchmark}): total time relative to best"
            )
        )
        data[benchmark] = rel
        # Compare at the smallest heap where Beltway completes: either it
        # beats Appel there, or Appel could not run at all at that size.
        first = next(
            (i for i, v in enumerate(rel["25.25.100"]) if v is not None), None
        )
        if first is not None:
            appel_there = rel[BASELINE][first]
            beltway_there = rel["25.25.100"][first]
            if appel_there is None or beltway_there <= appel_there * 1.02:
                wins_at_small += 1
    checks["beltway_wins_small_heaps_on_most_benchmarks"] = wins_at_small >= 4
    # Appel needs a substantially larger heap to match Beltway's tight-heap
    # performance: find the first multiplier where Appel gets within 5% of
    # Beltway's minimum-heap total, per benchmark.
    crossovers = {}
    for benchmark in BENCHMARK_NAMES:
        rel = data[benchmark]
        target = rel["25.25.100"][0]
        crossover = None
        if target is not None:
            for i, multiplier in enumerate(multipliers):
                value = rel[BASELINE][i]
                if value is not None and value <= target * 1.05:
                    crossover = multiplier
                    break
        crossovers[benchmark] = crossover
    matched = [c for c in crossovers.values() if c is not None]
    checks["appel_needs_bigger_heaps"] = (
        len(matched) == 0 or geometric_mean(matched) >= 1.2
    )
    data["crossovers"] = crossovers
    text = "\n\n".join(sections)
    text += "\n\nAppel heap multiplier needed to match Beltway@1.0x: " + ", ".join(
        f"{b}={c:.2f}x" if c else f"{b}=never" for b, c in crossovers.items()
    )
    return ExperimentResult("figure10", text, data, checks)


# ----------------------------------------------------------------------
# Figure 11 — responsiveness (MMU)
# ----------------------------------------------------------------------
def figure11(scale: float = 1.0) -> ExperimentResult:
    """MMU curves for javac at two heap sizes (1.5x and 3x minimum)."""
    collectors = ["10.10", "10.10.100", "33.33", "33.33.100", BASELINE]
    javac_min = min_heap("javac", scale)
    sections = []
    data = {}
    checks = {}
    sizes = (("small", 1.5), ("large", 3.0))
    all_stats = _run_stats_many(
        [
            ("javac", collector, int(javac_min * ratio), scale, 13)
            for _label, ratio in sizes
            for collector in collectors
        ]
    )
    for block, (label, ratio) in enumerate(sizes):
        heap = int(javac_min * ratio)
        curves = {}
        pauses = {}
        for offset, collector in enumerate(collectors):
            stats = all_stats[block * len(collectors) + offset]
            if not stats.completed:
                continue
            intervals = stats.pause_intervals()
            windows = _shared_windows(stats.total_cycles)
            curves[collector] = mmu_curve(intervals, stats.total_cycles, windows)
            pauses[collector] = {
                "max_pause": max_pause(intervals),
                "utilisation": overall_utilisation(intervals, stats.total_cycles),
            }
        sections.append(
            render_mmu(curves, f"Figure 11 ({label} heap = {ratio:.1f}x min): MMU")
        )
        data[label] = {"curves": curves, "pauses": pauses}
        if "10.10" in pauses and BASELINE in pauses:
            checks[f"{label}_heap_10_10_shorter_pauses_than_appel"] = (
                pauses["10.10"]["max_pause"] < pauses[BASELINE]["max_pause"]
            )
        if "10.10" in pauses and "33.33" in pauses:
            checks[f"{label}_heap_pause_grows_with_increment"] = (
                pauses["10.10"]["max_pause"] <= pauses["33.33"]["max_pause"]
            )
    if (
        "33.33" in data["small"]["pauses"]
        and "33.33" in data["large"]["pauses"]
    ):
        checks["max_pause_grows_with_heap_size"] = (
            data["large"]["pauses"]["33.33"]["max_pause"]
            >= data["small"]["pauses"]["33.33"]["max_pause"]
        )
    text = "\n\n".join(sections)
    return ExperimentResult("figure11", text, data, checks)


def _shared_windows(total_time: float, points: int = 16) -> List[float]:
    lo = total_time * 3e-4
    step = (1.0 / 3e-4) ** (1.0 / (points - 1))
    return [lo * step ** i for i in range(points)]


# ----------------------------------------------------------------------
# Extension: the responsiveness/throughput trade-off sweep (the paper's
# §4.3 calls this exploration out as future work: "we have not yet
# explored the configuration space fully ... to offer a tuning strategy")
# ----------------------------------------------------------------------
def responsiveness(scale: float = 1.0) -> ExperimentResult:
    """Sweep increment size at a fixed heap: pause/throughput tuning.

    For X.X.100 configurations the increment size is the responsiveness
    knob: smaller increments mean smaller collections (better worst-case
    pause and MMU) at the cost of more of them.  This experiment
    quantifies the trade-off on jess at 2x its minimum heap, with the
    Appel baseline for context.
    """
    collectors = ["10.10.100", "25.25.100", "33.33.100", "50.50.100", BASELINE]
    benchmark = "jess"
    heap = 2 * min_heap(benchmark, scale)
    rows = []
    data = {}
    all_stats = _run_stats_many(
        [(benchmark, collector, heap, scale, 13) for collector in collectors]
    )
    for collector, stats in zip(collectors, all_stats):
        if not stats.completed:
            rows.append([collector, "FAILED", "", "", ""])
            continue
        intervals = stats.pause_intervals()
        window = 0.01 * stats.total_cycles
        utilisation = mmu_curve(intervals, stats.total_cycles, [window])[0][1]
        data[collector] = {
            "max_pause": max_pause(intervals),
            "mmu_1pct": utilisation,
            "throughput": overall_utilisation(intervals, stats.total_cycles),
            "collections": stats.collections,
            "total_cycles": stats.total_cycles,
        }
        rows.append(
            [
                collector,
                f"{data[collector]['max_pause']:.0f}",
                f"{utilisation:.3f}",
                f"{data[collector]['throughput']:.3f}",
                f"{stats.collections}",
            ]
        )
    checks = {}
    sized = ["10.10.100", "25.25.100", "33.33.100", "50.50.100"]
    present = [c for c in sized if c in data]
    pauses = [data[c]["max_pause"] for c in present]
    checks["pause_grows_with_increment_size"] = pauses == sorted(pauses)
    if "10.10.100" in data and BASELINE in data:
        checks["small_increments_beat_appel_pause"] = (
            data["10.10.100"]["max_pause"] < data[BASELINE]["max_pause"]
        )
    counts = [data[c]["collections"] for c in present]
    checks["collections_shrink_with_increment_size"] = counts == sorted(
        counts, reverse=True
    )
    text = render_table(
        ["collector", "max pause (cy)", "MMU@1pct window", "throughput", "GCs"],
        rows,
        title=f"Responsiveness sweep (extension): {benchmark} @2x min heap",
    )
    return ExperimentResult("responsiveness", text, data, checks)


# ----------------------------------------------------------------------
# Extension: SLO frontier — Beltway vs the Appel baseline under load
# (the production-shaped question the paper's throughput/MMU numbers
# circle: what rate can each collector sustain at a fixed heap?)
# ----------------------------------------------------------------------
def _slo_workload():
    """A small built-in kv-style server workload (no file dependency)."""
    from ..bench.engine import AllocSite
    from ..workloads.model import ArrivalSpec, RequestTask, ServerWorkloadSpec

    return ServerWorkloadSpec(
        name="slo-kv",
        arrival=ArrivalSpec(process="poisson", rate_rps=1200.0),
        duration_s=0.2,
        tasks=(
            RequestTask(
                name="get",
                weight=3.0,
                sites=(
                    AllocSite(
                        weight=1.0, type_name="small", lifetime="request"
                    ),
                ),
                request_bytes=(96, 256),
                cache_lookups=1,
            ),
            RequestTask(
                name="set",
                weight=1.0,
                sites=(
                    AllocSite(
                        weight=2.0, type_name="node", lifetime="request"
                    ),
                    AllocSite(weight=1.0, type_name="node", lifetime="cache"),
                ),
                request_bytes=(128, 384),
                work=6.0,
            ),
        ),
        description="built-in kv-style workload for the slo experiment",
    )


def slo(scale: float = 1.0) -> ExperimentResult:
    """SLO frontier: Beltway vs the Appel baseline over a rate ladder.

    Runs the built-in kv workload at three offered rates against both
    collectors at a fixed heap, with the no-GC reference distillation.
    The shape checks pin the qualitative story: every measured cell
    completes, tails do not improve as offered load doubles, the no-GC
    references really never collect, and distilled GC cost is sane
    (overhead bounded below, inflation ratios at or above ~1).
    """
    from ..analysis.slo import render_frontier, render_frontier_comparison
    from ..slo import sweep_frontier

    spec = _slo_workload()
    collectors = ["25.25.100", BASELINE]
    heap = 192 * KB
    rates = [600.0, 1200.0, 2400.0]
    frontiers = [
        sweep_frontier(
            spec,
            collector,
            heap,
            rates,
            scale=scale,
            seed=13,
            store=_grid["store"],
            parallel=_grid["parallel"],
            max_workers=_grid["max_workers"],
            bus=_grid["bus"],
        )
        for collector in collectors
    ]
    data = {
        frontier.collector: frontier.to_dict() for frontier in frontiers
    }
    checks = {}
    for frontier in frontiers:
        name = frontier.collector
        points = frontier.points
        checks[f"{name}_all_rates_complete"] = all(
            p.completed for p in points
        )
        p99s = [p.p99_cycles for p in points]
        checks[f"{name}_tail_monotone_with_load"] = all(
            later >= 0.95 * earlier  # tolerance: tails may plateau
            for earlier, later in zip(p99s, p99s[1:])
        )
        distilled = [p.distilled for p in points if p.distilled is not None]
        checks[f"{name}_distilled_every_point"] = len(distilled) == len(points)
        checks[f"{name}_no_gc_reference_clean"] = all(
            d.clean for d in distilled
        )
        checks[f"{name}_distilled_cost_sane"] = all(
            d.overhead_pct >= -1.0 and d.p99_inflation >= 0.95
            for d in distilled
        )
    text = "\n\n".join(
        [render_frontier(frontier) for frontier in frontiers]
        + [render_frontier_comparison(frontiers)]
    )
    return ExperimentResult("slo", text, data, checks)


#: Every experiment, in paper order (used by the CLI and the bench suite).
ALL_EXPERIMENTS = {
    "table1": table1,
    "figure1": figure1,
    "figure23": figure23,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "responsiveness": responsiveness,
    "slo": slo,
}
