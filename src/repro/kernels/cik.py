"""cffi substrate kernels: compiled C engines for the copy-trace loops.

numpy cannot batch a Cheney trace — it is a pointer-chasing loop whose
next load depends on the previous copy — so the ``cffi`` tier lowers the
whole trace (forward, bulk copy, gray-queue scan) into an
ahead-of-time-compiled C extension working directly on the slab storage
(:mod:`repro.heap.space`): every simulated word is one int64 slot, frame
``i`` lives at global word ``i * frame_words``, and slabs never move, so
a C pointer per slab addresses the entire heap for the life of a space.

Counter bit-identity (DESIGN §13) is preserved by construction:

* the C loops charge ``loads``/``stores`` and the ``CollectionResult``
  work counters in exactly the reference order, so even an abort mid-
  trace (OutOfMemory, a corrupt header) leaves the same counter state;
* copy allocation bumps a per-belt (cursor, limit) pair C-side and calls
  back into Python (``kr_refill``) only when the current frame tail is
  exhausted — the callback runs the *reference* grow/overflow path
  (``Collector._copy_alloc_in_belt`` / the gctk ``alloc_copy`` closure),
  so frame acquisition, increment overflow, restamping, waste accounting
  and OutOfMemory behaviour are literally the reference implementation's;
* remset inserts discovered by the C scan are logged as (src, tgt, slot)
  triples and replayed through ``heap.remsets.insert`` *after* the drain
  (batch-boundary semantics: nothing reads the remsets between the
  pre-trace ``slots_into`` drain and the post-trace ``drop_frames``, so
  deferral is unobservable; replay order is the discovery order, and the
  attribute lookup at replay time keeps fault-injection seams honoured);
* frame collection-order stamps are snapshotted into a C buffer at trace
  start and kept current incrementally: the space's acquire hook reports
  each frame a refill maps (patching just that entry), and a wholesale
  re-snapshot happens only when the heap's ``restamp_epoch`` moved — the
  only points where orders can change during a trace.

Two deliberate deviations, documented in DESIGN §13: a non-null pointer
whose frame index falls outside the frame table aborts the trace with
``HeapCorruption`` where the reference would raise ``IndexError`` (or
silently wrap a negative index), and a worklist overflow — impossible on
a well-formed heap, the capacity is ``from_words // HEADER_WORDS`` — is
also ``HeapCorruption``.

The extension is compiled once into ``src/repro/kernels/_build/``
(gitignored), keyed by a hash of the C source; later processes load the
cached build.  :func:`build_error` reports why the backend is
unavailable (no cffi, no C compiler) without ever raising.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import tempfile
from typing import Dict, List, Optional

from ..errors import HeapCorruption, InvalidAddress
from ..heap.objectmodel import HEADER_WORDS

# The C trace assumes the 3-word header layout (status, type, length).
assert HEADER_WORDS == 3

#: Abort codes shared with the C source (k_* set ctx->abort_code).
_AB_PYERR = 1      # a Python callback stored an exception
_AB_MISALIGN = 2   # misaligned object pointer (abort_addr = faulting addr)
_AB_UNMAPPED = 3   # unmapped frame (abort_addr = faulting addr)
_AB_TYPE = 4       # unknown type word (abort_addr = the bogus word)
_AB_BADFRAME = 5   # pointer targets a frame outside the table
_AB_WL = 6         # worklist overflow (impossible on well-formed heaps)

#: Capacity of the C-side insert log, in (src, tgt, slot) triples; a full
#: log flushes to Python (kr_flush) rather than aborting.
_INS_TRIPLES = 4096

_CDEF = r"""
typedef struct {
    int64_t **slabs;
    int64_t slab_shift;
    int64_t slab_mask;
    int64_t n_slabs;
    int64_t shift;
    int64_t n_frames;
    int64_t frame_words;
    int64_t *orders;
    uint8_t *mapped;
    uint8_t *in_from;
    int8_t  *frame_belt;
    int64_t *type_addr;
    int32_t *type_ref;
    int32_t *type_size;
    int64_t n_types;
    int64_t *wl;
    int64_t wl_len, wl_cap, wl_head;
    int64_t *ins;
    int64_t ins_len, ins_cap;
    int64_t *cursor;
    int64_t *limit;
    int64_t loads, stores;
    int64_t copied_objects, copied_words;
    int64_t scanned_objects, scanned_ref_slots;
    int64_t boot_slots, root_slots;
    int64_t abort_code, abort_addr;
} kctx;

int64_t k_forward(kctx *c, int64_t obj);
int k_drain(kctx *c, int mode);
int k_scan_boot(kctx *c, int64_t *objs, int64_t n);
int k_roots(kctx *c, int64_t *arr, int64_t n);
extern "Python" int64_t kr_refill(kctx *, int, int64_t);
extern "Python" int kr_flush(kctx *);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef struct {
    int64_t **slabs;
    int64_t slab_shift;
    int64_t slab_mask;
    int64_t n_slabs;
    int64_t shift;
    int64_t n_frames;
    int64_t frame_words;
    int64_t *orders;
    uint8_t *mapped;
    uint8_t *in_from;
    int8_t  *frame_belt;
    int64_t *type_addr;
    int32_t *type_ref;
    int32_t *type_size;
    int64_t n_types;
    int64_t *wl;
    int64_t wl_len, wl_cap, wl_head;
    int64_t *ins;
    int64_t ins_len, ins_cap;
    int64_t *cursor;
    int64_t *limit;
    int64_t loads, stores;
    int64_t copied_objects, copied_words;
    int64_t scanned_objects, scanned_ref_slots;
    int64_t boot_slots, root_slots;
    int64_t abort_code, abort_addr;
} kctx;

static int64_t kr_refill(kctx *, int, int64_t);
static int kr_flush(kctx *);

enum {
    AB_PYERR = 1, AB_MISALIGN = 2, AB_UNMAPPED = 3,
    AB_TYPE = 4, AB_BADFRAME = 5, AB_WL = 6
};

static inline int64_t *wordp(kctx *c, int64_t gw) {
    return c->slabs[gw >> c->slab_shift] + (gw & c->slab_mask);
}

static inline int frame_ok(kctx *c, int64_t fi) {
    return fi > 0 && fi < c->n_frames && c->mapped[fi];
}

static int64_t typefind(kctx *c, int64_t addr) {
    int64_t lo = 0, hi = c->n_types - 1;
    while (lo <= hi) {
        int64_t mid = (lo + hi) >> 1;
        int64_t v = c->type_addr[mid];
        if (v == addr) return mid;
        if (v < addr) lo = mid + 1; else hi = mid - 1;
    }
    return -1;
}

/* Forward one object: returns the to-space address, or -1 with
 * ctx->abort_code set.  Counter charging mirrors the reference
 * forward() closure exactly, including the partial charges left
 * behind by every abort path. */
int64_t k_forward(kctx *c, int64_t obj) {
    if (obj & 3) {
        c->abort_code = AB_MISALIGN; c->abort_addr = obj; return -1;
    }
    int64_t fi = obj >> c->shift;
    if (!frame_ok(c, fi)) {
        c->abort_code = AB_UNMAPPED; c->abort_addr = obj; return -1;
    }
    int64_t *w = wordp(c, obj >> 2);
    c->loads += 1;
    int64_t status = w[0];
    if (status & 1) {
        c->loads += 1;
        return status & ~(int64_t)1;
    }
    c->loads += 1;
    int64_t ti = typefind(c, w[1]);
    if (ti < 0) {
        c->abort_code = AB_TYPE; c->abort_addr = w[1]; return -1;
    }
    int32_t sc = c->type_size[ti];
    int64_t size = sc < 0 ? 3 + w[2] : sc;
    c->loads += 1;
    int belt = c->frame_belt[fi];
    int64_t need = size * 4;
    int64_t addr;
    if (need <= c->limit[belt] - c->cursor[belt]) {
        addr = c->cursor[belt];
        c->cursor[belt] += need;
    } else {
        /* Frame tail exhausted (or an oversize object): the Python
         * refill runs the reference grow/overflow/OutOfMemory path and
         * re-exports this belt's (cursor, limit).  Slabs never move, so
         * the source pointer w stays valid across the callback. */
        addr = kr_refill(c, belt, size);
        if (addr <= 0) { c->abort_code = AB_PYERR; return -1; }
    }
    int64_t *d = wordp(c, addr >> 2);
    c->loads += size;
    c->stores += size;
    memcpy(d, w, (size_t)size * 8);
    w[0] = addr | 1;
    c->stores += 1;
    if (c->wl_len >= c->wl_cap) { c->abort_code = AB_WL; return -1; }
    c->wl[c->wl_len++] = addr;
    c->copied_objects += 1;
    c->copied_words += size;
    return addr;
}

static int log_insert(kctx *c, int64_t s, int64_t t, int64_t slot) {
    if (c->ins_len + 3 > c->ins_cap) {
        if (kr_flush(c)) { c->abort_code = AB_PYERR; return -1; }
    }
    int64_t *p = c->ins + c->ins_len;
    p[0] = s; p[1] = t; p[2] = slot;
    c->ins_len += 3;
    return 0;
}

/* Scan one copied (or boot) object.
 * mode 0: gctk gray-queue drain (no barrier re-checks)
 * mode 1: Beltway gray-queue drain (order compares + insert logging)
 * mode 2: gctk boot-image rescan (charges boot_slots, not scan counters)
 */
static int scan1(kctx *c, int64_t obj, int mode) {
    if (mode != 2) c->scanned_objects += 1;
    if (obj & 3) {
        c->abort_code = AB_MISALIGN; c->abort_addr = obj + 4; return -1;
    }
    int64_t s = obj >> c->shift;
    if (!frame_ok(c, s)) {
        c->abort_code = AB_UNMAPPED; c->abort_addr = obj + 4; return -1;
    }
    int64_t *w = wordp(c, obj >> 2);
    c->loads += 1;
    int64_t target = w[1];
    int64_t ti = typefind(c, target);
    if (ti < 0) {
        c->abort_code = AB_TYPE; c->abort_addr = target; return -1;
    }
    int32_t rc = c->type_ref[ti];
    int64_t count = rc < 0 ? w[2] : rc;
    c->loads += count + 2;
    if (mode == 2) c->boot_slots += 1 + count;
    else c->scanned_ref_slots += 1 + count;
    if (target) {
        /* The type slot: always a boot-resident type object, but the
         * reference path runs the generic check, so mirror it. */
        int64_t t = target >> c->shift;
        if (t > 0 && t < c->n_frames && c->in_from[t]) {
            target = k_forward(c, target);
            if (target < 0) return -1;
            w[1] = target;
            c->stores += 1;
            t = target >> c->shift;
        }
        if (mode == 1 && t != s) {
            if (t < 0 || t >= c->n_frames) {
                c->abort_code = AB_BADFRAME; c->abort_addr = target;
                return -1;
            }
            if (c->orders[t] < c->orders[s]) {
                if (log_insert(c, s, t, obj + 4)) return -1;
            }
        }
    }
    for (int64_t i = 0; i < count; i++) {
        int64_t v = w[3 + i];
        if (!v) continue;
        int64_t t = v >> c->shift;
        if (t > 0 && t < c->n_frames && c->in_from[t]) {
            /* k_forward may refill, which restamps every frame: the
             * refill handler refreshes c->orders in place, so the
             * compares below read post-restamp stamps like the
             * reference's re-read of space.orders. */
            v = k_forward(c, v);
            if (v < 0) return -1;
            w[3 + i] = v;
            c->stores += 1;
            t = v >> c->shift;
        }
        if (mode == 1 && t != s) {
            if (t < 0 || t >= c->n_frames) {
                c->abort_code = AB_BADFRAME; c->abort_addr = v; return -1;
            }
            if (c->orders[t] < c->orders[s]) {
                if (log_insert(c, s, t, obj + ((i + 3) << 2))) return -1;
            }
        }
    }
    return 0;
}

int k_drain(kctx *c, int mode) {
    while (c->wl_head < c->wl_len) {
        int64_t obj = c->wl[c->wl_head++];
        if (scan1(c, obj, mode)) return -1;
    }
    return 0;
}

int k_scan_boot(kctx *c, int64_t *objs, int64_t n) {
    for (int64_t i = 0; i < n; i++)
        if (scan1(c, objs[i], 2)) return -1;
    return 0;
}

/* Forward one root array: the reference loop is
 *   for i, value in enumerate(array):
 *       result.root_slots += 1
 *       if value and (value >> shift) in from_frames:
 *           array[i] = forward(value)
 * The membership test skips (never aborts on) out-of-range indices,
 * so the range guard here is equivalence, not a deviation.  On abort
 * the caller copies the buffer back anyway: entries before the abort
 * carry their forwarded values, later ones their originals — exactly
 * the reference's partial effect. */
int k_roots(kctx *c, int64_t *arr, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        c->root_slots += 1;
        int64_t v = arr[i];
        if (!v) continue;
        int64_t fi = v >> c->shift;
        if (fi > 0 && fi < c->n_frames && c->in_from[fi]) {
            int64_t nv = k_forward(c, v);
            if (nv < 0) return -1;
            arr[i] = nv;
        }
    }
    return 0;
}
"""

# ----------------------------------------------------------------------
# Build / load machinery
# ----------------------------------------------------------------------
_ffi = None
_lib = None
_build_err: Optional[str] = None
_tried = False

#: The trace state the extern-Python callbacks dispatch to.  Collections
#: are stop-the-world and never nest, so a one-deep stack suffices; kept
#: as a stack anyway so a buggy nesting fails loudly in finalize.
_ACTIVE: List["_TraceState"] = []


def _build_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")


def _module_name() -> str:
    tag = hashlib.sha256((_CDEF + _SOURCE).encode()).hexdigest()[:16]
    return f"_repro_ck_{tag}"


def _load_cached(builddir: str, modname: str):
    if not os.path.isdir(builddir):
        return None
    for fn in sorted(os.listdir(builddir)):
        if fn.startswith(modname) and fn.endswith((".so", ".pyd", ".dylib")):
            spec = importlib.util.spec_from_file_location(
                modname, os.path.join(builddir, fn)
            )
            if spec is None or spec.loader is None:  # pragma: no cover
                return None
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            return mod
    return None


def _register_externs() -> None:
    @_ffi.def_extern("kr_refill")
    def kr_refill(ctx, belt, size):  # noqa: F811 - registered by name
        state = _ACTIVE[-1]
        try:
            return state.refill(int(belt), int(size))
        except BaseException as error:
            state.error = error
            return -1

    @_ffi.def_extern("kr_flush")
    def kr_flush(ctx):  # noqa: F811 - registered by name
        state = _ACTIVE[-1]
        try:
            state.drain_insert_log()
            return 0
        except BaseException as error:  # pragma: no cover - list.extend
            state.error = error
            return 1


def _build() -> None:
    """Compile (or load the cached build of) the C extension, once."""
    global _ffi, _lib, _build_err, _tried
    if _tried:
        return
    _tried = True
    try:
        import cffi
    except Exception as error:  # pragma: no cover - environment-specific
        _build_err = f"cffi is not importable: {error}"
        return
    modname = _module_name()
    builddir = _build_dir()
    try:
        mod = _load_cached(builddir, modname)
        if mod is None:
            os.makedirs(builddir, exist_ok=True)
            builder = cffi.FFI()
            builder.cdef(_CDEF)
            builder.set_source(modname, _SOURCE)
            # Compile in a scratch dir, then atomically publish the
            # extension so concurrent processes never load a half-written
            # file (os.replace is atomic within a filesystem).
            with tempfile.TemporaryDirectory(dir=builddir) as tmp:
                out = builder.compile(tmpdir=tmp, verbose=False)
                os.replace(
                    out, os.path.join(builddir, os.path.basename(out))
                )
            mod = _load_cached(builddir, modname)
        if mod is None:  # pragma: no cover - defensive
            _build_err = "compiled extension did not appear in the build dir"
            return
        _ffi, _lib = mod.ffi, mod.lib
        _register_externs()
    except Exception as error:  # pragma: no cover - no compiler, etc.
        _build_err = f"C build failed: {type(error).__name__}: {error}"


def build_error() -> Optional[str]:
    """None when the compiled backend is ready, else why it is not."""
    _build()
    return _build_err


# ----------------------------------------------------------------------
# Shared per-trace state
# ----------------------------------------------------------------------
class _TypeTable:
    """The sorted (addr -> ref_code/size_code) table the C binary search
    walks.  Types are only registered at boot, but staleness is guarded
    by comparing registry size before each trace."""

    def __init__(self, by_addr: Dict[int, object]):
        self.size = len(by_addr)
        addrs = sorted(by_addr)
        self.addr_buf = _ffi.new("int64_t[]", addrs)
        self.ref_buf = _ffi.new(
            "int32_t[]", [by_addr[a].ref_code for a in addrs]
        )
        self.size_buf = _ffi.new(
            "int32_t[]", [by_addr[a].size_code for a in addrs]
        )


class _TraceState:
    """One collection's C context plus the Python-side sync bookkeeping."""

    def __init__(self, space, types, type_table: _TypeTable,
                 from_frames, from_words: int, n_belts: int, result):
        self.space = space
        self.types = types
        self.result = result
        self.error: Optional[BaseException] = None
        self.inserts: List[int] = []  # flat (s, t, slot) triples
        #: Per-belt (dest increment or None, BumpRegion) whose cursor the
        #: C side is bumping; ``synced`` holds the cursor value the Python
        #: region last agreed with.  Lists indexed by belt: the refill
        #: round-trip is the compiled trace's hot Python edge.
        self.belt_state: List[Optional[tuple]] = [None] * n_belts
        self.synced: List[int] = [0] * n_belts
        self._n_slabs = 0
        self._slab_keep: List[object] = []
        #: Frame indices acquired since the last (re)sync, fed by the
        #: space's acquire hook so a refill patches exactly the frames
        #: that changed instead of rebuilding the whole C view.
        self._acquired: List[int] = []
        #: Subclasses needing order compares (Beltway drains) set these;
        #: gctk modes never read ``ctx.orders``.
        self._needs_orders = False
        self._restamp_heap = None
        self._restamp_seen = 0
        self._roots_buf = None
        self._roots_cap = 0

        ffi = _ffi
        # Frame-table capacity: frames only grow during a trace (releases
        # happen in reclaim, after), bounded by the remaining heap budget.
        cap = len(space._frames) + space.heap_frames_free() + 2
        self._cap = cap
        ctx = ffi.new("kctx *")
        self.ctx = ctx
        self._slab_arr = ffi.new("int64_t *[]", (cap >> 9) + 2)
        ctx.slabs = self._slab_arr
        slab_words = space.slab_frames * space.frame_words
        ctx.slab_shift = slab_words.bit_length() - 1
        ctx.slab_mask = slab_words - 1
        ctx.shift = space.frame_shift
        ctx.frame_words = space.frame_words
        self._orders_buf = ffi.new("int64_t[]", cap)
        self._mapped_buf = ffi.new("uint8_t[]", cap)
        self._in_from_buf = ffi.new("uint8_t[]", cap)
        self._belt_buf = ffi.new("int8_t[]", cap)
        ctx.orders = self._orders_buf
        ctx.mapped = self._mapped_buf
        ctx.in_from = self._in_from_buf
        ctx.frame_belt = self._belt_buf
        ctx.type_addr = type_table.addr_buf
        ctx.type_ref = type_table.ref_buf
        ctx.type_size = type_table.size_buf
        ctx.n_types = type_table.size
        # Every copied object is at least HEADER_WORDS long and comes out
        # of the collected increments' allocated words, so this worklist
        # can never overflow on a well-formed heap.
        wl_cap = from_words // HEADER_WORDS + 8
        self._wl_buf = ffi.new("int64_t[]", wl_cap)
        ctx.wl = self._wl_buf
        ctx.wl_cap = wl_cap
        self._ins_buf = ffi.new("int64_t[]", _INS_TRIPLES * 3)
        ctx.ins = self._ins_buf
        ctx.ins_cap = _INS_TRIPLES * 3
        self._cursor_buf = ffi.new("int64_t[]", n_belts)
        self._limit_buf = ffi.new("int64_t[]", n_belts)
        ctx.cursor = self._cursor_buf
        ctx.limit = self._limit_buf
        for fi in from_frames:
            self._in_from_buf[fi] = 1

    # -- C view maintenance --------------------------------------------
    def _export_views(self) -> None:
        """Export slab pointers, orders and the mapped set to C — the
        full rebuild, run once at trace start.  ``resync`` keeps the view
        current across refills.  Subclasses call this after setting
        ``_needs_orders``; then they install the acquire hook."""
        self._register_slabs()
        space = self.space
        ctx = self.ctx
        n = len(space._frames)
        ctx.n_frames = n
        if self._needs_orders:
            self._orders_buf[0:n] = space.orders
        # mapped_bytes mirrors _frames[i].allocated byte-for-byte.
        _ffi.memmove(self._mapped_buf, space.mapped_bytes, n)
        space.acquire_hook = self._acquired.append

    def _register_slabs(self) -> None:
        space = self.space
        slabs = space._slabs
        for i in range(self._n_slabs, len(slabs)):
            buf = _ffi.from_buffer("int64_t[]", slabs[i], require_writable=True)
            self._slab_keep.append(buf)
            self._slab_arr[i] = buf
        self._n_slabs = len(slabs)
        self.ctx.n_slabs = len(slabs)

    def resync(self) -> None:
        """Patch the C view after a refill: only what a refill can change
        — new slabs (rare), the frames it acquired, and (Beltway only) a
        wholesale restamp when an increment overflowed."""
        space = self.space
        ctx = self.ctx
        if len(space._slabs) > self._n_slabs:
            self._register_slabs()
        acquired = self._acquired
        if acquired:
            ctx.n_frames = len(space._frames)
            orders = space.orders
            mapped = self._mapped_buf
            obuf = self._orders_buf
            for fi in acquired:
                mapped[fi] = 1
                obuf[fi] = orders[fi]
            del acquired[:]
        heap = self._restamp_heap
        if heap is not None:
            epoch = heap.restamp_epoch
            if epoch != self._restamp_seen:
                self._restamp_seen = epoch
                n = ctx.n_frames
                self._orders_buf[0:n] = space.orders[:n]

    # -- bump-region synchronisation -----------------------------------
    def sync_belt(self, belt: int) -> None:
        """Fold the C-side cursor advance since the last sync back into
        the Python region (allocated_words, used_words, cursor)."""
        state = self.belt_state[belt]
        if state is None:
            return
        dest, region = state
        cursor = self._cursor_buf[belt]
        delta = (cursor - self.synced[belt]) >> 2
        if delta:
            region._cursor = cursor
            region._current.used_words = (cursor - region._frame_base) // 4
            region.allocated_words += delta
            if dest is not None:
                dest.copied_in_words += delta
            self.synced[belt] = cursor

    def export_belt(self, belt: int, dest, region) -> None:
        """Hand a (possibly new) destination region's tail to C."""
        self.belt_state[belt] = (dest, region)
        self._cursor_buf[belt] = region._cursor
        self._limit_buf[belt] = region._limit
        self.synced[belt] = region._cursor

    def refill(self, belt: int, size: int) -> int:
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- insert log -----------------------------------------------------
    def drain_insert_log(self) -> None:
        ctx = self.ctx
        n = int(ctx.ins_len)
        if n:
            self.inserts.extend(_ffi.unpack(self._ins_buf, n))
            ctx.ins_len = 0

    # -- wrappers --------------------------------------------------------
    def fwd(self, obj: int) -> int:
        addr = _lib.k_forward(self.ctx, obj)
        if addr < 0:
            self.raise_abort()
        return int(addr)

    def drain(self, mode: int) -> None:
        if _lib.k_drain(self.ctx, mode) < 0:
            self.raise_abort()

    def scan_boot(self, objs: List[int]) -> None:
        if not objs:
            return
        buf = _ffi.new("int64_t[]", objs)
        if _lib.k_scan_boot(self.ctx, buf, len(objs)) < 0:
            self.raise_abort()

    def forward_roots(self, array: List[int]) -> None:
        """Run one root array through ``k_roots``, updating it in place.

        The whole buffer is copied back even on abort, so the array shows
        the reference's partial effect (forwarded prefix, original tail).
        """
        n = len(array)
        if n == 0:
            return
        buf = self._roots_buf
        if buf is None or self._roots_cap < n:
            self._roots_cap = max(n, 2 * self._roots_cap, 256)
            buf = self._roots_buf = _ffi.new("int64_t[]", self._roots_cap)
        buf[0:n] = array
        status = _lib.k_roots(self.ctx, buf, n)
        array[0:n] = _ffi.unpack(buf, n)
        if status < 0:
            self.raise_abort()

    def raise_abort(self) -> None:
        ctx = self.ctx
        code = int(ctx.abort_code)
        addr = int(ctx.abort_addr)
        ctx.abort_code = 0
        if self.error is not None:
            error, self.error = self.error, None
            raise error
        if code == _AB_MISALIGN:
            raise InvalidAddress(f"misaligned load from {addr:#x}")
        if code == _AB_UNMAPPED:
            raise InvalidAddress(f"load from unmapped address {addr:#x}")
        if code == _AB_TYPE:
            self.types.by_addr(addr)  # raises HeapCorruption
            raise HeapCorruption(  # pragma: no cover - table was stale
                f"substrate trace: type table missed {addr:#x}"
            )
        if code == _AB_BADFRAME:
            raise HeapCorruption(
                f"substrate trace: pointer {addr:#x} targets a frame "
                f"outside the frame table"
            )
        if code == _AB_WL:  # pragma: no cover - capacity is provably safe
            raise HeapCorruption("substrate trace: worklist overflow")
        raise RuntimeError(  # pragma: no cover - defensive
            f"substrate trace aborted with unknown code {code}"
        )

    # -- finalisation ----------------------------------------------------
    def flush_counters(self) -> None:
        """Fold the C work counters into the space and the result.

        Runs on every exit path (success or abort), so the observable
        counter state matches the reference's at the same point.
        """
        ctx = self.ctx
        space = self.space
        space.load_count += int(ctx.loads)
        space.store_count += int(ctx.stores)
        ctx.loads = 0
        ctx.stores = 0
        result = self.result
        result.copied_objects += int(ctx.copied_objects)
        result.copied_words += int(ctx.copied_words)
        result.scanned_objects += int(ctx.scanned_objects)
        result.scanned_ref_slots += int(ctx.scanned_ref_slots)
        result.boot_slots_scanned += int(ctx.boot_slots)
        result.root_slots += int(ctx.root_slots)
        ctx.copied_objects = ctx.copied_words = 0
        ctx.scanned_objects = ctx.scanned_ref_slots = 0
        ctx.boot_slots = ctx.root_slots = 0

    def finalize(self) -> None:
        self.space.acquire_hook = None
        self.flush_counters()
        for belt in range(len(self.belt_state)):
            self.sync_belt(belt)
        self.drain_insert_log()


# ----------------------------------------------------------------------
# Beltway trace engine
# ----------------------------------------------------------------------
class _BeltwayState(_TraceState):
    def __init__(self, collector, from_frames, from_increment,
                 from_words, result, type_table):
        heap = collector.heap
        super().__init__(
            heap.space, heap.model.types, type_table, from_frames,
            from_words, len(heap.belts), result,
        )
        self.collector = collector
        self.heap = heap
        self.from_frames = from_frames
        self.dests: Dict[object, object] = {}
        belt_buf = self._belt_buf
        for fi, inc in from_increment.items():
            belt_buf[fi] = collector._target_belt(inc)
        self._needs_orders = True
        self._restamp_heap = heap
        self._restamp_seen = heap.restamp_epoch
        self._export_views()

    def refill(self, belt: int, size: int) -> int:
        self.sync_belt(belt)
        addr = self.collector._copy_alloc_in_belt(
            belt, size, self.dests, self.from_frames
        )
        dest = self.dests[belt]
        self.export_belt(belt, dest, dest.region)
        self.resync()
        return addr

    def replay_inserts(self) -> None:
        """Replay the drain-discovered inserts in discovery order.

        Runs after the C drain and before ``drop_frames`` — the window in
        which nothing reads the remsets, so the deferral is unobservable
        (DESIGN §13).  The attribute lookup happens here, at replay time,
        so fault-injection patches on ``insert`` stay honoured.
        """
        triples = self.inserts
        if triples:
            insert = self.heap.remsets.insert
            for k in range(0, len(triples), 3):
                insert(triples[k], triples[k + 1], triples[k + 2])
            self.inserts = []


class BeltwayTracer:
    """Compiled replacement for the trace phase of ``Collector.collect``.

    Only instantiated for policies with ``kernel_traceable = True`` (no
    destination contexts: every copy routes by target belt alone), so
    the root/slot context plumbing reduces to None everywhere.
    """

    def __init__(self, collector):
        _build()
        if _build_err is not None:  # pragma: no cover - probed earlier
            raise RuntimeError(_build_err)
        self.collector = collector
        self._type_table: Optional[_TypeTable] = None

    def _types(self) -> _TypeTable:
        by_addr = self.collector.heap.model.types._by_addr
        table = self._type_table
        if table is None or table.size != len(by_addr):
            table = self._type_table = _TypeTable(by_addr)
        return table

    def trace(self, from_frames, from_increment, result) -> None:
        collector = self.collector
        heap = collector.heap
        space = heap.space
        shift = space.frame_shift
        state = _BeltwayState(
            collector, from_frames, from_increment, result.from_words,
            result, self._types(),
        )
        _ACTIVE.append(state)
        try:
            fwd = state.fwd
            # Mutator roots (reference order; root_slots counted in C).
            for array in heap.root_arrays:
                state.forward_roots(array)
            # Remembered slots into the collected frames.  Stays Python-
            # side: record_collector_pointer inserts must land *before*
            # the drain-discovered ones, exactly as in the reference.
            remset_slots = list(
                heap.remsets.slots_into(from_frames, from_frames)
            )
            barrier = heap.barrier
            load = space.load
            store = space.store
            for slot in remset_slots:
                result.remset_slots += 1
                target = load(slot)
                if target and (target >> shift) in from_frames:
                    new_target = fwd(target)
                    store(slot, new_target)
                    barrier.record_collector_pointer(slot, slot, new_target)
            # Transitive closure, entirely in C.
            state.drain(1)
        finally:
            _ACTIVE.pop()
            state.finalize()
        state.replay_inserts()


# ----------------------------------------------------------------------
# gctk trace engine
# ----------------------------------------------------------------------
class _GctkState(_TraceState):
    def __init__(self, plan, from_frames, from_words, region,
                 alloc_copy, result, type_table):
        super().__init__(
            plan.space, plan.model.types, type_table, from_frames,
            from_words, 1, result,
        )
        self.alloc_copy = alloc_copy
        self.region = region
        self._export_views()
        # The destination may already have a partially filled frame
        # (Appel minors copy into the live mature region): hand its tail
        # to C up front.
        self.export_belt(0, None, region)

    def refill(self, belt: int, size: int) -> int:
        self.sync_belt(0)
        addr = self.alloc_copy(size)
        self.export_belt(0, None, self.region)
        self.resync()
        return addr


class GctkTracer:
    """Compiled replacement for :func:`repro.gctk.copying.cheney_trace`."""

    def __init__(self, plan):
        _build()
        if _build_err is not None:  # pragma: no cover - probed earlier
            raise RuntimeError(_build_err)
        self.plan = plan
        self._type_table: Optional[_TypeTable] = None

    def _types(self) -> _TypeTable:
        by_addr = self.plan.model.types._by_addr
        table = self._type_table
        if table is None or table.size != len(by_addr):
            table = self._type_table = _TypeTable(by_addr)
        return table

    def trace(self, root_arrays, ssb_slots, boot_objects, from_frames,
              region, alloc_copy, result) -> None:
        plan = self.plan
        space = plan.space
        shift = space.frame_shift
        from_words = result.from_words
        state = _GctkState(
            plan, from_frames, from_words, region, alloc_copy, result,
            self._types(),
        )
        _ACTIVE.append(state)
        try:
            fwd = state.fwd
            for array in root_arrays:
                state.forward_roots(array)
            load = space.load
            store = space.store
            for slot in ssb_slots:
                result.remset_slots += 1
                target = load(slot)
                if target and (target >> shift) in from_frames:
                    store(slot, fwd(target))
            # Boot-image rescan and gray-queue drain, both in C.
            state.scan_boot(list(boot_objects))
            state.drain(0)
        finally:
            _ACTIVE.pop()
            state.finalize()
