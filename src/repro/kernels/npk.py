"""numpy substrate kernels: vectorised batch paths over the slab storage.

Frame storage is carved out of contiguous ``array('q')`` slabs (see
:mod:`repro.heap.space`), so ``addr >> 2`` is a *global* word index and
one ``np.frombuffer`` view per slab addresses the whole heap.  The
kernels here exploit that for the batchable hot loops:

* :func:`remset_sync` — drain-time SSB dedup via first-occurrence
  ``np.unique``, preserving the canonical first-insertion drain order;
* :class:`BatchOps` — per-VM batched mutator kernels: ``write_ref_batch``
  (the Fig. 4 barrier vectorised: order compares, null filtering and the
  store scatter in numpy, remset inserts replayed in original order) and
  ``alloc_batch`` (frame-tail segments of bump allocations with strided
  header initialisation).

Counter bit-identity (DESIGN §13): a batch call is defined as equivalent
to the scalar sequence it replaces.  The vector paths therefore
*validate everything first* using uncounted peeks, and apply counted
effects only when no element can fault; any anomaly — misalignment, an
unmapped frame, an unknown type, an out-of-range slot, an attached
sanitizer or armed fault seam — reruns the whole batch through the
scalar reference path from the start, reproducing partial effects and
the exact exception at the exact counter state.
"""

from __future__ import annotations

import numpy as np

from ..heap.objectmodel import HEADER_WORDS

#: Pending SSB buffers shorter than this drain through the reference
#: loop; the numpy dedup's fixed overhead only pays off beyond it.
SYNC_THRESHOLD = 16


def remset_sync(entries: dict, buf) -> tuple:
    """Merge pending SSB ``buf`` into the ``entries`` dict-as-set.

    Returns ``(fresh, dups)`` with the identical dedup accounting and
    the identical first-insertion ordering of new keys as the reference
    loop in :meth:`repro.core.remset.RememberedSets._sync`.
    """
    arr = np.frombuffer(buf, dtype=np.int64)
    uniq, first = np.unique(arr, return_index=True)
    if len(uniq) == len(arr):
        ordered = arr  # no duplicates inside the buffer: keep raw order
    else:
        ordered = uniq[np.argsort(first, kind="stable")]
    if entries:
        existing = np.fromiter(entries.keys(), np.int64, len(entries))
        ordered = ordered[
            ~np.isin(ordered, existing, assume_unique=True)
        ]
    fresh = len(ordered)
    for slot in ordered.tolist():
        entries[slot] = None
    return fresh, len(arr) - fresh


class BatchOps:
    """Batched mutator kernels bound to one VM (numpy tiers).

    Only the Beltway frame barrier is vectorised; gctk plans (boundary
    barrier) and any batch that trips a validation or purity guard run
    the scalar reference loop instead — same effects, same counters.
    """

    def __init__(self, vm):
        self.vm = vm
        self.space = vm.space
        plan = vm.plan
        self.plan = plan
        self._is_beltway = hasattr(plan, "belts")
        # Purity pins: batching is only sound while the compiled scalar
        # paths are the pristine ones (no fault-injection recompiles) and
        # the remset insert seam is unpatched.
        self._pristine_write = plan.write_ref_field
        self._pristine_init = plan._init_object
        self._np_slabs = []
        self._slab_words = self.space.slab_frames * self.space.frame_words

    # ------------------------------------------------------------------
    def _views(self):
        slabs = self.space._slabs
        if len(self._np_slabs) != len(slabs):
            self._np_slabs = [np.frombuffer(s, dtype=np.int64) for s in slabs]
        return self._np_slabs

    def _pure(self) -> bool:
        vm = self.vm
        plan = self.plan
        rs = plan.remsets
        return (
            vm.mutator_observer is None
            and "write_ref" not in vm.__dict__
            and "alloc" not in vm.__dict__
            and plan.write_ref_field is self._pristine_write
            and plan._init_object is self._pristine_init
            and "insert" not in rs.__dict__
            and "append" not in rs.__dict__
        )

    def _gather(self, idx):
        """Read words at global slot indices ``idx`` (uncounted peek)."""
        views = self._views()
        if len(views) == 1:
            return views[0][idx]
        out = np.empty(len(idx), dtype=np.int64)
        slab = idx // self._slab_words
        for si in range(len(views)):
            mask = slab == si
            if mask.any():
                out[mask] = views[si][idx[mask] - si * self._slab_words]
        return out

    def _scatter(self, idx, values):
        """Write ``values`` at global slot indices (duplicate indices:
        last occurrence wins, matching the sequential final state)."""
        views = self._views()
        if len(views) == 1:
            views[0][idx] = values
            return
        slab = idx // self._slab_words
        for si in range(len(views)):
            mask = slab == si
            if mask.any():
                views[si][idx[mask] - si * self._slab_words] = values[mask]

    def _mapped_mask(self) -> np.ndarray:
        frames = self.space._frames
        return np.fromiter(
            (f is not None and f.allocated for f in frames),
            dtype=bool,
            count=len(frames),
        )

    # ------------------------------------------------------------------
    # Batched barriered stores
    # ------------------------------------------------------------------
    def try_write_ref_batch(self, objs, indexes, values) -> bool:
        """Vector path for ``vm.write_ref_batch``.

        Returns True having performed every write (counters identical to
        the scalar sequence), or False having performed *nothing* — the
        caller then replays the batch through the scalar path.
        """
        if not self._is_beltway or not self._pure():
            return False
        space = self.space
        o = np.ascontiguousarray(objs, dtype=np.int64)
        i = np.ascontiguousarray(indexes, dtype=np.int64)
        v = np.ascontiguousarray(values, dtype=np.int64)
        n = len(o)
        if n == 0:
            return True
        if len(i) != n or len(v) != n:
            raise ValueError("write_ref_batch arrays must share one length")
        # -- validation (uncounted peeks) --------------------------------
        if (((o | v) & 3) != 0).any():
            return False
        shift = space.frame_shift
        fi = o >> shift
        mapped = self._mapped_mask()
        if (fi <= 0).any() or (fi >= len(mapped)).any() or not mapped[fi].all():
            return False
        w = o >> 2  # global slot index of the status word
        type_addrs = self._gather(w + 1)
        types = self.plan.model.types
        by_addr = types._by_addr
        tab = sorted(by_addr)
        tab_np = np.asarray(tab, dtype=np.int64)
        pos = np.searchsorted(tab_np, type_addrs)
        if (pos >= len(tab_np)).any() or (tab_np[np.minimum(pos, len(tab_np) - 1)] != type_addrs).any():
            return False
        ref_codes = np.asarray(
            [by_addr[a].ref_code for a in tab], dtype=np.int64
        )[pos]
        counts = np.where(ref_codes < 0, self._gather(w + 2), ref_codes)
        if ((i < 0) | (i >= counts)).any():
            return False
        vfi = v >> shift
        if (vfi < 0).any() or (vfi >= len(mapped)).any():
            return False
        # -- apply (counted, no element can fault now) -------------------
        space.load_count += 2 * n
        stats = self.plan.barrier.stats
        stats.fast_path += n
        nulls = v == 0
        nnull = int(nulls.sum())
        stats.null_stores += nnull
        orders = np.fromiter(space.orders, np.int64, len(space.orders))
        slow = (~nulls) & (vfi != fi) & (orders[vfi] < orders[fi])
        nslow = int(slow.sum())
        slots = o + ((i + 3) << 2)
        if nslow:
            stats.slow_path += nslow
            insert = self.plan.remsets.insert
            for k in np.flatnonzero(slow).tolist():
                insert(int(fi[k]), int(vfi[k]), int(slots[k]))
        self._scatter(slots >> 2, v)
        space.store_count += n
        return True

    # ------------------------------------------------------------------
    # Batched allocation + header init
    # ------------------------------------------------------------------
    def try_alloc_segment(self, desc, length: int, count: int):
        """Bump-allocate up to ``count`` ``desc`` objects from the current
        frame tail in one strided operation.

        Returns a list of addresses (possibly shorter than ``count``; the
        caller scalar-allocates the remainder) or None when the vector
        path does not apply.  Counter accounting is identical to the same
        number of scalar ``plan.alloc`` calls.
        """
        if not self._is_beltway or not self._pure():
            return None
        plan = self.plan
        inc = plan.allocation_increment
        if inc is None:
            return None
        region = inc.region
        size = desc.size_words(length)
        if size <= 0:
            return None
        k = min(count, region.frame_tail_words() // size)
        if k <= 0:
            return None
        space = self.space
        base = region._cursor
        s = base >> space.frame_shift
        t = desc.addr >> space.frame_shift
        if desc.addr == 0 or (t != s and space.orders[t] < space.orders[s]):
            # TIB stores into heap objects are boot-targeted in every real
            # configuration; anything else takes the scalar barrier path.
            return None
        # Raw bump of k objects (equivalent to k region.alloc calls).
        new_cursor = base + k * size * 4
        region._cursor = new_cursor
        region._current.used_words = (new_cursor - region._frame_base) // 4
        region.allocated_words += k * size
        plan.allocations += k
        plan.allocated_words += k * size
        # Strided header init: status=0, type, length (3 stores/object).
        g0 = base >> 2
        si = g0 // self._slab_words
        view = self._views()[si]
        idx = (g0 - si * self._slab_words) + np.arange(k, dtype=np.int64) * size
        view[idx] = 0
        view[idx + 1] = desc.addr
        view[idx + 2] = length
        space.store_count += 3 * k
        plan.barrier.stats.fast_path += k
        return list(range(base, base + k * size * 4, size * 4))
