"""repro.kernels: the pluggable substrate-kernel tier (DESIGN §13).

The reproduction's five hottest loops — the mutator ``store_ref`` /
``init_object`` barrier paths, the Cheney scan/copy trace (Beltway's
:mod:`repro.core.collector` and the gctk baselines'
:mod:`repro.gctk.copying`), remset SSB insert + drain-with-dedup, and the
frame bulk load/store/copy kernels — can each be lowered from the pure
Python reference onto compiled substrates:

* ``numpy`` — vectorised batch kernels: drain-time remset dedup, the
  batched mutator store/alloc paths (:class:`~repro.kernels.npk.BatchOps`);
* ``cffi`` — an ahead-of-time-compiled C backend for the loops numpy
  cannot batch (the pointer-chasing copy trace), layered *on top of* the
  numpy kernels when numpy is present.

Tier contract (enforced by the golden-counter suite): every tier produces
**bit-identical counters** — memory access counts, barrier fast/slow/null
splits, remset insert/duplicate totals, every ``CollectionResult`` field,
and identical error behaviour on identical inputs.  A kernel that cannot
preserve that contract for some input falls back to the reference path
for that operation; a backend that fails to import or compile degrades
the whole tier gracefully (``import repro`` never breaks because numpy
or cffi is absent — see :func:`available`).

Selection is explicit and layered per DESIGN §9: ``tier="python" |
"numpy" | "cffi" | "auto"`` at VM construction, defaulting to the
``REPRO_SUBSTRATE_TIER`` environment variable and then to ``auto``
(fastest available).  ``beltway-bench --tier`` forwards the same choice.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

#: Environment variable consulted when no explicit tier is passed.
TIER_ENV = "REPRO_SUBSTRATE_TIER"

#: Fallback order for ``auto`` (fastest first) and for graceful
#: degradation when a requested backend is unavailable.
TIER_ORDER = ("cffi", "numpy", "python")

_availability_cache: Dict[str, str] = {}


def _probe_numpy() -> str:
    try:
        import numpy  # noqa: F401
    except Exception as error:  # pragma: no cover - environment-specific
        return f"unavailable: {error}"
    return f"ok (numpy {numpy.__version__})"


def _probe_cffi() -> str:
    try:
        from . import cik
    except Exception as error:  # pragma: no cover - environment-specific
        return f"unavailable: {error}"
    error = cik.build_error()
    if error:
        return f"unavailable: {error}"
    return "ok (compiled)"


def available() -> Dict[str, str]:
    """Introspect backend availability: tier name -> status string.

    A tier is usable iff its status starts with ``"ok"``.  The ``cffi``
    probe compiles (or loads the cached build of) the C backend, so a
    truthful answer may take a moment the first time; results are cached
    for the process lifetime.
    """
    if not _availability_cache:
        _availability_cache["python"] = "ok (reference)"
        _availability_cache["numpy"] = _probe_numpy()
        _availability_cache["cffi"] = _probe_cffi()
    return dict(_availability_cache)


class KernelSet:
    """The resolved kernel bundle one VM (and its plan) runs on.

    ``name`` is the tier actually in effect; ``requested`` what the caller
    asked for (they differ when a missing backend degraded gracefully).
    Capability attributes are ``None`` when the backing substrate is
    absent, so consumers probe with ``if kernels.x is not None``:

    * ``npk`` — the numpy kernel module (remset dedup, batch ops);
    * ``cik`` — the compiled C kernel module (copy-trace engines).
    """

    def __init__(self, name: str, requested: str):
        self.name = name
        self.requested = requested
        self.npk = None
        self.cik = None
        if name in ("numpy", "cffi"):
            from . import npk

            self.npk = npk
        if name == "cffi":
            from . import cik

            self.cik = cik

    # -- factory helpers consumed by the heap/plan layers ----------------
    def remset_sync(self):
        """The drain-time dedup kernel, or None for the reference loop."""
        return self.npk.remset_sync if self.npk is not None else None

    def batch_ops(self, vm):
        """Per-VM batched mutator kernels (numpy tiers), else None."""
        return self.npk.BatchOps(vm) if self.npk is not None else None

    def beltway_tracer(self, collector):
        """A compiled Beltway copy-trace engine, else None."""
        if self.cik is None:
            return None
        return self.cik.BeltwayTracer(collector)

    def gctk_tracer(self, plan):
        """A compiled gctk Cheney-trace engine, else None."""
        if self.cik is None:
            return None
        return self.cik.GctkTracer(plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelSet {self.name} (requested {self.requested})>"


def resolve(tier: Optional[str] = None) -> KernelSet:
    """Resolve a tier request into a :class:`KernelSet`.

    ``None`` consults :data:`TIER_ENV`, then defaults to ``auto``.  A
    request for an unavailable backend degrades to the next tier in
    :data:`TIER_ORDER` rather than raising — missing accelerators must
    never break a run (ISSUE 6 satellite; the tests skip-with-reason via
    :func:`available` instead).
    """
    requested = tier or os.environ.get(TIER_ENV, "") or "auto"
    requested = requested.strip().lower()
    status = available()
    if requested == "auto":
        for name in TIER_ORDER:
            if status[name].startswith("ok"):
                return KernelSet(name, "auto")
        return KernelSet("python", "auto")  # pragma: no cover - python always ok
    if requested not in TIER_ORDER:
        from ..errors import ConfigError

        raise ConfigError(
            f"unknown substrate tier {requested!r}; expected one of "
            f"python/numpy/cffi/auto"
        )
    if status[requested].startswith("ok"):
        return KernelSet(requested, requested)
    # Graceful degradation: drop to the best available lower tier.
    start = TIER_ORDER.index(requested)
    for name in TIER_ORDER[start + 1:]:
        if status[name].startswith("ok"):
            return KernelSet(name, requested)
    return KernelSet("python", requested)
