"""Declarative model of a request-driven server workload.

A :class:`ServerWorkloadSpec` is to the open-loop engine what
:class:`~repro.bench.engine.WorkloadSpec` is to the closed-loop one: a
complete, serialisable description of the scenario.  It reuses the same
allocation-site vocabulary (:class:`~repro.bench.engine.AllocSite`) and
lifetime machinery, and adds the server-shaped levers: an arrival process,
a weighted task mix, session lifecycle, and a TTL'd cache directory.

Lifetime names fall into two groups:

* the three *reserved scopes* — ``request`` (dropped when the request
  completes), ``session`` (written into the owning session's object graph,
  dying when the connection closes) and ``cache`` (inserted into the cache
  directory, dying when its TTL expires);
* *named byte-classes* declared under ``lifetimes`` exactly like the SPEC
  specs (death after N bytes of subsequent allocation).

Everything here is pure data with validation; the execution semantics live
in :mod:`repro.workloads.engine`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..bench.engine import WORKLOAD_TYPE_NAMES, AllocSite
from ..bench.lifetime import LifetimeClass
from ..errors import ConfigError
from ..heap.address import WORD_BYTES
from ..heap.objectmodel import HEADER_WORDS
from ..runtime.vm import EXPERIMENT_FRAME_SHIFT
from ..sim.cost import CYCLES_PER_SECOND
from ..sim.locality import NO_LOCALITY, LocalityModel

#: Lifetime names with engine-defined semantics (not byte-sampled).
RESERVED_LIFETIMES: Tuple[str, ...] = ("request", "session", "cache")

#: Arrival processes the generator implements.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("poisson", "bursty")

#: Largest refarr/buf element count a single frame can hold at the
#: harness frame size — the reproduction, like GCTk, has no large-object
#: space, so bigger arrays can never allocate.  Validated up front so a
#: spec file fails at load time, not mid-run.
MAX_ARRAY_LENGTH: int = (
    (1 << EXPERIMENT_FRAME_SHIFT) // WORD_BYTES - HEADER_WORDS
)

#: Word sizes of the shared vocabulary (header included), mirrored from
#: bench.engine.STANDARD_TYPES for the allocation-volume estimate below
#: (refarr/buf are header-only; elements counted separately).
_TYPE_WORDS = {"small": 6, "node": 8, "big": 16, "refarr": 3, "buf": 3}


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival process, in requests per simulated second.

    ``poisson`` draws i.i.d. exponential inter-arrival gaps at
    ``rate_rps``.  ``bursty`` alternates ``on_s`` windows at
    ``rate_rps * burst_multiplier`` with ``off_s`` windows at the base
    rate (a diurnal pattern compressed to milliseconds)."""

    process: str = "poisson"
    rate_rps: float = 1000.0
    burst_multiplier: float = 4.0
    on_s: float = 0.05
    off_s: float = 0.15

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r} "
                f"(have {ARRIVAL_PROCESSES})"
            )
        if self.rate_rps <= 0:
            raise ConfigError(
                f"arrival rate must be > 0 requests/s (got {self.rate_rps})"
            )
        if self.process == "bursty":
            if self.burst_multiplier <= 0:
                raise ConfigError("burst_multiplier must be > 0")
            if self.on_s <= 0 or self.off_s <= 0:
                raise ConfigError("bursty windows on_s/off_s must be > 0")

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (equals rate_rps for poisson)."""
        if self.process != "bursty":
            return self.rate_rps
        period = self.on_s + self.off_s
        return self.rate_rps * (
            (self.on_s * self.burst_multiplier + self.off_s) / period
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SessionSpec:
    """Connection/session lifecycle parameters.

    The engine keeps up to ``max_concurrent`` open sessions; each serves a
    budget of requests drawn from ``requests_per_session`` and then closes
    (its object graph becomes garbage) before a fresh session replaces it.
    Each session owns a ``slots``-wide reference array seeded with
    ``seed_objects`` survivors — the session-scoped live set."""

    max_concurrent: int = 8
    requests_per_session: Tuple[int, int] = (4, 32)
    slots: int = 8
    seed_objects: int = 4

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigError("sessions.max_concurrent must be >= 1")
        lo, hi = self.requests_per_session
        if lo < 1 or hi < lo:
            raise ConfigError(
                "sessions.requests_per_session must be a [lo, hi] range "
                f"with 1 <= lo <= hi (got {list(self.requests_per_session)})"
            )
        if not 1 <= self.slots <= MAX_ARRAY_LENGTH:
            raise ConfigError(
                f"sessions.slots must be in [1, {MAX_ARRAY_LENGTH}] "
                "(one frame holds the session root array)"
            )
        if not 0 <= self.seed_objects <= self.slots:
            raise ConfigError(
                "sessions.seed_objects must be in [0, sessions.slots]"
            )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["requests_per_session"] = list(self.requests_per_session)
        return data


@dataclass(frozen=True)
class CacheSpec:
    """TTL'd cache directory shared by every session.

    ``cache``-lifetime allocations are inserted into a ``slots``-wide
    immortal directory with an expiry drawn from ``ttl_s``; the engine
    nulls expired entries as the clock passes them — medium-lived objects
    whose deaths are *time*-driven, not allocation-driven."""

    slots: int = 64
    ttl_s: Tuple[float, float] = (0.02, 0.1)

    def __post_init__(self) -> None:
        if self.slots < 0:
            raise ConfigError("cache.slots must be >= 0")
        lo, hi = self.ttl_s
        if lo <= 0 or hi < lo:
            raise ConfigError(
                "cache.ttl_s must be a [lo, hi] range with 0 < lo <= hi "
                f"(got {list(self.ttl_s)})"
            )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["ttl_s"] = list(self.ttl_s)
        return data


@dataclass(frozen=True)
class RequestTask:
    """One weighted entry of the task mix (a request *kind*).

    Serving a request of this kind allocates roughly ``request_bytes``
    through the task's site table (weighted like a WorkloadSpec's sites),
    performs ``cache_lookups`` directory probes and ``reads`` field reads,
    and charges ``work`` computation units."""

    name: str
    weight: float
    sites: Tuple[AllocSite, ...]
    request_bytes: Tuple[int, int] = (128, 512)
    cache_lookups: int = 0
    reads: float = 0.0
    work: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a task needs a name")
        if self.weight <= 0:
            raise ConfigError(
                f"task {self.name!r}: weight must be > 0 (got {self.weight})"
            )
        if not self.sites:
            raise ConfigError(f"task {self.name!r}: needs allocation sites")
        lo, hi = self.request_bytes
        if lo < 1 or hi < lo:
            raise ConfigError(
                f"task {self.name!r}: request_bytes must be a [lo, hi] "
                f"range with 1 <= lo <= hi (got {list(self.request_bytes)})"
            )
        if self.cache_lookups < 0 or self.reads < 0 or self.work < 0:
            raise ConfigError(
                f"task {self.name!r}: cache_lookups/reads/work must be >= 0"
            )

    def mean_request_bytes(self) -> float:
        lo, hi = self.request_bytes
        return (lo + hi) / 2.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "request_bytes": list(self.request_bytes),
            "cache_lookups": self.cache_lookups,
            "reads": self.reads,
            "work": self.work,
            "sites": [
                {
                    "weight": s.weight,
                    "type": s.type_name,
                    "lifetime": s.lifetime,
                    "length": list(s.length),
                    "link_prob": s.link_prob,
                    "work": s.work,
                }
                for s in self.sites
            ],
        }


@dataclass(frozen=True)
class ServerWorkloadSpec:
    """Complete declarative description of one server workload."""

    name: str
    tasks: Tuple[RequestTask, ...]
    arrival: ArrivalSpec = ArrivalSpec()
    duration_s: float = 0.5
    max_requests: int = 0  # 0 = bounded by duration only
    sessions: SessionSpec = SessionSpec()
    cache: CacheSpec = CacheSpec()
    lifetimes: Mapping[str, LifetimeClass] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a server workload needs a name")
        if self.duration_s <= 0:
            raise ConfigError(
                f"{self.name}: duration_s must be > 0 (got {self.duration_s})"
            )
        if self.max_requests < 0:
            raise ConfigError(f"{self.name}: max_requests must be >= 0")
        if not self.tasks:
            raise ConfigError(f"{self.name}: a server workload needs tasks")
        known = set(RESERVED_LIFETIMES) | set(self.lifetimes)
        for reserved in RESERVED_LIFETIMES:
            if reserved in self.lifetimes:
                raise ConfigError(
                    f"{self.name}: lifetime name {reserved!r} is reserved"
                )
        for task in self.tasks:
            for site in task.sites:
                if site.type_name not in WORKLOAD_TYPE_NAMES:
                    raise ConfigError(
                        f"{self.name}/{task.name}: unknown type "
                        f"{site.type_name!r} (have {WORKLOAD_TYPE_NAMES})"
                    )
                if site.lifetime not in known:
                    raise ConfigError(
                        f"{self.name}/{task.name}: unknown lifetime class "
                        f"{site.lifetime!r} (have {sorted(known)})"
                    )
                if site.weight <= 0:
                    raise ConfigError(
                        f"{self.name}/{task.name}: site weight must be > 0"
                    )
                if site.length[1] > MAX_ARRAY_LENGTH:
                    raise ConfigError(
                        f"{self.name}/{task.name}: array length "
                        f"{site.length[1]} exceeds the frame capacity "
                        f"({MAX_ARRAY_LENGTH} elements; no large-object "
                        "space)"
                    )

    def __hash__(self) -> int:
        # The frozen dataclass holds a dict (``lifetimes``), so the
        # generated hash would raise.  Hash the canonical mapping form
        # instead: equal specs serialise identically, so the hash is
        # consistent with ``__eq__`` and specs can key the minsearch and
        # grid dictionaries like benchmark-name refs do.
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    # -- derived quantities -------------------------------------------
    @property
    def duration_cycles(self) -> float:
        return self.duration_s * CYCLES_PER_SECOND

    @property
    def locality(self) -> LocalityModel:
        """Server specs run without a locality multiplier.

        The request engine flushes the clock at every request boundary;
        a locality model would make cycle totals depend on the flush
        schedule, and there is no paper calibration to anchor one."""
        return NO_LOCALITY

    def expected_requests(self) -> int:
        """Deterministic estimate of the number of requests served."""
        estimate = int(self.arrival.mean_rate_rps * self.duration_s)
        if self.max_requests:
            estimate = min(estimate, self.max_requests)
        return max(1, estimate)

    @property
    def total_alloc_bytes(self) -> int:
        """Estimated allocation volume (cost ordering, min-heap seeding).

        The closed-loop spec declares this exactly; an open-loop run's
        volume follows from rate × duration × mean request size, plus the
        session graphs churned over the run.  Only relative magnitude
        matters to its consumers (grid cost ordering, the min-heap search
        lower bound)."""
        total_weight = sum(t.weight for t in self.tasks)
        mean_req = sum(
            t.weight * t.mean_request_bytes() for t in self.tasks
        ) / total_weight
        n = self.expected_requests()
        per_session = WORD_BYTES * (
            _TYPE_WORDS["refarr"]
            + self.sessions.slots
            + self.sessions.seed_objects * _TYPE_WORDS["node"]
        )
        lo, hi = self.sessions.requests_per_session
        sessions = n / max(1.0, (lo + hi) / 2.0)
        return int(n * mean_req + sessions * per_session) or 1

    # -- transformations ----------------------------------------------
    def scaled(self, factor: float) -> "ServerWorkloadSpec":
        """A copy with the run length scaled by ``factor``.

        Like ``WorkloadSpec.scaled``, the factor shortens the run without
        changing its shape: the arrival rate, task mix, session and cache
        behaviour are untouched; only the observation window (and any
        request cap) shrinks."""
        return dataclasses.replace(
            self,
            duration_s=self.duration_s * factor,
            max_requests=int(self.max_requests * factor),
        )

    def with_rate(self, rate_rps: float) -> "ServerWorkloadSpec":
        """A copy at a different arrival rate (rate sweeps, --rate)."""
        return dataclasses.replace(
            self, arrival=dataclasses.replace(self.arrival, rate_rps=rate_rps)
        )

    def with_duration(self, duration_s: float) -> "ServerWorkloadSpec":
        return dataclasses.replace(self, duration_s=duration_s)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical mapping form — the config loader's input format.

        ``from_mapping(spec.to_dict())`` round-trips, and the grid layer
        fingerprints this form (sorted-key JSON) so semantically equal
        specs share cache cells regardless of file name or key order."""
        return {
            "kind": "server-workload",
            "name": self.name,
            "description": self.description,
            "duration_s": self.duration_s,
            "max_requests": self.max_requests,
            "arrival": self.arrival.to_dict(),
            "sessions": self.sessions.to_dict(),
            "cache": self.cache.to_dict(),
            "lifetimes": {
                name: {"lo_bytes": lc.lo_bytes, "hi_bytes": lc.hi_bytes}
                for name, lc in sorted(self.lifetimes.items())
            },
            "tasks": [t.to_dict() for t in self.tasks],
        }
