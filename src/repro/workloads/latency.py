"""Request-latency accounting: the server-side complement of RunStats.

Latency is measured open-loop: ``completion - arrival``, so it includes
queueing delay (a request that arrives mid-pause or behind a backlog waits)
as well as service time.  This is the "observed cost" framing of the
production-GC literature — a collector's pauses matter exactly as much as
they stretch request tails.

Percentiles use the shared nearest-rank definition
(:func:`repro.quantiles.percentile` — the same floats as the pause
analytics and the streaming profiler), computed once at the end of the
run over the full latency population — exact, not streamed, because a run's
request count is modest (10^3–10^5).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from ..quantiles import percentile
from ..sim.cost import cycles_to_seconds


@dataclass
class RequestStats:
    """Request-latency outcome of one server-workload run.

    All latencies are in abstract cycles (the cost model's unit); the
    ``*_ms`` properties convert for presentation only.  Serialises through
    ``dataclasses.asdict`` like RunStats, so grid cells round-trip it."""

    count: int = 0
    offered: int = 0  # arrivals generated (== count unless the run failed)
    p50_cycles: float = 0.0
    p90_cycles: float = 0.0
    p99_cycles: float = 0.0
    p999_cycles: float = 0.0
    max_cycles: float = 0.0
    mean_cycles: float = 0.0
    total_latency_cycles: float = 0.0
    queue_peak: int = 0  # max requests waiting at any completion
    paused_requests: int = 0  # requests with >= 1 GC pause in their timeline
    sessions_opened: int = 0
    sessions_closed: int = 0
    cache_inserts: int = 0
    cache_expirations: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_latencies(
        cls, latencies: List[float], **fields: Any
    ) -> "RequestStats":
        """Build from the raw per-request latency population."""
        ordered = sorted(latencies)
        n = len(ordered)
        total = float(sum(ordered))
        return cls(
            count=n,
            p50_cycles=percentile(ordered, 0.50),
            p90_cycles=percentile(ordered, 0.90),
            p99_cycles=percentile(ordered, 0.99),
            p999_cycles=percentile(ordered, 0.999),
            max_cycles=ordered[-1] if ordered else 0.0,
            mean_cycles=total / n if n else 0.0,
            total_latency_cycles=total,
            **fields,
        )

    # ------------------------------------------------------------------
    @property
    def p50_ms(self) -> float:
        return cycles_to_seconds(self.p50_cycles) * 1e3

    @property
    def p99_ms(self) -> float:
        return cycles_to_seconds(self.p99_cycles) * 1e3

    @property
    def p999_ms(self) -> float:
        return cycles_to_seconds(self.p999_cycles) * 1e3

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Prometheus-style export, merged into ``RunStats.counters()``."""
        return {
            "request_count_total": float(self.count),
            "request_offered_total": float(self.offered),
            "request_latency_p50_cycles": float(self.p50_cycles),
            "request_latency_p90_cycles": float(self.p90_cycles),
            "request_latency_p99_cycles": float(self.p99_cycles),
            "request_latency_p999_cycles": float(self.p999_cycles),
            "request_latency_max_cycles": float(self.max_cycles),
            "request_latency_cycles_total": float(self.total_latency_cycles),
            "request_queue_peak": float(self.queue_peak),
            "request_gc_paused_total": float(self.paused_requests),
            "sessions_opened_total": float(self.sessions_opened),
            "sessions_closed_total": float(self.sessions_closed),
            "cache_inserts_total": float(self.cache_inserts),
            "cache_expirations_total": float(self.cache_expirations),
            "cache_lookups_total": float(self.cache_lookups),
            "cache_hits_total": float(self.cache_hits),
        }

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequestStats":
        return cls(**data)

    def summary_row(self) -> str:
        """One formatted line for console tables (cycles)."""
        return (
            f"requests={self.count:<6} "
            f"p50={self.p50_cycles:10.1f} p99={self.p99_cycles:10.1f} "
            f"p99.9={self.p999_cycles:10.1f} max={self.max_cycles:10.1f} "
            f"queue_peak={self.queue_peak} gc_hit={self.paused_requests}"
        )
