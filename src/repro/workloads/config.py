"""Loading and validating declarative workload files (JSON / YAML).

New scenarios are config, not code: a ``.json`` or ``.yaml`` file fully
describes a server workload.  JSON support is always available; YAML needs
the optional ``repro[workloads]`` extra (PyYAML) and degrades exactly like
the ``[accel]`` substrate tiers — importing this module never fails, only
*using* a ``.yaml`` ref without the dependency raises a clear
:class:`ConfigError`.

Validation errors carry a JSON-pointer-style location so a typo in a large
spec file points at the exact field::

    workload.yaml:/tasks/0/weight: task weight must be > 0 (got -1)

The mapping schema mirrors :meth:`ServerWorkloadSpec.to_dict`, so specs
round-trip: ``from_mapping(spec.to_dict()) == spec``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..bench.engine import WORKLOAD_TYPE_NAMES, AllocSite
from ..bench.lifetime import LifetimeClass
from ..errors import ConfigError
from .model import (
    ARRIVAL_PROCESSES,
    MAX_ARRAY_LENGTH,
    RESERVED_LIFETIMES,
    ArrivalSpec,
    CacheSpec,
    RequestTask,
    ServerWorkloadSpec,
    SessionSpec,
)

try:  # optional extra: repro[workloads]
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _yaml = None

#: File suffixes the loader recognises.
JSON_SUFFIXES = (".json",)
YAML_SUFFIXES = (".yaml", ".yml")
WORKLOAD_SUFFIXES = JSON_SUFFIXES + YAML_SUFFIXES

_NUM = (int, float)


class _Ctx:
    """Carries the source name so every error is ``source:/pointer: msg``."""

    __slots__ = ("source",)

    def __init__(self, source: str):
        self.source = source

    def fail(self, pointer: str, message: str) -> "ConfigError":
        return ConfigError(f"{self.source}:{pointer}: {message}")


def _require_mapping(ctx: _Ctx, value: Any, pointer: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ctx.fail(pointer, f"expected a mapping, got {type(value).__name__}")
    return value


def _known_keys(ctx: _Ctx, doc: Mapping[str, Any], pointer: str, allowed) -> None:
    for key in doc:
        if key not in allowed:
            raise ctx.fail(
                f"{pointer}/{key}",
                f"unknown field {key!r} (expected one of {sorted(allowed)})",
            )


def _number(ctx: _Ctx, doc, key, pointer, default=None, minimum=None,
            exclusive=False) -> Optional[float]:
    if key not in doc:
        return default
    value = doc[key]
    where = f"{pointer}/{key}"
    if isinstance(value, bool) or not isinstance(value, _NUM):
        raise ctx.fail(where, f"expected a number, got {value!r}")
    if minimum is not None:
        if exclusive and value <= minimum:
            raise ctx.fail(where, f"must be > {minimum} (got {value})")
        if not exclusive and value < minimum:
            raise ctx.fail(where, f"must be >= {minimum} (got {value})")
    return float(value)


def _integer(ctx: _Ctx, doc, key, pointer, default=None, minimum=None) -> Optional[int]:
    if key not in doc:
        return default
    value = doc[key]
    where = f"{pointer}/{key}"
    if isinstance(value, bool) or not isinstance(value, int):
        raise ctx.fail(where, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ctx.fail(where, f"must be >= {minimum} (got {value})")
    return value


def _string(ctx: _Ctx, doc, key, pointer, default=None, choices=None) -> Optional[str]:
    if key not in doc:
        return default
    value = doc[key]
    where = f"{pointer}/{key}"
    if not isinstance(value, str):
        raise ctx.fail(where, f"expected a string, got {value!r}")
    if choices is not None and value not in choices:
        raise ctx.fail(
            where, f"unknown value {value!r} (expected one of {tuple(choices)})"
        )
    return value


def _range(ctx: _Ctx, doc, key, pointer, default, *, integral, minimum,
           exclusive=False) -> Tuple:
    """A two-element ``[lo, hi]`` list with ``minimum <= lo <= hi``."""
    if key not in doc:
        return default
    value = doc[key]
    where = f"{pointer}/{key}"
    if (
        not isinstance(value, Sequence)
        or isinstance(value, (str, bytes))
        or len(value) != 2
    ):
        raise ctx.fail(where, f"expected a [lo, hi] pair, got {value!r}")
    lo, hi = value
    kind = int if integral else _NUM
    for element in (lo, hi):
        if isinstance(element, bool) or not isinstance(element, kind):
            raise ctx.fail(where, f"expected two numbers, got {value!r}")
    if (lo <= minimum) if exclusive else (lo < minimum):
        op = ">" if exclusive else ">="
        raise ctx.fail(where, f"lo must be {op} {minimum} (got {lo})")
    if hi < lo:
        raise ctx.fail(where, f"hi must be >= lo (got {list(value)})")
    return (lo, hi) if integral else (float(lo), float(hi))


# ----------------------------------------------------------------------
# Section parsers
# ----------------------------------------------------------------------
def _parse_arrival(ctx: _Ctx, doc: Mapping[str, Any]) -> ArrivalSpec:
    pointer = "/arrival"
    _known_keys(ctx, doc, pointer,
                {"process", "rate_rps", "burst_multiplier", "on_s", "off_s"})
    process = _string(ctx, doc, "process", pointer, default="poisson",
                      choices=ARRIVAL_PROCESSES)
    rate = _number(ctx, doc, "rate_rps", pointer, default=1000.0)
    if rate is not None and rate <= 0:
        raise ctx.fail(f"{pointer}/rate_rps",
                       f"arrival rate must be > 0 requests/s (got {rate:g})")
    return ArrivalSpec(
        process=process,
        rate_rps=rate,
        burst_multiplier=_number(ctx, doc, "burst_multiplier", pointer,
                                 default=4.0, minimum=0, exclusive=True),
        on_s=_number(ctx, doc, "on_s", pointer, default=0.05,
                     minimum=0, exclusive=True),
        off_s=_number(ctx, doc, "off_s", pointer, default=0.15,
                      minimum=0, exclusive=True),
    )


def _parse_sessions(ctx: _Ctx, doc: Mapping[str, Any]) -> SessionSpec:
    pointer = "/sessions"
    _known_keys(ctx, doc, pointer,
                {"max_concurrent", "requests_per_session", "slots",
                 "seed_objects"})
    slots = _integer(ctx, doc, "slots", pointer, default=8, minimum=1)
    if slots > MAX_ARRAY_LENGTH:
        raise ctx.fail(f"{pointer}/slots",
                       f"must be <= {MAX_ARRAY_LENGTH} "
                       "(one frame holds the session root array)")
    return SessionSpec(
        max_concurrent=_integer(ctx, doc, "max_concurrent", pointer,
                                default=8, minimum=1),
        requests_per_session=_range(ctx, doc, "requests_per_session", pointer,
                                    (4, 32), integral=True, minimum=1),
        slots=slots,
        seed_objects=_integer(ctx, doc, "seed_objects", pointer,
                              default=4, minimum=0),
    )


def _parse_cache(ctx: _Ctx, doc: Mapping[str, Any]) -> CacheSpec:
    pointer = "/cache"
    _known_keys(ctx, doc, pointer, {"slots", "ttl_s"})
    return CacheSpec(
        slots=_integer(ctx, doc, "slots", pointer, default=64, minimum=0),
        ttl_s=_range(ctx, doc, "ttl_s", pointer, (0.02, 0.1),
                     integral=False, minimum=0, exclusive=True),
    )


def _parse_lifetimes(ctx: _Ctx, doc: Mapping[str, Any]) -> Dict[str, LifetimeClass]:
    lifetimes: Dict[str, LifetimeClass] = {}
    for name, entry in doc.items():
        pointer = f"/lifetimes/{name}"
        if name in RESERVED_LIFETIMES:
            raise ctx.fail(
                pointer,
                f"lifetime name {name!r} is reserved (engine-defined scope)",
            )
        entry = _require_mapping(ctx, entry, pointer)
        _known_keys(ctx, entry, pointer, {"lo_bytes", "hi_bytes"})
        lo = _integer(ctx, entry, "lo_bytes", pointer, default=0, minimum=0)
        hi = _integer(ctx, entry, "hi_bytes", pointer, default=0, minimum=0)
        if hi and hi < lo:
            raise ctx.fail(pointer, f"hi_bytes must be >= lo_bytes (got {lo}..{hi})")
        lifetimes[name] = LifetimeClass(name, lo, hi)
    return lifetimes


def _parse_site(ctx: _Ctx, doc: Any, pointer: str,
                lifetimes: Mapping[str, LifetimeClass]) -> AllocSite:
    doc = _require_mapping(ctx, doc, pointer)
    _known_keys(ctx, doc, pointer,
                {"weight", "type", "lifetime", "length", "link_prob", "work"})
    weight = _number(ctx, doc, "weight", pointer, default=1.0)
    if weight is not None and weight <= 0:
        raise ctx.fail(f"{pointer}/weight",
                       f"site weight must be > 0 (got {weight:g})")
    type_name = _string(ctx, doc, "type", pointer)
    if type_name is None:
        raise ctx.fail(pointer, "a site needs a 'type'")
    if type_name not in WORKLOAD_TYPE_NAMES:
        raise ctx.fail(f"{pointer}/type",
                       f"unknown type {type_name!r} (have {WORKLOAD_TYPE_NAMES})")
    lifetime = _string(ctx, doc, "lifetime", pointer)
    if lifetime is None:
        raise ctx.fail(pointer, "a site needs a 'lifetime'")
    known = set(RESERVED_LIFETIMES) | set(lifetimes)
    if lifetime not in known:
        raise ctx.fail(
            f"{pointer}/lifetime",
            f"unknown lifetime class {lifetime!r} (have {sorted(known)})",
        )
    length = _range(ctx, doc, "length", pointer, (0, 0), integral=True, minimum=0)
    if type_name in ("refarr", "buf") and length == (0, 0):
        length = (4, 16)  # arrays of zero length are pointless; give a default
    if length[1] > MAX_ARRAY_LENGTH:
        raise ctx.fail(
            f"{pointer}/length",
            f"array length {length[1]} exceeds the frame capacity "
            f"({MAX_ARRAY_LENGTH} elements; no large-object space)",
        )
    link_prob = _number(ctx, doc, "link_prob", pointer, default=0.0, minimum=0)
    if link_prob > 1:
        raise ctx.fail(f"{pointer}/link_prob", f"must be in [0, 1] (got {link_prob:g})")
    return AllocSite(
        weight=float(weight),
        type_name=type_name,
        lifetime=lifetime,
        length=length,
        link_prob=link_prob,
        work=_number(ctx, doc, "work", pointer, default=4.0, minimum=0),
    )


def _parse_task(ctx: _Ctx, doc: Any, pointer: str,
                lifetimes: Mapping[str, LifetimeClass]) -> RequestTask:
    doc = _require_mapping(ctx, doc, pointer)
    _known_keys(ctx, doc, pointer,
                {"name", "weight", "sites", "request_bytes", "cache_lookups",
                 "reads", "work"})
    name = _string(ctx, doc, "name", pointer)
    if not name:
        raise ctx.fail(pointer, "a task needs a non-empty 'name'")
    weight = _number(ctx, doc, "weight", pointer, default=1.0)
    if weight is not None and weight <= 0:
        raise ctx.fail(f"{pointer}/weight",
                       f"task weight must be > 0 (got {weight:g})")
    sites_doc = doc.get("sites")
    if not isinstance(sites_doc, Sequence) or isinstance(sites_doc, (str, bytes)) \
            or not sites_doc:
        raise ctx.fail(f"{pointer}/sites", "expected a non-empty list of sites")
    sites = tuple(
        _parse_site(ctx, site, f"{pointer}/sites/{i}", lifetimes)
        for i, site in enumerate(sites_doc)
    )
    return RequestTask(
        name=name,
        weight=float(weight),
        sites=sites,
        request_bytes=_range(ctx, doc, "request_bytes", pointer, (128, 512),
                             integral=True, minimum=1),
        cache_lookups=_integer(ctx, doc, "cache_lookups", pointer,
                               default=0, minimum=0),
        reads=_number(ctx, doc, "reads", pointer, default=0.0, minimum=0),
        work=_number(ctx, doc, "work", pointer, default=4.0, minimum=0),
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
_TOP_KEYS = {"kind", "name", "description", "duration_s", "max_requests",
             "arrival", "sessions", "cache", "lifetimes", "tasks"}


def from_mapping(doc: Any, source: str = "<mapping>") -> ServerWorkloadSpec:
    """Build a validated ServerWorkloadSpec from a parsed mapping."""
    ctx = _Ctx(source)
    doc = _require_mapping(ctx, doc, "/")
    _known_keys(ctx, doc, "", _TOP_KEYS)
    kind = _string(ctx, doc, "kind", "", default="server-workload")
    if kind != "server-workload":
        raise ctx.fail("/kind", f"unknown workload kind {kind!r} "
                                "(expected 'server-workload')")
    name = _string(ctx, doc, "name", "")
    if not name:
        raise ctx.fail("/name", "a workload needs a non-empty 'name'")
    duration = _number(ctx, doc, "duration_s", "", default=0.5)
    if duration is not None and duration <= 0:
        raise ctx.fail("/duration_s", f"must be > 0 seconds (got {duration:g})")
    lifetimes = _parse_lifetimes(
        ctx, _require_mapping(ctx, doc.get("lifetimes", {}), "/lifetimes")
    )
    tasks_doc = doc.get("tasks")
    if not isinstance(tasks_doc, Sequence) or isinstance(tasks_doc, (str, bytes)) \
            or not tasks_doc:
        raise ctx.fail("/tasks", "expected a non-empty list of tasks")
    tasks = tuple(
        _parse_task(ctx, task, f"/tasks/{i}", lifetimes)
        for i, task in enumerate(tasks_doc)
    )
    return ServerWorkloadSpec(
        name=name,
        description=_string(ctx, doc, "description", "", default=""),
        duration_s=duration,
        max_requests=_integer(ctx, doc, "max_requests", "", default=0, minimum=0),
        arrival=_parse_arrival(
            ctx, _require_mapping(ctx, doc.get("arrival", {}), "/arrival")
        ),
        sessions=_parse_sessions(
            ctx, _require_mapping(ctx, doc.get("sessions", {}), "/sessions")
        ),
        cache=_parse_cache(
            ctx, _require_mapping(ctx, doc.get("cache", {}), "/cache")
        ),
        lifetimes=lifetimes,
        tasks=tasks,
    )


def loads(text: str, format: str = "json",
          source: str = "<string>") -> ServerWorkloadSpec:
    """Parse a workload spec from a JSON or YAML document string."""
    if format == "json":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{source}: invalid JSON: {exc}") from exc
    elif format == "yaml":
        if _yaml is None:
            raise ConfigError(
                f"{source}: YAML workload files need PyYAML — install the "
                "optional extra (pip install 'repro[workloads]') or use JSON"
            )
        try:
            doc = _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ConfigError(f"{source}: invalid YAML: {exc}") from exc
    else:
        raise ConfigError(f"unknown workload format {format!r} (json or yaml)")
    return from_mapping(doc, source)


def load_file(path: Union[str, Path]) -> ServerWorkloadSpec:
    """Load and validate a ``.json`` / ``.yaml`` / ``.yml`` workload file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in JSON_SUFFIXES:
        format = "json"
    elif suffix in YAML_SUFFIXES:
        format = "yaml"
    else:
        raise ConfigError(
            f"{path}: unknown workload file suffix {suffix!r} "
            f"(expected one of {WORKLOAD_SUFFIXES})"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"{path}: cannot read workload file: {exc}") from exc
    return loads(text, format, source=str(path))
