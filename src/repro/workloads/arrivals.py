"""Deterministic arrival-time generation on the simulated clock.

Arrival times are drawn *before* the run starts, from a dedicated rng
stream seeded independently of the behaviour rng.  This is what makes the
model open-loop: the offered load is a function of the spec and seed only,
never of how fast the server happens to serve — a GC pause cannot slow the
arrival process down, it can only queue what arrives during it.

Both processes are piecewise-Poisson.  ``bursty`` alternates on/off rate
windows; at each window boundary the exponential draw restarts, which is
exact for a Poisson process (memorylessness) and keeps the generator a
simple forward walk.
"""

from __future__ import annotations

import random
from typing import List

from ..sim.cost import CYCLES_PER_SECOND
from .model import ArrivalSpec


def generate_arrivals(
    arrival: ArrivalSpec,
    duration_s: float,
    rng: random.Random,
    max_requests: int = 0,
) -> List[float]:
    """Arrival times in cycles, strictly increasing, within the window."""
    limit = duration_s * CYCLES_PER_SECOND
    out: List[float] = []
    expovariate = rng.expovariate
    if arrival.process == "poisson":
        mean_gap = CYCLES_PER_SECOND / arrival.rate_rps
        t = expovariate(1.0) * mean_gap
        while t < limit:
            out.append(t)
            if max_requests and len(out) >= max_requests:
                break
            t += expovariate(1.0) * mean_gap
        return out

    # bursty: [0, on) at rate*multiplier, [on, on+off) at rate, repeating
    on = arrival.on_s * CYCLES_PER_SECOND
    period = on + arrival.off_s * CYCLES_PER_SECOND
    burst_gap = CYCLES_PER_SECOND / (arrival.rate_rps * arrival.burst_multiplier)
    base_gap = CYCLES_PER_SECOND / arrival.rate_rps
    t = 0.0
    while t < limit:
        phase = t % period
        in_burst = phase < on
        gap = expovariate(1.0) * (burst_gap if in_burst else base_gap)
        boundary = t - phase + (on if in_burst else period)
        if t + gap >= boundary:
            # The window ends first: restart the draw at the boundary
            # (memorylessness makes this the exact piecewise process).
            t = boundary
            continue
        t += gap
        if t >= limit:
            break
        out.append(t)
        if max_requests and len(out) >= max_requests:
            break
    return out
