"""Request-driven server workloads (the "millions of users" axis).

The six SPEC replays in :mod:`repro.bench` are *closed-loop*: the mutator
allocates as fast as the simulated machine allows and GC cost shows up as
elapsed time.  Production services are *open-loop*: requests arrive on a
wall clock whether or not the server is ready, so a GC pause does not just
add its own duration — it queues every request that arrives during it and
inflates the latency tail (fmperf's load-generator methodology; see
PAPERS.md "Distilling the Real Cost of Production Garbage Collectors").

This package models that axis on the simulated clock:

* :mod:`~repro.workloads.model` — the declarative spec
  (:class:`ServerWorkloadSpec`): arrival process, task mix, session and
  cache behaviour;
* :mod:`~repro.workloads.arrivals` — deterministic Poisson / bursty
  arrival-time generation in abstract cycles;
* :mod:`~repro.workloads.engine` — :class:`ServerMutator`, the open-loop
  request engine built on the same ``MutatorContext`` discipline as the
  SPEC replays;
* :mod:`~repro.workloads.latency` — :class:`RequestStats`, the
  request-latency percentiles reported next to ``RunStats``;
* :mod:`~repro.workloads.config` — JSON/YAML loading with
  JSON-pointer-carrying validation errors.

Specs are plain data: define a scenario in a ``.json``/``.yaml`` file and
run it with ``beltway-bench serve`` or ``repro.run`` — no Python changes.
"""

from .config import from_mapping, load_file, loads
from .engine import ServerMutator
from .latency import RequestStats
from .model import (
    ArrivalSpec,
    CacheSpec,
    RequestTask,
    ServerWorkloadSpec,
    SessionSpec,
)

__all__ = [
    "ArrivalSpec",
    "CacheSpec",
    "RequestStats",
    "RequestTask",
    "ServerMutator",
    "ServerWorkloadSpec",
    "SessionSpec",
    "from_mapping",
    "load_file",
    "loads",
]
