"""ServerMutator: the open-loop request engine.

The engine serves a precomputed arrival schedule against the VM, one
request at a time on the simulated clock (a single-threaded event loop —
the standard model for a worker process):

* **idle** — if the next arrival is in the future, the gap is charged to
  the mutator clock as idle time (total = mutator + gc stays an
  invariant);
* **backlog** — if arrivals are behind the clock (a GC pause or a slow
  request queued them), they are served back-to-back and their latencies
  include the wait;
* **serve** — a request picks a weighted task, allocates its site mix up
  to the task's byte budget, touches the session graph and cache
  directory, charges its computation, and its latency is
  ``completion - arrival`` with the clock flushed exactly at both edges
  (``VM.sync_clock``).

Object lifetimes map to server scopes: ``request`` allocations are rooted
only for the request (infant mortality), ``session`` allocations are
written into the owning connection's object graph and die when it closes
(connection churn), ``cache`` allocations enter a TTL'd directory whose
entries the loop expires as the clock passes them, and named byte-classes
use the same DeathSchedule as the SPEC replays.

Determinism: two rng streams derived from the seed — one for arrivals
(open-loop: offered load never depends on service) and one for behaviour.
All scheduling is on the simulated clock, so results are bit-identical
across repeated runs, host machines, and substrate tiers.
"""

from __future__ import annotations

import random
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from ..bench.engine import ensure_standard_types
from ..bench.lifetime import DeathSchedule
from ..heap.address import WORD_BYTES
from ..heap.objectmodel import HEADER_WORDS
from ..runtime.mutator import MutatorContext
from ..runtime.roots import Handle
from ..runtime.vm import VM
from ..sim.cost import CYCLES_PER_SECOND
from ..sim.stats import RunStats
from .arrivals import generate_arrivals
from .latency import RequestStats
from .model import RequestTask, ServerWorkloadSpec

#: Offset deriving the arrival stream from the run seed (any fixed odd
#: constant works; it just has to differ from the behaviour stream).
_ARRIVAL_SEED_SALT = 0x9E3779B9

#: Cache-directory chunk width: the directory is built from refarr chunks
#: of this many slots so ``cache.slots`` is not bounded by the frame size
#: (there is no large-object space; one huge refarr could never allocate).
_DIR_CHUNK = 32


class _Session:
    """One open connection: its rooted object graph and request budget."""

    __slots__ = ("root", "budget", "next_slot")

    def __init__(self, root: Handle, budget: int):
        self.root = root
        self.budget = budget
        self.next_slot = 0


class ServerMutator:
    """Executes a ServerWorkloadSpec against a VM, open-loop."""

    def __init__(
        self,
        vm: VM,
        spec: ServerWorkloadSpec,
        seed: int = 13,
        bus=None,
    ):
        self.vm = vm
        self.spec = spec
        self.rng = random.Random(seed)
        self.arrival_rng = random.Random((seed ^ _ARRIVAL_SEED_SALT) & 0xFFFFFFFF)
        self.bus = bus  # read at emit time, so obs.attach may set it later
        self.mu = MutatorContext(vm)
        ensure_standard_types(vm)
        self.schedule = DeathSchedule()
        self.immortals: List[Handle] = []
        self.allocated_bytes = 0
        # task mix: cumulative weights for rng.choices (same draw shape
        # as the closed-loop engine)
        self._task_rows = [self._compile_task(t) for t in spec.tasks]
        self._task_cum = list(accumulate(t.weight for t in spec.tasks))
        # sessions: fixed array of max_concurrent slots, opened lazily
        self._sessions: List[Optional[_Session]] = [None] * spec.sessions.max_concurrent
        # cache: immortal directory refarr chunks + expiry times per slot
        self._cache_dir: Optional[List[Handle]] = None
        self._cache_expiry: Dict[int, float] = {}
        # latency accounting
        self._latencies: List[float] = []
        self._offered = 0
        self._queue_peak = 0
        self._paused_requests = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._cache_inserts = 0
        self._cache_expirations = 0
        self._cache_lookups = 0
        self._cache_hits = 0
        self._request_id = 0
        self._randbelow = self.rng._randbelow

    # ------------------------------------------------------------------
    def _compile_task(self, task: RequestTask):
        """Pre-resolve descriptors and lifetimes for a task's site table."""
        vm = self.vm
        lifetimes = self.spec.lifetimes
        rows = []
        for site in task.sites:
            desc = vm.types.by_name(site.type_name)
            kind = site.lifetime  # "request" | "session" | "cache" | named
            byte_class = lifetimes.get(site.lifetime)
            scalar_shape = site.type_name in ("small", "node", "big")
            rows.append((site, desc, kind, byte_class, scalar_shape))
        cum = list(accumulate(s.weight for s in task.sites))
        return (task, rows, cum)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _open_session(self, idx: int) -> _Session:
        spec = self.spec.sessions
        root = self.mu.alloc_named("refarr", spec.slots)
        self.allocated_bytes += (HEADER_WORDS + spec.slots) * WORD_BYTES
        node_desc = self.vm.types.by_name("node")
        node_bytes = node_desc.size_words() * WORD_BYTES
        for i in range(spec.seed_objects):
            obj = self.mu.alloc(node_desc)
            self.allocated_bytes += node_bytes
            self.mu.write(root, i, obj)
            obj.drop()
        budget = self.rng.randint(*spec.requests_per_session)
        session = _Session(root, budget)
        self._sessions[idx] = session
        self._sessions_opened += 1
        return session

    def _close_session(self, idx: int) -> None:
        session = self._sessions[idx]
        if session is not None:
            session.root.drop()  # the whole per-connection graph dies
            self._sessions[idx] = None
            self._sessions_closed += 1

    def _pick_session(self) -> Tuple[int, _Session]:
        idx = self._randbelow(len(self._sessions))
        session = self._sessions[idx]
        if session is None:
            session = self._open_session(idx)
        return idx, session

    # ------------------------------------------------------------------
    # Cache directory
    # ------------------------------------------------------------------
    def _cache_directory(self) -> List[Handle]:
        if self._cache_dir is None:
            slots = max(1, self.spec.cache.slots)
            chunks: List[Handle] = []
            for base in range(0, slots, _DIR_CHUNK):
                width = min(_DIR_CHUNK, slots - base)
                chunks.append(self.mu.alloc_named("refarr", width))
                self.allocated_bytes += (HEADER_WORDS + width) * WORD_BYTES
            self._cache_dir = chunks
        return self._cache_dir

    def _expire_cache(self, now: float) -> None:
        if not self._cache_expiry:
            return
        expired = [s for s, t in self._cache_expiry.items() if t <= now]
        if not expired:
            return
        directory = self._cache_directory()
        for slot in expired:
            del self._cache_expiry[slot]
            chunk, offset = divmod(slot, _DIR_CHUNK)
            self.mu.write(directory[chunk], offset, None)
            self._cache_expirations += 1

    def _cache_insert(self, handle: Handle, now: float) -> None:
        spec = self.spec.cache
        if spec.slots <= 0:
            return
        directory = self._cache_directory()
        slot = self._randbelow(spec.slots)
        lo, hi = spec.ttl_s
        ttl = self.rng.uniform(lo, hi) * CYCLES_PER_SECOND
        chunk, offset = divmod(slot, _DIR_CHUNK)
        self.mu.write(directory[chunk], offset, handle)
        self._cache_expiry[slot] = now + ttl
        self._cache_inserts += 1

    def _cache_lookup(self) -> None:
        spec = self.spec.cache
        if spec.slots <= 0:
            return
        directory = self._cache_directory()
        slot = self._randbelow(spec.slots)
        self._cache_lookups += 1
        chunk, offset = divmod(slot, _DIR_CHUNK)
        if self.mu.read_addr(directory[chunk], offset):
            self._cache_hits += 1

    # ------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------
    def _serve(self, arrival: float, start: float, queue_depth: int) -> None:
        rng = self.rng
        mu = self.mu
        task, rows, cum = rng.choices(self._task_rows, cum_weights=self._task_cum)[0]
        request_id = self._request_id
        self._request_id += 1
        pauses_before = len(self.vm.clock.pauses)
        bus = self.bus
        if bus is not None:
            bus.emit(
                "request.start",
                start,
                {
                    "id": request_id,
                    "task": task.name,
                    "arrival_cycles": arrival,
                    "queue_depth": queue_depth,
                },
            )
        idx, session = self._pick_session()
        alloc_before = self.allocated_bytes
        budget = rng.randint(*task.request_bytes)
        request_handles: List[Handle] = []
        choices = rng.choices
        while self.allocated_bytes - alloc_before < budget:
            site, desc, kind, byte_class, scalar_shape = choices(
                rows, cum_weights=cum
            )[0]
            length = 0
            if site.length != (0, 0):
                length = rng.randint(*site.length)
            handle = mu.alloc(desc, length)
            size_code = desc.size_code
            allocated = self.allocated_bytes + (
                size_code if size_code >= 0 else HEADER_WORDS + length
            ) * WORD_BYTES
            self.allocated_bytes = allocated
            if scalar_shape:
                mu.write_int(handle, 0, allocated & 0x7FFFFFFF)
            if site.link_prob and rng.random() < site.link_prob:
                # an old session object points at the newcomer: the
                # old→young traffic the write barriers exist for
                slot = self._randbelow(self.spec.sessions.slots)
                mu.write(session.root, slot, handle)
            if kind == "request":
                request_handles.append(handle)
            elif kind == "session":
                slot = session.next_slot % self.spec.sessions.slots
                session.next_slot += 1
                mu.write(session.root, slot, handle)
                handle.drop()  # survives through the session graph only
            elif kind == "cache":
                self._cache_insert(handle, self.vm.clock.now)
                handle.drop()
            elif byte_class is not None:
                death = byte_class.sample(rng)
                if death is None:
                    self.immortals.append(handle)  # pinned for the run
                else:
                    self.schedule.schedule(allocated + death, handle)
            mu.work(site.work)
        for _ in range(task.cache_lookups):
            self._cache_lookup()
        reads_whole, reads_frac = divmod(task.reads, 1.0)
        for _ in range(int(reads_whole)):
            self._read_session_field(session)
        if reads_frac and rng.random() < reads_frac:
            self._read_session_field(session)
        mu.work(task.work)
        # request end: short-lived objects die, byte-classes reap
        for handle in request_handles:
            handle.drop()
        self.schedule.reap(self.allocated_bytes)
        session.budget -= 1
        if session.budget <= 0:
            self._close_session(idx)
        end = self.vm.sync_clock()
        latency = end - arrival
        self._latencies.append(latency)
        gc_pauses = len(self.vm.clock.pauses) - pauses_before
        if gc_pauses:
            self._paused_requests += 1
        if bus is not None:
            bus.emit(
                "request.end",
                end,
                {
                    "id": request_id,
                    "task": task.name,
                    "latency_cycles": latency,
                    "alloc_bytes": self.allocated_bytes - alloc_before,
                    "gc_pauses": gc_pauses,
                    "queue_depth": queue_depth,
                },
            )

    def _read_session_field(self, session: _Session) -> None:
        slot = self._randbelow(self.spec.sessions.slots)
        self.mu.read_addr(session.root, slot)

    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        clock = self.vm.clock
        arrivals = generate_arrivals(
            self.spec.arrival,
            self.spec.duration_s,
            self.arrival_rng,
            self.spec.max_requests,
        )
        self._offered = len(arrivals)
        served = 0
        n = len(arrivals)
        for i, arrival in enumerate(arrivals):
            now = self.vm.sync_clock()
            if arrival > now:
                # idle until the next request arrives
                clock.charge_mutator(arrival - now)
                now = arrival
            self._expire_cache(now)
            # backlog depth: later arrivals already due at service start
            depth = 0
            j = i + 1
            while j < n and arrivals[j] <= now:
                depth += 1
                j += 1
            if depth > self._queue_peak:
                self._queue_peak = depth
            self._serve(arrival, now, depth)
            served += 1
        # drain: close every open connection, then let the run end
        for idx in range(len(self._sessions)):
            if self._sessions[idx] is not None:
                self._close_session(idx)
        self.vm.sync_clock()
        stats = self.vm.finish()
        stats.requests = self.request_stats()
        return stats

    # ------------------------------------------------------------------
    def request_stats(self) -> RequestStats:
        """RequestStats from everything served so far (valid mid-run,
        so an OutOfMemory abort still reports partial latencies)."""
        return RequestStats.from_latencies(
            self._latencies,
            offered=self._offered,
            queue_peak=self._queue_peak,
            paused_requests=self._paused_requests,
            sessions_opened=self._sessions_opened,
            sessions_closed=self._sessions_closed,
            cache_inserts=self._cache_inserts,
            cache_expirations=self._cache_expirations,
            cache_lookups=self._cache_lookups,
            cache_hits=self._cache_hits,
        )

    @property
    def live_objects(self) -> int:
        return len(self.immortals) + len(self.schedule)
