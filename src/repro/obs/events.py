"""Telemetry event types and their schemas.

Every event on the :class:`~repro.obs.bus.TelemetryBus` is a ``(kind,
time, data)`` triple: ``kind`` names one of the schemas below, ``time``
is the *simulated* clock in cycles (host wall/CPU times, where present,
are explicit ``*_s`` fields inside ``data``), and ``data`` is a flat
JSON-serialisable mapping.

The schema table is the contract between publishers (the instrumentation
layer) and consumers (sinks, the analysis layer, external tooling parsing
``--trace`` JSONL files): required keys must be present with the declared
types; extra keys are allowed so publishers can enrich events without
breaking old readers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

#: number-or-bool is deliberate: JSON round-trips Python bools as bools.
_NUM = (int, float)

#: kind -> {required data key: accepted type(s)}.
EVENT_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    # One run starts: identity of the (benchmark, collector, heap) cell.
    "run.start": {
        "benchmark": (str,),
        "collector": (str,),
        "heap_bytes": _NUM,
        "scale": _NUM,
        "seed": _NUM,
    },
    # One run ends: outcome plus the counter-export snapshot and the
    # per-phase host-time breakdown (subsumes the old ``--profile``).
    "run.end": {
        "completed": (bool,),
        "failure": (str,),
        "counters": (dict,),
        "phases": (dict,),
    },
    # A collection is entered (before any copying happens).
    "gc.start": {
        "seq": _NUM,
        "reason": (str,),
        "heap_frames_in_use": _NUM,
        "heap_frames": _NUM,
        "reserve_frames": _NUM,
    },
    # A CollectionResult was produced (after the pause was charged).
    "gc.end": {
        "id": _NUM,
        "reason": (str,),
        "belts": (list,),
        "increments": _NUM,
        "from_frames": _NUM,
        "copied_objects": _NUM,
        "copied_words": _NUM,
        "copied_bytes": _NUM,
        "freed_frames": _NUM,
        "remset_slots": _NUM,
        "full_heap": (bool,),
        "pause_start": _NUM,
        "pause_end": _NUM,
        "pause_cycles": _NUM,
        "heap_frames_in_use": _NUM,
        "reserve_frames": _NUM,
        "wall_s": _NUM,
    },
    # Remset work of one collection, as a batch: mutator inserts since the
    # previous batch, slots drained and entries dropped by this collection.
    "remset.batch": {
        "inserts": _NUM,
        "drained_slots": _NUM,
        "dropped_entries": _NUM,
        "entries": _NUM,
    },
    # The allocation substrate mapped a fresh frame (region rollover).
    "alloc.region": {
        "frame": _NUM,
        "space": (str,),
        "heap_frames_in_use": _NUM,
    },
    # Periodic heap-occupancy snapshot.
    "heap.snapshot": {
        "frames_in_use": _NUM,
        "frames_total": _NUM,
        "occupied_words": _NUM,
        "remset_entries": _NUM,
        "allocations": _NUM,
    },
    # One phase of the host-time breakdown (emitted at run end).
    "phase": {
        "name": (str,),
        "wall_s": _NUM,
    },
    # Profiler: per-(label, increment) survivor accounting of one
    # collection (emitted by ``repro.obs.profiler`` when attached with
    # event emission on).  ``label`` is the belt/space name ("belt0",
    # "nursery", ...); ``increment`` is the Beltway increment id (-1 for
    # non-Beltway spaces).
    "profiler.survival": {
        "collection": _NUM,
        "label": (str,),
        "increment": _NUM,
        "survived_objects": _NUM,
        "survived_bytes": _NUM,
        "died_objects": _NUM,
        "died_bytes": _NUM,
        "survivor_fraction": _NUM,
    },
    # Grid executor: one cell of a campaign changed state.  ``status`` is
    # ``cached`` (served from the result store), ``done`` (executed and
    # checkpointed), ``retry`` (worker exception or crash, re-dispatched)
    # or ``failed`` (retries exhausted; recorded, batch continues).
    # ``time`` is the dispatch sequence number — grid events are
    # host-side orchestration, not simulated-clock phenomena.  ``job`` is
    # the cell's ordinal in the batch's *input* order (the deterministic
    # identity span ids are built from — cell keys fingerprint the
    # substrate tier and would differ across tiers); ``worker`` is the
    # pid that produced the result (0 for store hits); ``cached`` /
    # ``executed`` / ``failed`` are campaign totals *including this
    # event*, so live progress is computable from the bus alone.
    "grid.job": {
        "benchmark": (str,),
        "collector": (str,),
        "heap_bytes": _NUM,
        "scale": _NUM,
        "seed": _NUM,
        "key": (str,),
        "status": (str,),
        "attempt": _NUM,
        "job": _NUM,
        "worker": _NUM,
        "cached": _NUM,
        "executed": _NUM,
        "failed": _NUM,
    },
    # Grid executor: a cell was served from the result store while a
    # telemetry bus was attached.  The stored ``RunStats`` carries no
    # event stream, so this one event ships everything the span layer
    # needs to synthesize the cell's timeline — total cycles and the
    # exact pause list (``[start, end, reason]`` triples) — making warm
    # replays produce the same canonical spans as the cold run whose
    # telemetry was forwarded live.  ``time`` is the dispatch sequence
    # number, like ``grid.job``.
    "run.replay": {
        "benchmark": (str,),
        "collector": (str,),
        "heap_bytes": _NUM,
        "scale": _NUM,
        "seed": _NUM,
        "key": (str,),
        "job": _NUM,
        "completed": (bool,),
        "total_cycles": _NUM,
        "gc_cycles": _NUM,
        "collections": _NUM,
        "pauses": (list,),
    },
    # Server workloads: a request starts service.  ``time`` is the
    # service-start instant on the simulated clock; ``arrival_cycles`` is
    # when the request arrived (open-loop: earlier whenever it queued) and
    # ``queue_depth`` is the backlog already due behind it.
    "request.start": {
        "id": _NUM,
        "task": (str,),
        "arrival_cycles": _NUM,
        "queue_depth": _NUM,
    },
    # Server workloads: a request completed.  ``latency_cycles`` is
    # completion − arrival (queueing included); ``gc_pauses`` counts the
    # collections that landed inside this request's timeline.
    "request.end": {
        "id": _NUM,
        "task": (str,),
        "latency_cycles": _NUM,
        "alloc_bytes": _NUM,
        "gc_pauses": _NUM,
        "queue_depth": _NUM,
    },
    # SLO layer: one point of a throughput–latency frontier.  ``time`` is
    # the point's index in the rate ladder (host-side orchestration, like
    # ``grid.job``).  Distilled cells enrich with ``overhead_pct`` /
    # ``p99_inflation`` (extra keys — a sweep with distillation off stays
    # schema-valid).
    "slo.point": {
        "benchmark": (str,),
        "collector": (str,),
        "heap_bytes": _NUM,
        "seed": _NUM,
        "rate_rps": _NUM,
        "completed": (bool,),
        "p50_cycles": _NUM,
        "p99_cycles": _NUM,
        "p999_cycles": _NUM,
        "mmu": _NUM,
        "gc_fraction": _NUM,
    },
    # SLO layer: one step of a max-sustainable-rate search.  ``status`` is
    # ``probe`` (one rate evaluated; ``ok`` is the SLO verdict), ``knee``
    # (terminal: ``rate_rps`` is the max sustainable rate) or
    # ``unsaturated`` (terminal: no violation up to the search ceiling).
    "slo.search": {
        "benchmark": (str,),
        "collector": (str,),
        "heap_bytes": _NUM,
        "seed": _NUM,
        "rate_rps": _NUM,
        "ok": (bool,),
        "status": (str,),
    },
    # Profiler: one heap-geometry sample — per-label [frames, words]
    # occupancy at a collection boundary or periodic snapshot.
    "profiler.geometry": {
        "sample": _NUM,
        "trigger": (str,),
        "frames_in_use": _NUM,
        "frames_total": _NUM,
        "occupancy": (dict,),
    },
}

#: Optional enrichment keys on ``gc.end`` (extra keys are always allowed;
#: these are the ones the instrumentation layer now publishes so the
#: profiler's cost attribution can decompose each pause without reaching
#: into VM internals).  Not required: older traces and synthetic fixtures
#: stay schema-valid.
GC_END_ENRICHMENT = (
    "scanned_objects",
    "scanned_ref_slots",
    "root_slots",
    "boot_slots_scanned",
    "from_words",
)


class SchemaError(ValueError):
    """An event does not conform to its declared schema."""


@dataclass(frozen=True)
class Event:
    """One telemetry event: kind, simulated-clock time, payload."""

    kind: str
    time: float
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One flat JSON object (``kind`` and ``time`` join the payload)."""
        return json.dumps(
            {"kind": self.kind, "time": self.time, **self.data}, sort_keys=True
        )

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "Event":
        """Rebuild an Event from a parsed JSONL line."""
        data = {k: v for k, v in obj.items() if k not in ("kind", "time")}
        return cls(kind=obj["kind"], time=obj["time"], data=data)


def validate_event(event) -> None:
    """Raise :class:`SchemaError` unless ``event`` matches its schema.

    Accepts an :class:`Event` or a parsed JSONL dict (flat form).  Unknown
    kinds and missing/mistyped required keys are errors; extra keys are
    allowed by design.
    """
    if isinstance(event, Event):
        kind, time, data = event.kind, event.time, event.data
    else:
        kind = event.get("kind")
        time = event.get("time")
        data = {k: v for k, v in event.items() if k not in ("kind", "time")}
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        raise SchemaError(f"unknown event kind {kind!r}")
    if not isinstance(time, _NUM) or isinstance(time, bool):
        raise SchemaError(f"{kind}: time must be a number, got {time!r}")
    for key, types in schema.items():
        if key not in data:
            raise SchemaError(f"{kind}: missing required field {key!r}")
        value = data[key]
        # bool is an int subclass; only accept it where declared.
        if isinstance(value, bool) and bool not in types:
            raise SchemaError(f"{kind}.{key}: expected {types}, got bool")
        if not isinstance(value, types):
            raise SchemaError(
                f"{kind}.{key}: expected {types}, got {type(value).__name__}"
            )


def validate_events(events: Iterable) -> int:
    """Validate a stream of events; returns how many were checked."""
    count = 0
    for event in events:
        validate_event(event)
        count += 1
    return count


def pauses_from_events(events: Iterable) -> List[Tuple[float, float]]:
    """Reconstruct the pause timeline from ``gc.end`` events.

    Accepts Events or parsed JSONL dicts; the result feeds directly into
    :mod:`repro.analysis.pauses` and :mod:`repro.analysis.mmu`.
    """
    out: List[Tuple[float, float]] = []
    for event in events:
        if isinstance(event, Event):
            kind, data = event.kind, event.data
        else:
            kind, data = event.get("kind"), event
        if kind == "gc.end":
            out.append((data["pause_start"], data["pause_end"]))
    return out
