"""Chrome trace-event / Perfetto JSON export of a span timeline.

:func:`to_perfetto` renders a :class:`~repro.obs.trace.spans.Timeline`
as the JSON object format every Chrome-derived trace viewer (including
``ui.perfetto.dev``) accepts: a ``traceEvents`` list of complete ``"X"``
events plus ``"M"`` metadata naming each process and thread.

The pid/tid mapping (documented here because the viewer shows it):

* **pid 1** is the campaign track (present only for grid traces): one
  tid per cell, named ``job <i>``, carrying the ``grid:<i>`` dispatch
  spans.  Its timestamps are dispatch sequence numbers, not cycles.
* **pids 2+** are run partitions, one per grid cell (input order) or per
  ``run.start`` in a single-process trace.  Within a run pid, **tid 1**
  (``vm``) holds the run → gc → phase stack and **tid 2**
  (``requests``) holds request spans.

Timestamps are simulated cycles exported 1:1 as microseconds (``ts`` /
``dur`` are µs in the trace-event format; ``displayTimeUnit`` stays
``"ms"`` so a 10M-cycle run reads as 10s in the viewer).  Span attrs
ride in ``args`` with the deterministic span id as ``args.id``.

:func:`validate_perfetto` structurally checks an exported document the
way the CI trace job does: every event well-formed, timestamps
non-negative and monotone per track, and the X spans on each track
properly stack-nested (a child never outlives its parent).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Tuple, Union

from ..events import Event
from .spans import Span, Timeline, build_timeline


def _track_map(timeline: Timeline) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """Deterministic (partition, thread) → (pid, tid) assignment."""
    partitions: List[str] = []
    for part, _thread in timeline.tracks():
        if part not in partitions:
            partitions.append(part)
    mapping: Dict[Tuple[str, str], Tuple[int, int]] = {}
    run_pid = 2
    pid_of: Dict[str, int] = {}
    for part in partitions:
        if part == "campaign":
            pid_of[part] = 1
        else:
            pid_of[part] = run_pid
            run_pid += 1
    campaign_tids: Dict[str, int] = {}
    for part, thread in timeline.tracks():
        if part == "campaign":
            tid = campaign_tids.setdefault(thread, len(campaign_tids) + 1)
        else:
            tid = 1 if thread == "vm" else 2
        mapping[(part, thread)] = (pid_of[part], tid)
    return mapping


def to_perfetto(timeline: Timeline) -> Dict[str, Any]:
    """Render a timeline as a Chrome trace-event JSON object."""
    mapping = _track_map(timeline)
    events: List[Dict[str, Any]] = []
    named_pids: Dict[int, str] = {}
    named_tids: Dict[Tuple[int, int], str] = {}
    for (part, thread), (pid, tid) in mapping.items():
        if pid not in named_pids:
            named_pids[pid] = "campaign" if part == "campaign" else part
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": named_pids[pid]},
                }
            )
        if (pid, tid) not in named_tids:
            named_tids[(pid, tid)] = thread
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
    for span in timeline.spans:
        pid, tid = mapping[span.track]
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start,
                "dur": span.duration,
                "pid": pid,
                "tid": tid,
                "args": {"id": span.sid, **span.attrs},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "beltway-bench trace",
            "clock": "simulated cycles as microseconds",
            **{k: v for k, v in timeline.attrs.items() if k != "truncated"},
            "truncated_partitions": list(timeline.attrs.get("truncated", [])),
        },
    }


def write_perfetto(
    timeline: Timeline, target: Union[str, Path, IO[str]]
) -> Dict[str, Any]:
    """Serialise :func:`to_perfetto` output to a path or stream."""
    doc = to_perfetto(timeline)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(doc, stream, indent=1, sort_keys=True)
            stream.write("\n")
    else:
        json.dump(doc, target, indent=1, sort_keys=True)
    return doc


def validate_perfetto(doc: Dict[str, Any]) -> int:
    """Structurally validate an exported trace document.

    Raises :class:`ValueError` on the first violation; returns the number
    of ``X`` events checked.  Checks: ``traceEvents`` present; every
    event carries ``ph``/``pid``/``tid``; metadata events are named;
    complete events have non-negative ``ts``/``dur``; per (pid, tid)
    track, emission order is ts-monotone and the spans nest as a stack
    (each span either follows or encloses its predecessor — never
    straddles it).
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents missing or not a list")
    tracks: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    checked = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"traceEvents[{i}]: unsupported ph {ph!r}")
        for key in ("pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}]: missing {key!r}")
        if ph == "M":
            if event.get("args", {}).get("name") in (None, ""):
                raise ValueError(f"traceEvents[{i}]: unnamed metadata event")
            continue
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise ValueError(f"traceEvents[{i}]: bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ValueError(f"traceEvents[{i}]: bad dur {dur!r}")
        tracks.setdefault((event["pid"], event["tid"]), []).append((ts, ts + dur))
        checked += 1
    for track, spans in tracks.items():
        last_ts = -1.0
        stack: List[float] = []
        for ts, end in spans:
            if ts < last_ts:
                raise ValueError(
                    f"track {track}: ts not monotone ({ts} after {last_ts})"
                )
            last_ts = ts
            while stack and ts >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                raise ValueError(
                    f"track {track}: span [{ts}, {end}] straddles its "
                    f"enclosing span ending at {stack[-1]}"
                )
            stack.append(end)
    return checked


class TraceExportSink:
    """A bus sink that renders the whole run as Perfetto JSON on close.

    Buffers every event (spans need the full stream: a run span's extent
    comes from ``run.end``), builds the timeline and writes the document
    when closed.  ``spans_written`` reports the span count afterwards.
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        self._target = target
        self._events: List[Event] = []
        self.spans_written = 0
        self.closed = False

    def accept(self, event: Event) -> None:
        self._events.append(event)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        timeline = build_timeline(self._events)
        self.spans_written = len(timeline.spans)
        write_perfetto(timeline, self._target)
