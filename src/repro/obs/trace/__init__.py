"""repro.obs.trace — span timelines and Perfetto export.

Derives hierarchical spans (campaign → job, run → gc cycle → phase,
request service intervals) purely from the telemetry event stream and
renders them in the Chrome trace-event JSON format, so any run, serve,
slo, or campaign artefact opens in ``ui.perfetto.dev``::

    from repro.obs.trace import build_timeline, write_perfetto
    from repro.obs.sinks import iter_jsonl

    timeline = build_timeline(iter_jsonl("campaign.jsonl", validate=True))
    write_perfetto(timeline, "campaign.perfetto.json")

Or in one step from the command line::

    beltway-bench trace campaign.jsonl -o campaign.perfetto.json
"""

from .export import (
    TraceExportSink,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
)
from .spans import PHASE_COMPONENTS, Span, Timeline, build_timeline

__all__ = [
    "PHASE_COMPONENTS",
    "Span",
    "Timeline",
    "TraceExportSink",
    "build_timeline",
    "to_perfetto",
    "validate_perfetto",
    "write_perfetto",
]
