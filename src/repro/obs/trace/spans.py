"""Span model: hierarchical intervals derived purely from the event stream.

A :class:`Span` is a named ``[start, end]`` interval on a track, with a
deterministic id and an optional parent — the trace-viewer shape of what
the telemetry bus already publishes.  :func:`build_timeline` folds any
event stream (live :class:`~repro.obs.events.Event` objects or parsed
JSONL dicts) into a :class:`Timeline`; nothing here ever touches the VM
(reads-never-acts, DESIGN §10).

The hierarchy:

* **campaign → job**: ``grid.job`` orchestration events become one
  ``grid:<i>`` span per cell on the campaign track (host-side dispatch
  sequence, not simulated time);
* **run → gc → phase**: each run partition gets a ``run`` span covering
  ``[0, total_cycles]``, one ``gc <reason>`` child per collection, and —
  when the enriched ``gc.end`` counters are present — phase children
  (setup/copy/scan/roots/remset/free/boot) that tile the pause exactly,
  re-derived through the same :class:`~repro.sim.cost.CostModel` linear
  decomposition the pause was charged through;
* **requests**: ``request.start``/``request.end`` pairs become spans on a
  sibling track (service start → completion).

Partitioning is by provenance: events tagged with a ``job`` ordinal (the
cross-process relay tags everything it forwards; ``run.replay`` carries
one) belong to that grid cell, everything else to the root stream, which
is segmented into ``run:<n>`` partitions at ``run.start`` boundaries.

Determinism contract: span ids are built from the cell's *input ordinal*
and per-run collection ordinals — never from store keys (which
fingerprint the substrate tier) or host times — so fixed-seed timelines
are bit-identical across python/numpy/cffi tiers.  The
:meth:`Timeline.canonical` projection (run + gc spans only) is
additionally bit-identical between a cold run whose telemetry was
forwarded live and a warm replay synthesized from ``run.replay`` events,
and is what ``tests/data/golden_trace.json`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...sim.cost import CostModel
from ..events import Event

#: Phase-decomposition component order (mirrors profiler attribution).
PHASE_COMPONENTS = ("setup", "copy", "scan", "roots", "remset", "free", "boot")

#: Event kinds that belong to a run partition (everything the VM and the
#: server engine emit on the simulated clock).
_RUN_KINDS = frozenset(
    {
        "run.start",
        "run.end",
        "gc.start",
        "gc.end",
        "remset.batch",
        "alloc.region",
        "heap.snapshot",
        "phase",
        "request.start",
        "request.end",
        "profiler.survival",
        "profiler.geometry",
    }
)


@dataclass
class Span:
    """One named interval on a track.

    ``sid`` is the deterministic span id (``job:0/gc:3``); ``track`` is a
    ``(partition, thread)`` pair (``("job:0", "vm")``) the exporter maps
    to pid/tid; ``cat`` classifies (``run``/``gc``/``phase``/``request``/
    ``grid``); ``parent`` is the enclosing span's id or ``None``.
    """

    sid: str
    name: str
    cat: str
    start: float
    end: float
    track: Tuple[str, str]
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """All spans of one trace, in deterministic build order, plus build
    metadata (event/ignore counts, truncated partitions, drop totals)."""

    spans: List[Span] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def of_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct tracks in first-appearance order (export pid/tid map)."""
        seen: List[Tuple[str, str]] = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        return seen

    def canonical(self) -> List[Dict[str, Any]]:
        """The tier- and replay-invariant projection: run + gc spans only.

        Campaign spans are host-side scheduling (dispatch order varies
        with pool timing), phase spans require the enriched cold-run
        counters, and request spans cannot be synthesized from a stored
        ``RunStats`` — so none of them can be part of a projection that
        must be bit-identical across cold/warm replays.  What remains —
        ids, names, nesting, and durations in cycles — is pinned by
        ``tests/data/golden_trace.json``.
        """
        return [
            {
                "id": s.sid,
                "name": s.name,
                "start": s.start,
                "end": s.end,
                "parent": s.parent,
            }
            for s in self.spans
            if s.cat in ("run", "gc")
        ]


def _as_triple(event) -> Tuple[str, float, Dict[str, Any]]:
    if isinstance(event, Event):
        return event.kind, event.time, event.data
    kind = event.get("kind")
    time = event.get("time", 0.0)
    data = {k: v for k, v in event.items() if k not in ("kind", "time")}
    return kind, time, data


def _run_name(data: Dict[str, Any]) -> str:
    return (
        f"{data.get('benchmark', '?')} {data.get('collector', '?')}"
        f"@{data.get('heap_bytes', 0)}"
    )


def build_timeline(events: Iterable, *, cost_model: Optional[CostModel] = None) -> Timeline:
    """Fold an event stream into a :class:`Timeline`.

    Accepts :class:`~repro.obs.events.Event` objects or parsed JSONL
    dicts, in stream order.  Unknown or orchestration-only kinds are
    counted (``attrs["ignored"]``), never raised on — the builder is a
    reader of last resort and must survive any schema-valid stream.
    """
    cost_model = cost_model or CostModel()
    campaign: List[Tuple[float, Dict[str, Any]]] = []
    jobs: Dict[int, List[Tuple[str, float, Dict[str, Any]]]] = {}
    root: List[Tuple[str, float, Dict[str, Any]]] = []
    total = ignored = 0

    for event in events:
        kind, time, data = _as_triple(event)
        total += 1
        if kind == "grid.job":
            campaign.append((time, data))
        elif kind == "run.replay" or ("job" in data and kind in _RUN_KINDS):
            jobs.setdefault(int(data["job"]), []).append((kind, time, data))
        elif kind in _RUN_KINDS:
            root.append((kind, time, data))
        else:
            ignored += 1

    timeline = Timeline()
    timeline.attrs = {
        "events": total,
        "ignored": ignored,
        "jobs": len(jobs),
        "truncated": [],
    }

    _build_campaign(timeline, campaign)
    for index in sorted(jobs):
        # A job ordinal can recur across sequential batches (adaptive
        # searches like minheap re-dispatch single-cell batches), so a
        # job stream is segmented at run boundaries just like the root
        # stream; the first run keeps the bare ``job:<i>`` prefix so
        # single-batch campaign ids — the golden case — are unaffected.
        for n, segment in enumerate(_segments(jobs[index])):
            prefix = f"job:{index}" if n == 0 else f"job:{index}#{n + 1}"
            _build_partition(timeline, prefix, segment, cost_model)
    for n, segment in enumerate(_segments(root), start=1):
        _build_partition(timeline, f"run:{n}", segment, cost_model)
    return timeline


def _segments(stream):
    """Split an event stream at run boundaries (``run.start`` or a warm
    ``run.replay``), each of which begins a new partition segment."""
    current: List[Tuple[str, float, Dict[str, Any]]] = []
    for kind, time, data in stream:
        if kind in ("run.start", "run.replay") and current:
            yield current
            current = []
        current.append((kind, time, data))
    if current:
        yield current


def _build_campaign(timeline: Timeline, events) -> None:
    """One ``grid:<i>`` span per cell from its ``grid.job`` events.

    The span covers the cell's dispatch-sequence footprint (first event
    to terminal event); status/worker/attempts ride along as attrs.
    """
    if not events:
        return
    cells: Dict[int, List[Tuple[float, Dict[str, Any]]]] = {}
    for time, data in events:
        cells.setdefault(int(data.get("job", 0)), []).append((time, data))
    for index in sorted(cells):
        rows = cells[index]
        first_t = min(t for t, _ in rows)
        last_t, last = max(rows, key=lambda r: r[0])
        timeline.spans.append(
            Span(
                sid=f"grid:{index}",
                name=f"job {index} {_run_name(last)}",
                cat="grid",
                start=first_t,
                end=last_t,
                track=("campaign", f"job:{index}"),
                attrs={
                    "status": last.get("status", ""),
                    "worker": last.get("worker", 0),
                    "key": last.get("key", ""),
                    "attempts": max(int(d.get("attempt", 0)) for _, d in rows),
                },
            )
        )


def _build_partition(timeline: Timeline, prefix: str, events, cost_model) -> None:
    """Spans of one run partition: run → gc → phase, plus requests.

    Cold partitions carry the live (possibly forwarded) event stream;
    warm partitions carry a single ``run.replay``.  Both produce the
    same canonical run/gc spans.
    """
    replay = None
    run_start = None
    run_end = None
    gc_ends: List[Tuple[float, Dict[str, Any]]] = []
    requests: Dict[Any, Dict[str, Any]] = {}
    request_spans: List[Tuple[Any, float, float, Dict[str, Any]]] = []
    max_time = 0.0
    worker = None
    for kind, time, data in events:
        max_time = max(max_time, float(time))
        if worker is None and "worker" in data:
            worker = data["worker"]
        if kind == "run.replay":
            replay = data
        elif kind == "run.start":
            run_start = data
        elif kind == "run.end":
            run_end = data
        elif kind == "gc.end":
            gc_ends.append((time, data))
            max_time = max(max_time, float(data.get("pause_end", time)))
        elif kind == "request.start":
            requests[data.get("id")] = (time, data)
        elif kind == "request.end":
            started = requests.pop(data.get("id"), None)
            if started is not None:
                request_spans.append((data.get("id"), started[0], time, data))

    vm_track = (prefix, "vm")
    if run_start is None and replay is not None:
        # Warm partition: synthesize run + gc spans from the stored stats.
        run_sid = f"{prefix}/run"
        timeline.spans.append(
            Span(
                sid=run_sid,
                name=_run_name(replay),
                cat="run",
                start=0.0,
                end=float(replay["total_cycles"]),
                track=vm_track,
                attrs={"completed": bool(replay["completed"]), "replay": True},
            )
        )
        for k, pause in enumerate(replay["pauses"], start=1):
            start, end, reason = pause[0], pause[1], pause[2]
            timeline.spans.append(
                Span(
                    sid=f"{prefix}/gc:{k}",
                    name=f"gc {reason}",
                    cat="gc",
                    start=float(start),
                    end=float(end),
                    track=vm_track,
                    parent=run_sid,
                    attrs={"replay": True},
                )
            )
        return
    if run_start is None:
        # Nothing to anchor a run span on; skip the partition entirely.
        return

    run_sid = f"{prefix}/run"
    attrs: Dict[str, Any] = {}
    if worker is not None:
        attrs["worker"] = worker
    if run_end is not None:
        counters = run_end.get("counters", {})
        total_cycles = float(counters.get("run_total_cycles", max_time))
        attrs["completed"] = bool(run_end.get("completed", False))
    else:
        # The forwarding buffer overflowed before run.end: close the run
        # at the last observed instant and say so, loudly.
        total_cycles = max_time
        attrs["truncated"] = True
        timeline.attrs["truncated"].append(prefix)
    timeline.spans.append(
        Span(
            sid=run_sid,
            name=_run_name(run_start),
            cat="run",
            start=0.0,
            end=total_cycles,
            track=vm_track,
            attrs=attrs,
        )
    )

    for k, (time, data) in enumerate(gc_ends, start=1):
        gc_sid = f"{prefix}/gc:{k}"
        gc_attrs: Dict[str, Any] = {
            "collection": data.get("id"),
            "belts": list(data.get("belts", [])),
            "copied_bytes": data.get("copied_bytes", 0),
            "full_heap": data.get("full_heap", False),
        }
        if worker is not None:
            gc_attrs["worker"] = worker
        start = float(data.get("pause_start", time))
        end = float(data.get("pause_end", time))
        timeline.spans.append(
            Span(
                sid=gc_sid,
                name=f"gc {data.get('reason', '?')}",
                cat="gc",
                start=start,
                end=end,
                track=vm_track,
                parent=run_sid,
                attrs=gc_attrs,
            )
        )
        _decompose_phases(
            timeline, gc_sid, vm_track, start, end, data, cost_model, worker
        )

    req_track = (prefix, "requests")
    for rid, start, end, data in request_spans:
        timeline.spans.append(
            Span(
                sid=f"{prefix}/req:{rid}",
                name=str(data.get("task", "request")),
                cat="request",
                start=float(start),
                end=float(end),
                track=req_track,
                parent=run_sid,
                attrs={
                    "latency_cycles": data.get("latency_cycles", 0),
                    "gc_pauses": data.get("gc_pauses", 0),
                    "queue_depth": data.get("queue_depth", 0),
                },
            )
        )


def _decompose_phases(
    timeline, gc_sid, track, start, end, data, cost_model, worker
) -> None:
    """Tile one pause with its cost-model components, exactly.

    The decomposition re-applies the same linear cost model the pause was
    charged through (see ``obs.profiler.attribution``), so the components
    sum to the pause by construction; if they do not (a foreign cost
    model, or a stream without the enrichment counters), no phase spans
    are emitted rather than emitting a lie.
    """
    if "copied_objects" not in data or "scanned_ref_slots" not in data:
        return
    cm = cost_model
    cycles = {
        "setup": float(cm.gc_setup),
        "copy": float(
            cm.copy_object * data.get("copied_objects", 0)
            + cm.copy_word * data.get("copied_words", 0)
        ),
        "scan": float(cm.scan_slot * data.get("scanned_ref_slots", 0)),
        "roots": float(cm.root_slot * data.get("root_slots", 0)),
        "remset": float(cm.remset_slot * data.get("remset_slots", 0)),
        "free": float(cm.free_frame * data.get("freed_frames", 0)),
        "boot": float(cm.boot_scan_slot * data.get("boot_slots_scanned", 0)),
    }
    if sum(cycles.values()) != float(data.get("pause_cycles", end - start)):
        return
    t = start
    for comp in PHASE_COMPONENTS:
        dur = cycles[comp]
        if dur <= 0:
            continue
        attrs: Dict[str, Any] = {}
        if worker is not None:
            attrs["worker"] = worker
        timeline.spans.append(
            Span(
                sid=f"{gc_sid}/{comp}",
                name=comp,
                cat="phase",
                start=t,
                end=t + dur,
                track=track,
                parent=gc_sid,
                attrs=attrs,
            )
        )
        t += dur
