"""Cross-process telemetry relay: forward worker events to the coordinator.

Grid workers run each cell in a subprocess, so telemetry born inside a
worker (``gc.start``/``gc.end``/``request.*``/...) never reaches the
coordinator's bus on its own — only host-side ``grid.job`` orchestration
events survive the process boundary.  The relay closes that gap without
any live IPC machinery:

* the worker attaches a :class:`ForwardingSink` — a *bounded* buffer of
  ``(kind, time, data)`` triples — to the cell's private bus;
* the buffered events ride home inside the worker's ordinary pickled
  return value as a :class:`ForwardedCell`;
* the coordinator replays them onto its own bus via :func:`replay_events`,
  tagging every event with the worker pid, the cell's batch ordinal and
  its store key so a merged campaign timeline stays attributable.

The drop contract: the buffer is bounded (default 16384 events) with
drop-*newest* overflow — once full, later events are counted, not kept,
so the retained prefix is always a contiguous, causally consistent head
of the worker's stream (a run whose tail is missing still nests
correctly; an evicted-oldest policy would orphan ``gc.end`` events from
their ``run.start``).  Drops are *never silent*: the count travels back
on the :class:`ForwardedCell`, is summed into the campaign report, and
is surfaced by the CLI summary line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .events import Event

#: Default per-cell forwarding buffer, in events.  Sized so a typical
#: benchmark cell (hundreds of collections, a few thousand requests)
#: forwards losslessly while a runaway cell cannot pickle an unbounded
#: payload back across the process boundary.
DEFAULT_FORWARD_CAPACITY = 16384


class ForwardingSink:
    """Bounded event buffer a worker attaches to its private bus.

    Keeps the *first* ``capacity`` events (drop-newest overflow) as plain
    ``(kind, time, data)`` triples so the buffer pickles cheaply across
    the process boundary.  ``dropped`` counts evictions; ``accepted``
    counts every event offered, so ``accepted == len(events) + dropped``.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_FORWARD_CAPACITY):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"forwarding capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []
        self.accepted = 0
        self.dropped = 0

    def accept(self, event: Event) -> None:
        self.accepted += 1
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append((event.kind, event.time, dict(event.data)))


@dataclass
class ForwardedCell:
    """A worker's result plus the telemetry it buffered while producing it.

    ``result`` is whatever the cell runner returned (normally a
    ``RunStats``); ``events`` is the forwarding buffer's retained prefix;
    ``dropped`` is the overflow count; ``worker`` is the producing pid.
    """

    result: Any
    events: List[Tuple[str, float, Dict[str, Any]]] = field(default_factory=list)
    dropped: int = 0
    worker: int = 0


class DropTally:
    """Coordinator-side sink that totals the relay's loss accounting.

    The executor annotates each cell's terminal ``grid.job`` event with
    ``forwarded_events`` / ``forwarded_dropped`` (extra keys, allowed by
    schema); subscribing a tally next to the trace sink lets the CLI
    report campaign-wide drops without threading the grid report around.
    """

    def __init__(self) -> None:
        self.forwarded = 0
        self.dropped = 0

    def accept(self, event: Event) -> None:
        if event.kind != "grid.job":
            return
        self.forwarded += int(event.data.get("forwarded_events", 0))
        self.dropped += int(event.data.get("forwarded_dropped", 0))


def replay_events(
    bus,
    events: List[Tuple[str, float, Dict[str, Any]]],
    *,
    worker: int,
    job: int,
    key: str,
) -> int:
    """Re-emit forwarded worker events onto the coordinator bus.

    Every event is tagged with ``worker`` (producing pid), ``job`` (the
    cell's ordinal in the batch's input order — the deterministic identity
    the span layer partitions on) and ``key`` (the content-addressed store
    key, an attribute only).  Tags are extra data keys, which the schema
    layer allows by design, so replayed events stay schema-valid.
    Returns the number of events replayed.
    """
    count = 0
    for kind, time, data in events:
        tagged = dict(data)
        tagged["worker"] = worker
        tagged["job"] = job
        tagged["key"] = key
        bus.emit(kind, time, tagged)
        count += 1
    return count
