"""repro.obs — the streaming GC observability layer (telemetry bus).

One event substrate for everything the paper's evaluation measures:
collections (start/end, bytes copied, reserve state), remset batches,
allocation-region rollovers, per-phase host time and periodic heap
occupancy — published by attach-time instrumentation so a run with no
subscriber executes the untouched fast paths (golden counters stay
bit-identical), and consumed by JSONL streams, in-memory ring buffers or
Prometheus-style counter snapshots.

Typical use::

    from repro.obs import TelemetryBus, JsonlSink, attach

    bus = TelemetryBus()
    bus.subscribe(JsonlSink("trace.jsonl"))
    attach(vm, bus, snapshot_every=1)
    ...  # run the workload
    bus.close()

The harness wires this up for you: ``repro.run(...)`` with
``RunOptions(trace=...)``, or ``beltway-bench run --trace out.jsonl``.
"""

from .bus import TelemetryBus
from .events import (
    EVENT_SCHEMAS,
    Event,
    SchemaError,
    pauses_from_events,
    validate_event,
    validate_events,
)
from .instrument import Instrumentation, attach
from .relay import DropTally, ForwardedCell, ForwardingSink, replay_events
from .sinks import (
    CounterSink,
    JsonlLoadReport,
    JsonlSink,
    RingBufferSink,
    iter_jsonl,
    load_jsonl,
)
from .profiler import (
    ProfileOptions,
    ProfileReport,
    Profiler,
    attach_profiler,
)

__all__ = [
    "CounterSink",
    "DropTally",
    "EVENT_SCHEMAS",
    "Event",
    "ForwardedCell",
    "ForwardingSink",
    "Instrumentation",
    "JsonlLoadReport",
    "JsonlSink",
    "ProfileOptions",
    "ProfileReport",
    "Profiler",
    "RingBufferSink",
    "SchemaError",
    "TelemetryBus",
    "attach",
    "attach_profiler",
    "iter_jsonl",
    "load_jsonl",
    "pauses_from_events",
    "replay_events",
    "validate_event",
    "validate_events",
]
