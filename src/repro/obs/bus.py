"""The telemetry bus: one publish point, any number of sinks.

A :class:`TelemetryBus` is deliberately tiny: publishers call
:meth:`~TelemetryBus.emit` and every subscribed sink's ``accept`` method
receives the :class:`~repro.obs.events.Event`.  The zero-overhead story
lives one layer up — the instrumentation in :mod:`repro.obs.instrument`
only wraps a VM's hooks when a bus is attached, so a run with no bus
executes the exact pre-telemetry code paths — but the bus itself also
short-circuits: with no sinks, ``emit`` returns before constructing the
event object.

Events must never perturb the simulation: sinks observe counters and the
simulated clock, they do not call back into the heap (the layering rule
in DESIGN.md §10).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .events import Event


class TelemetryBus:
    """Fan-out of telemetry events to subscribed sinks."""

    __slots__ = ("_sinks",)

    def __init__(self) -> None:
        self._sinks: List[Any] = []

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one sink would observe an event."""
        return bool(self._sinks)

    def subscribe(self, sink):
        """Attach a sink (any object with ``accept(event)``); returns it."""
        if not callable(getattr(sink, "accept", None)):
            raise TypeError(f"sink {sink!r} has no accept(event) method")
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink) -> None:
        self._sinks.remove(sink)

    # ------------------------------------------------------------------
    def emit(self, kind: str, time: float, data: Dict[str, Any]) -> Optional[Event]:
        """Publish one event; returns it, or None when nobody listens."""
        if not self._sinks:
            return None
        event = Event(kind, time, data)
        for sink in self._sinks:
            sink.accept(event)
        return event

    def close(self) -> None:
        """Close every sink that supports it (flush files, etc.)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
