"""Attach-time VM instrumentation: where telemetry events come from.

The fast paths of this repository (the compiled mutator store loop, the
inlined Cheney trace) must stay bit-identical and unslowed when nobody is
observing, so instrumentation is **attach-time wrapping**, not in-line
hooks: :func:`attach` wraps a VM's collection entry points, frame
acquisition, and (optionally, for profiling) its barriered store path as
instance attributes.  A VM that was never attached executes code with no
telemetry branches at all — that is the "compiled out when disabled"
guarantee the golden-counter tests pin down.

The layering rule (DESIGN.md §10): instrumentation *reads* counters and
the simulated clock and *never* issues loads/stores, draws from the
benchmark RNG, or mutates collector state.  The one subtlety is remset
entry counts: reading ``len(remsets)`` drains pending SSB buffers early,
which is explicitly counter-safe (dedup totals are order-independent —
see ``repro.core.remset``).

Event flow per collection::

    plan.collect(reason)            -> gc.start   (wrapper, before work)
      ... copying trace ...
      collection_listeners fire     -> gc.end, remset.batch   (listener,
                                       after the VM charged the pause)
      every Nth collection          -> heap.snapshot
    space.acquire_frame(...)        -> alloc.region (any region rollover)
    run end                         -> phase* , run.end  (harness-driven)
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..heap.address import WORD_BYTES
from .bus import TelemetryBus

#: Collection entry points wrapped on a plan (whichever exist).
_COLLECT_ENTRIES = ("collect", "minor_collect", "major_collect")


def attach(
    vm,
    bus: TelemetryBus,
    snapshot_every: int = 1,
    profile: bool = False,
) -> "Instrumentation":
    """Wire ``vm`` to publish telemetry into ``bus``; returns the handle.

    ``snapshot_every`` emits a ``heap.snapshot`` event after every Nth
    collection; ``0`` disables periodic snapshots (``snapshot_now`` still
    works).  ``profile=True`` additionally wraps the barriered store path
    and the verifier with host timers — per-store overhead, so only the
    *split* of the resulting phase breakdown is meaningful.
    """
    return Instrumentation(vm, bus, snapshot_every=snapshot_every, profile=profile)


class Instrumentation:
    """One VM's telemetry hookup; owns the wrappers and the phase timers."""

    def __init__(
        self,
        vm,
        bus: TelemetryBus,
        snapshot_every: int = 1,
        profile: bool = False,
    ):
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0 (0 disables periodic "
                f"snapshots), got {snapshot_every}"
            )
        self.vm = vm
        self.bus = bus
        self.snapshot_every = snapshot_every
        self.profile = profile
        #: Host wall time per phase; ``mutator`` and ``total`` are filled
        #: by :meth:`end`.  ``barrier``/``verify`` stay 0.0 unless
        #: ``profile=True`` wrapped their per-call timers.
        self.phases: Dict[str, float] = {
            "mutator": 0.0, "barrier": 0.0, "collect": 0.0,
            "verify": 0.0, "total": 0.0,
        }
        self._since_snapshot = 0
        self._last_inserts = 0
        self._gc_seq = 0
        self._depth = 0
        self._entry_wall = 0.0
        #: (obj, attr, original, was-instance-attr) per wrapped attribute,
        #: in wrap order; :meth:`detach` unwinds it in reverse.
        self._wrapped = []
        self._detached = False
        self._wrap_collect_entries()
        self._wrap_acquire_frame()
        if profile:
            self._wrap_barrier()
            self._wrap_verify()
        vm.plan.collection_listeners.append(self._on_collection)

    # ------------------------------------------------------------------
    # Wrappers
    # ------------------------------------------------------------------
    def _set_wrapper(self, obj, name: str, wrapper) -> None:
        """Instance-patch ``obj.name``, remembering how to undo it."""
        self._wrapped.append((obj, name, getattr(obj, name), name in vars(obj)))
        setattr(obj, name, wrapper)

    def _wrap_collect_entries(self) -> None:
        plan = self.vm.plan
        for entry in _COLLECT_ENTRIES:
            inner = getattr(plan, entry, None)
            if inner is not None:
                self._set_wrapper(plan, entry, self._timed_entry(inner, entry))

    def _timed_entry(self, inner, entry_name: str):
        perf = time.perf_counter

        def timed(*args, **kwargs):
            if self._depth:  # delegation (collect -> minor_collect)
                return inner(*args, **kwargs)
            self._depth = 1
            self._gc_seq += 1
            reason = args[0] if args else kwargs.get("reason", entry_name)
            self._emit_gc_start(str(reason))
            self._entry_wall = t0 = perf()
            try:
                return inner(*args, **kwargs)
            finally:
                self._depth = 0
                self.phases["collect"] += perf() - t0

        return timed

    def _emit_gc_start(self, reason: str) -> None:
        vm = self.vm
        space = vm.space
        self.bus.emit("gc.start", vm.clock.now, {
            "seq": self._gc_seq,
            "reason": reason,
            "heap_frames_in_use": space.heap_frames_in_use,
            "heap_frames": space.heap_frames,
            "reserve_frames": self._reserve_frames(),
        })

    def _reserve_frames(self) -> int:
        current = getattr(self.vm.plan, "current_reserve_frames", None)
        return current() if current is not None else 0

    def _wrap_acquire_frame(self) -> None:
        space = self.vm.space
        inner = space.acquire_frame
        bus = self.bus
        clock = self.vm.clock

        def acquire_frame(space_name, boot=False):
            frame = inner(space_name, boot)
            bus.emit("alloc.region", clock.now, {
                "frame": frame.index,
                "space": space_name,
                "heap_frames_in_use": space.heap_frames_in_use,
            })
            return frame

        self._set_wrapper(space, "acquire_frame", acquire_frame)

    def _wrap_barrier(self) -> None:
        vm = self.vm
        inner = vm._write_ref_field
        phases = self.phases
        perf = time.perf_counter

        def timed_write(obj, index, value):
            t0 = perf()
            try:
                inner(obj, index, value)
            finally:
                phases["barrier"] += perf() - t0

        self._set_wrapper(vm, "_write_ref_field", timed_write)

    def _wrap_verify(self) -> None:
        plan = self.vm.plan
        inner = plan.verify
        phases = self.phases
        perf = time.perf_counter

        def timed_verify(*args, **kwargs):
            t0 = perf()
            try:
                return inner(*args, **kwargs)
            finally:
                phases["verify"] += perf() - t0

        self._set_wrapper(plan, "verify", timed_verify)

    # ------------------------------------------------------------------
    # Detach: return the VM to the untouched-code path
    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Unwind every wrapper and listener this attachment installed.

        After ``detach`` the VM executes structurally untouched code
        again (the instance attributes added at attach time are removed,
        not replaced), so fixed-seed counters from that point on are
        bit-identical to a VM that was never attached.  Wrappers unwind
        in reverse wrap order, so stacked attachments (telemetry over
        sanitizer, profile over plain) nest correctly as long as they
        detach LIFO.
        """
        if self._detached:
            return
        self._detached = True
        while self._wrapped:
            obj, name, original, was_instance = self._wrapped.pop()
            if was_instance:
                setattr(obj, name, original)
            else:
                delattr(obj, name)
        listeners = self.vm.plan.collection_listeners
        if self._on_collection in listeners:
            listeners.remove(self._on_collection)

    # ------------------------------------------------------------------
    # Collection listener
    # ------------------------------------------------------------------
    def _on_collection(self, result) -> None:
        """Emit gc.end + remset.batch; appended *after* the VM's own
        listener, so the pause is already on the clock when this runs."""
        vm = self.vm
        now = vm.clock.now
        pauses = vm.clock.pauses
        if pauses:
            pause = pauses[-1]
            pause_start, pause_end = pause.start, pause.end
        else:  # listener attached on a bare plan without a VM clock
            pause_start = pause_end = now
        # Host wall time from collection entry to this result's emission
        # (a batched collection's auxiliary results report partial times).
        wall_s = time.perf_counter() - self._entry_wall if self._depth else 0.0
        self.bus.emit("gc.end", now, {
            "id": result.collection_id,
            "reason": result.reason,
            "belts": list(result.belts_collected),
            "increments": result.increments_collected,
            "from_frames": result.from_frames,
            "copied_objects": result.copied_objects,
            "copied_words": result.copied_words,
            "copied_bytes": result.copied_words * WORD_BYTES,
            "freed_frames": result.freed_frames,
            "remset_slots": result.remset_slots,
            "full_heap": result.was_full_heap,
            # Enrichment keys (optional per schema; see GC_END_ENRICHMENT):
            # the work counters the profiler's cost attribution decomposes
            # each pause into, exactly mirroring CostModel.collection_cost.
            "from_words": result.from_words,
            "scanned_objects": result.scanned_objects,
            "scanned_ref_slots": result.scanned_ref_slots,
            "root_slots": result.root_slots,
            "boot_slots_scanned": result.boot_slots_scanned,
            "pause_start": pause_start,
            "pause_end": pause_end,
            "pause_cycles": pause_end - pause_start,
            "heap_frames_in_use": vm.space.heap_frames_in_use,
            "reserve_frames": result.reserve_frames,
            "wall_s": wall_s,
        })
        remsets = vm.plan.remsets
        inserts = remsets.inserts
        self.bus.emit("remset.batch", now, {
            "inserts": inserts - self._last_inserts,
            "drained_slots": result.remset_slots,
            "dropped_entries": result.remset_entries_dropped,
            "entries": len(remsets),
        })
        self._last_inserts = inserts
        if self.snapshot_every:
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_every:
                self.snapshot_now()
                self._since_snapshot = 0

    # ------------------------------------------------------------------
    # Harness-driven events
    # ------------------------------------------------------------------
    def snapshot_now(self) -> Dict[str, float]:
        """Emit (and return the payload of) a heap-occupancy snapshot."""
        vm = self.vm
        plan = vm.plan
        space = vm.space
        data = {
            "frames_in_use": space.heap_frames_in_use,
            "frames_total": space.heap_frames,
            "occupied_words": plan.live_words_upper_bound,
            "remset_entries": len(plan.remsets),
            "allocations": plan.allocations,
        }
        self.bus.emit("heap.snapshot", vm.clock.now, data)
        return data

    def begin(self, scale: float = 1.0, seed: int = 0) -> None:
        """Emit run.start for this VM's (benchmark, collector, heap)."""
        vm = self.vm
        self.bus.emit("run.start", vm.clock.now, {
            "benchmark": vm.benchmark_name,
            "collector": vm.collector_name,
            "heap_bytes": vm.heap_bytes,
            "scale": scale,
            "seed": seed,
        })

    def end(self, stats, total_wall_s: Optional[float] = None) -> Dict[str, float]:
        """Finalise phases, emit phase events and run.end; returns phases.

        ``stats`` is the run's :class:`~repro.sim.stats.RunStats`;
        ``total_wall_s`` is the harness-measured wall time of the whole
        run (mutator time is the remainder after barrier + collect).
        """
        phases = self.phases
        if total_wall_s is not None:
            phases["total"] = total_wall_s
            phases["mutator"] = max(
                0.0, total_wall_s - phases["barrier"] - phases["collect"]
            )
        now = self.vm.clock.now
        # Flush mutator remset inserts since the last collection, so the
        # per-batch inserts telescope exactly to the run's insert total.
        remsets = self.vm.plan.remsets
        inserts = remsets.inserts
        if inserts != self._last_inserts:
            self.bus.emit("remset.batch", now, {
                "inserts": inserts - self._last_inserts,
                "drained_slots": 0,
                "dropped_entries": 0,
                "entries": len(remsets),
            })
            self._last_inserts = inserts
        for name in ("mutator", "barrier", "collect", "verify", "total"):
            self.bus.emit("phase", now, {"name": name, "wall_s": phases[name]})
        counters = stats.counters()
        counters.update(self.vm.plan.barrier.stats.counters())
        counters.update(self.vm.plan.remsets.counters())
        self.bus.emit("run.end", now, {
            "completed": stats.completed,
            "failure": stats.failure,
            "counters": counters,
            "phases": dict(phases),
        })
        return dict(phases)
