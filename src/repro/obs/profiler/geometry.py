"""Heap-geometry timeline: who owns the frames, sampled over the run.

Each sample walks the mapped frames of the address space directly
(``frame.space_name`` / ``frame.used_words`` — metadata reads, never
``space.load``) and records per-label occupancy: frames held and words
bumped per belt (``belt0``, ``belt1``, ...) or gctk space (``nursery``,
``mature``, ``ss``).  Samples are taken at collection boundaries and at
every ``heap.snapshot`` event, so the timeline has exactly the cadence
the telemetry layer already exposes.  The result exports as a heatmap
table: one row per sample, one column per label.
"""

from __future__ import annotations

from typing import Dict, List


class GeometryTimeline:
    """Per-label frame/word occupancy samples over simulated time."""

    def __init__(self) -> None:
        self.rows: List[dict] = []
        self._labels: Dict[str, None] = {}  # insertion-ordered label set

    def sample(self, time: float, trigger: str, space) -> dict:
        """Record one occupancy sample; returns the row just appended."""
        occupancy: Dict[str, List[int]] = {}
        for frame in space.iter_frames():
            label = frame.space_name
            if label == "boot":
                continue
            cell = occupancy.get(label)
            if cell is None:
                cell = occupancy[label] = [0, 0]
                self._labels.setdefault(label, None)
            cell[0] += 1
            cell[1] += frame.used_words
        row = {
            "time": time,
            "trigger": trigger,
            "frames_in_use": space.heap_frames_in_use,
            "frames_total": space.heap_frames,
            "occupancy": occupancy,
        }
        self.rows.append(row)
        return row

    @property
    def labels(self) -> List[str]:
        """Every label ever observed, in first-seen order."""
        return list(self._labels)

    def heatmap(self, value: str = "frames") -> List[List[object]]:
        """The timeline as a table: header row, then one row per sample.

        ``value`` selects the cell metric: ``"frames"`` (frames held) or
        ``"words"`` (words bumped).  Missing cells are 0 — a label not
        present in a sample held nothing at that time.
        """
        index = 0 if value == "frames" else 1
        labels = self.labels
        table: List[List[object]] = [["time", "trigger", *labels]]
        for row in self.rows:
            cells = [row["time"], row["trigger"]]
            for label in labels:
                cell = row["occupancy"].get(label)
                cells.append(cell[index] if cell else 0)
            table.append(cells)
        return table
