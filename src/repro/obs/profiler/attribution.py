"""Phase cost attribution: where did each collection's pause go?

Every pause in this reproduction is charged through
:meth:`repro.sim.cost.CostModel.collection_cost`, a linear decomposition
over the collection's work counters.  That makes per-collection cost
attribution *exact*, not sampled: re-applying the component costs to the
counters carried on the enriched ``gc.end`` event splits each pause into
setup / copy / scan / root-scan / remset-drain / frame-free / boot-scan
cycles that sum to the charged pause by construction (a property the
tests assert).  Host wall time per collection (``wall_s``) rides along
for the copy/scan/drain wall-time view of the same split.
"""

from __future__ import annotations

from typing import Dict, List

#: Attribution component -> how its cycles derive from the gc.end event.
_COMPONENTS = ("setup", "copy", "scan", "roots", "remset", "free", "boot")


class CostAttribution:
    """Per-collection cycle decomposition from enriched ``gc.end`` events."""

    def __init__(self, cost_model):
        self.cost_model = cost_model
        self.rows: List[dict] = []

    def on_gc_end(self, data: Dict) -> dict:
        """Decompose one collection; returns (and stores) the row."""
        cm = self.cost_model
        copy = (
            cm.copy_object * data["copied_objects"]
            + cm.copy_word * data["copied_words"]
        )
        row = {
            "collection": data["id"],
            "reason": data["reason"],
            "belts": list(data["belts"]),
            "pause_cycles": data["pause_cycles"],
            "wall_s": data["wall_s"],
            "setup": cm.gc_setup,
            "copy": copy,
            "scan": cm.scan_slot * data.get("scanned_ref_slots", 0),
            "roots": cm.root_slot * data.get("root_slots", 0),
            "remset": cm.remset_slot * data["remset_slots"],
            "free": cm.free_frame * data["freed_frames"],
            "boot": cm.boot_scan_slot * data.get("boot_slots_scanned", 0),
            "copied_objects": data["copied_objects"],
            "copied_words": data["copied_words"],
            "scanned_ref_slots": data.get("scanned_ref_slots", 0),
            "root_slots": data.get("root_slots", 0),
            "remset_slots": data["remset_slots"],
            "freed_frames": data["freed_frames"],
            "boot_slots_scanned": data.get("boot_slots_scanned", 0),
        }
        row["modelled_cycles"] = sum(row[c] for c in _COMPONENTS)
        self.rows.append(row)
        return row

    def totals(self) -> dict:
        """Whole-run component totals plus their share of all GC cycles."""
        totals = {c: 0.0 for c in _COMPONENTS}
        pause_cycles = 0.0
        wall_s = 0.0
        for row in self.rows:
            for c in _COMPONENTS:
                totals[c] += row[c]
            pause_cycles += row["pause_cycles"]
            wall_s += row["wall_s"]
        modelled = sum(totals.values())
        return {
            "collections": len(self.rows),
            "pause_cycles": pause_cycles,
            "modelled_cycles": modelled,
            "wall_s": wall_s,
            "components": totals,
            "shares": {
                c: (totals[c] / modelled if modelled else 0.0)
                for c in _COMPONENTS
            },
        }
