"""``attach_profiler(vm)``: wire the GC profiler to a VM.

The profiler is a bus subscriber, like the tracer and the sanitizer: it
consumes ``gc.start`` / ``gc.end`` / ``heap.snapshot`` / ``run.*``
events (from a shared harness bus, or from a private bus + standard
instrumentation when attached standalone) and adds exactly two direct
hooks of its own, both instance-attribute wraps on existing seams:

* ``vm.alloc`` — birth-stamps every allocation with the bytes-allocated
  clock (``MutatorContext`` resolves ``vm.alloc`` per call, so contexts
  created before attach are covered too);
* ``space.release_frame`` — walks the frame's stamped objects *before*
  the space zeroes it, reading raw status words to split forwarded
  survivors from deaths (the one moment lifetime outcomes are visible).

Layering (DESIGN.md §12): the profiler reads counters, the clock, frame
metadata and raw frame storage; it never issues ``space.load``/``store``,
never draws from the benchmark RNG, and never mutates collector state —
so an attached run's ``RunStats`` are bit-identical to an unprofiled
run's, and a VM that never attaches executes untouched code (both pinned
against the golden counters, like the tracer and sanitizer before it).
"""

from __future__ import annotations

from typing import List, Optional

from ...heap.address import WORD_BYTES
from ..bus import TelemetryBus
from ..instrument import attach
from .attribution import CostAttribution
from .demographics import CollectionTally, LifetimeCensus
from .geometry import GeometryTimeline
from .pauses import IncrementalMMU, StreamingPercentiles
from .report import ProfileOptions, ProfileReport, aggregate_by_label


class Profiler:
    """One VM's lifetime census, pause analytics and geometry timeline."""

    def __init__(
        self,
        vm,
        options: Optional[ProfileOptions] = None,
        bus: Optional[TelemetryBus] = None,
    ):
        self.vm = vm
        self.options = options or ProfileOptions()
        self._owns_bus = bus is None
        if bus is None:
            bus = TelemetryBus()
            self._inst = attach(
                vm, bus, snapshot_every=self.options.snapshot_every
            )
        else:
            self._inst = None
        self.bus = bus
        self.census = LifetimeCensus(vm.space.frame_shift)
        self.percentiles = StreamingPercentiles()
        self.mmu = IncrementalMMU(self.options.mmu_windows)
        self.geometry = GeometryTimeline()
        self.attribution = CostAttribution(vm.cost_model)
        self.survival_rows: List[dict] = []
        self._tally = CollectionTally()
        self._geometry_seq = 0
        self._identity = {}
        self._phases = {}
        self._detached = False
        #: (obj, attr, original, was-instance-attr), unwound LIFO.
        self._wrapped: List[tuple] = []
        self._wrap_alloc()
        self._wrap_release_frame()
        bus.subscribe(self)

    # ------------------------------------------------------------------
    # Direct hooks (instance-attribute wrapping, nest/detach like
    # ``Instrumentation``: originals restored, stacked wrappers preserved)
    # ------------------------------------------------------------------
    def _set_wrapper(self, obj, name: str, wrapper) -> None:
        self._wrapped.append((obj, name, getattr(obj, name), name in vars(obj)))
        setattr(obj, name, wrapper)

    def _wrap_alloc(self) -> None:
        vm = self.vm
        inner = vm.alloc
        plan = vm.plan
        birth = self.census.birth

        def alloc(desc, length: int = 0) -> int:
            addr = inner(desc, length)
            birth(
                addr,
                plan.allocated_words * WORD_BYTES,
                desc.size_words(length) * WORD_BYTES,
            )
            return addr

        self._set_wrapper(vm, "alloc", alloc)

    def _wrap_release_frame(self) -> None:
        space = self.vm.space
        inner = space.release_frame
        census = self.census
        plan = self.vm.plan
        shift = space.frame_shift

        def release_frame(frame) -> None:
            # Resolve stamps before the inner release zeroes the storage.
            census.frame_released(
                frame,
                frame.index << shift,
                plan.allocated_words * WORD_BYTES,
                self._tally,
            )
            inner(frame)

        self._set_wrapper(space, "release_frame", release_frame)

    # ------------------------------------------------------------------
    # Bus subscriber
    # ------------------------------------------------------------------
    def accept(self, event) -> None:
        kind = event.kind
        if kind == "gc.end":
            data = event.data
            self.percentiles.add(data["pause_end"] - data["pause_start"])
            self.mmu.add_pause(data["pause_start"], data["pause_end"])
            self.attribution.on_gc_end(data)
            self._flush_tally(data["id"], event.time)
            self._sample_geometry(event.time, "gc.end")
        elif kind == "gc.start":
            # Releases between collections (empty-increment flips) carry
            # no stamps; anything tallied belongs to the collection now
            # starting, so a fresh tally per gc.start is sufficient.
            self._tally = CollectionTally()
            self._sample_geometry(event.time, "gc.start")
        elif kind == "heap.snapshot":
            self._sample_geometry(event.time, "heap.snapshot")
        elif kind == "run.start":
            self._identity = dict(event.data)
        elif kind == "run.end":
            self._phases = dict(event.data.get("phases", {}))

    def _flush_tally(self, collection: int, time: float) -> None:
        rows = self._tally.rows(collection)
        self._tally = CollectionTally()
        if not rows:
            return
        self.survival_rows.extend(rows)
        if self.options.emit_events:
            for row in rows:
                self.bus.emit("profiler.survival", time, row)

    def _sample_geometry(self, time: float, trigger: str) -> None:
        row = self.geometry.sample(time, trigger, self.vm.space)
        if self.options.emit_events:
            self._geometry_seq += 1
            self.bus.emit("profiler.geometry", time, {
                "sample": self._geometry_seq,
                "trigger": trigger,
                "frames_in_use": row["frames_in_use"],
                "frames_total": row["frames_total"],
                "occupancy": row["occupancy"],
            })

    # ------------------------------------------------------------------
    def finalise(self, stats) -> ProfileReport:
        """Close the census and assemble the :class:`ProfileReport`.

        ``stats`` is the run's :class:`~repro.sim.stats.RunStats`; the
        profiler is left attached (callers detach separately if the VM
        lives on).
        """
        total = stats.total_cycles
        self.census.finalise(self.vm.plan.allocated_words * WORD_BYTES)
        report = ProfileReport(
            benchmark=stats.benchmark,
            collector=stats.collector,
            heap_bytes=stats.heap_bytes,
            scale=float(self._identity.get("scale", 1.0)),
            seed=int(self._identity.get("seed", 0)),
            completed=stats.completed,
            total_cycles=total,
            gc_cycles=stats.gc_cycles,
            allocated_bytes=stats.allocated_bytes,
            demographics=self.census.summary(),
            survival_curve=self.census.survival_curve(),
            survival_by_collection=list(self.survival_rows),
            survival_by_label=aggregate_by_label(self.survival_rows),
            pauses=self.percentiles.summary(),
            mmu_curve=self.mmu.finalise(total),
            worst_windows=self.mmu.worst_windows(total),
            geometry=self.geometry.rows,
            geometry_labels=self.geometry.labels,
            attribution=self.attribution.rows,
            attribution_totals=self.attribution.totals(),
            phases=dict(self._phases),
        )
        return report

    def detach(self) -> None:
        """Unwind the hooks; the VM executes untouched code again."""
        if self._detached:
            return
        self._detached = True
        while self._wrapped:
            obj, name, original, was_instance = self._wrapped.pop()
            if was_instance:
                setattr(obj, name, original)
            else:
                delattr(obj, name)
        self.bus.unsubscribe(self)
        if self._inst is not None:
            self._inst.detach()


def attach_profiler(
    vm,
    options: Optional[ProfileOptions] = None,
    bus: Optional[TelemetryBus] = None,
) -> Profiler:
    """Attach a :class:`Profiler` to ``vm`` and return it (public API).

    With ``bus=None`` the profiler builds a private bus and attaches
    standard instrumentation to feed it (standalone use on a hand-built
    VM).  The harness passes its shared bus instead, so one set of
    wrappers serves tracing and profiling together.  Attach before the
    workload allocates — objects born earlier are invisible to the
    census (the boot image deliberately so).
    """
    return Profiler(vm, options=options, bus=bus)
