"""repro.obs.profiler — the GC profiler on top of the telemetry bus.

Lifetime demographics (birth-stamped allocation accounting, survival
curves by age in bytes allocated, per-belt survivor fractions), streaming
pause analytics (exact percentile sketch, incrementally computed MMU
curves, worst-window identification), heap-geometry timelines and exact
per-collection cost attribution — attached to a VM only at
``attach_profiler`` time, so an unprofiled run executes untouched code.

Typical use through the harness::

    report = repro.run("jess", "25.25.100", 48 * 1024,
                       options=repro.RunOptions(profile="full"))
    print(report.profile.to_markdown())

or standalone on a hand-built VM::

    from repro.obs.profiler import attach_profiler

    profiler = attach_profiler(vm)
    ...  # run the workload
    print(profiler.finalise(vm.finish()).to_json())
"""

from .attach import Profiler, attach_profiler
from .attribution import CostAttribution
from .demographics import CollectionTally, LifetimeCensus
from .geometry import GeometryTimeline
from .pauses import (
    DEFAULT_STREAM_WINDOWS,
    IncrementalMMU,
    StreamingPercentiles,
)
from .report import ProfileOptions, ProfileReport, aggregate_by_label

__all__ = [
    "CollectionTally",
    "CostAttribution",
    "DEFAULT_STREAM_WINDOWS",
    "GeometryTimeline",
    "IncrementalMMU",
    "LifetimeCensus",
    "ProfileOptions",
    "ProfileReport",
    "Profiler",
    "StreamingPercentiles",
    "aggregate_by_label",
    "attach_profiler",
]
