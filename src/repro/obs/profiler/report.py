"""ProfileReport: the self-contained artefact one profiled run produces.

Everything the profiler computed — lifetime demographics, streaming pause
analytics, heap-geometry timeline, per-collection cost attribution — in
one plain-data object that serialises to JSON (``to_json``) and renders
as a self-contained markdown report (``to_markdown``).  The analysis
layer (:mod:`repro.analysis.profile`) regenerates its survival-curve and
pause-percentile tables from this object (or its dict/JSON round trip)
without re-running the benchmark.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .pauses import DEFAULT_STREAM_WINDOWS


@dataclass(frozen=True)
class ProfileOptions:
    """How to profile a run (``RunOptions(profile=ProfileOptions(...))``;
    ``profile="full"`` means these defaults)."""

    #: Window ladder (cycles) the incremental MMU evaluates while
    #: streaming; windows longer than the run complete at finalise time.
    mmu_windows: Tuple[float, ...] = DEFAULT_STREAM_WINDOWS
    #: Emit ``profiler.survival`` / ``profiler.geometry`` events back
    #: into the telemetry bus (they land in traces and ring buffers).
    emit_events: bool = True
    #: Heap-snapshot cadence when the profiler owns its private bus
    #: (standalone ``attach_profiler``); the harness's shared bus uses
    #: ``RunOptions.snapshot_every`` instead.
    snapshot_every: int = 1


@dataclass
class ProfileReport:
    """One profiled run, as data."""

    benchmark: str = ""
    collector: str = ""
    heap_bytes: int = 0
    scale: float = 1.0
    seed: int = 0
    completed: bool = False
    total_cycles: float = 0.0
    gc_cycles: float = 0.0
    allocated_bytes: int = 0

    #: Aggregate census counts (stamped/died/moved/censored).
    demographics: Dict[str, Any] = field(default_factory=dict)
    #: Survival curve rows (log2 age buckets, byte-weighted).
    survival_curve: List[dict] = field(default_factory=list)
    #: Per-(label, increment) survivor accounting, one row per collection.
    survival_by_collection: List[dict] = field(default_factory=list)
    #: Whole-run per-label aggregate (nursery vs older belts).
    survival_by_label: List[dict] = field(default_factory=list)

    #: Streaming percentile summary (count/total/mean/p50/p90/p99/max).
    pauses: Dict[str, float] = field(default_factory=dict)
    #: (window, mmu) ladder evaluated incrementally during the stream.
    mmu_curve: List[Tuple[float, float]] = field(default_factory=list)
    #: Worst-window identification per streamed window length.
    worst_windows: List[dict] = field(default_factory=list)

    #: Heap-geometry samples (per-label frames/words over time).
    geometry: List[dict] = field(default_factory=list)
    #: First-seen-order label list for the heatmap columns.
    geometry_labels: List[str] = field(default_factory=list)

    #: Per-collection cost decomposition rows.
    attribution: List[dict] = field(default_factory=list)
    #: Whole-run component totals and shares.
    attribution_totals: Dict[str, Any] = field(default_factory=dict)

    #: Host wall-time phase split (``Instrumentation.end``), if measured.
    phases: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "collector": self.collector,
            "heap_bytes": self.heap_bytes,
            "scale": self.scale,
            "seed": self.seed,
            "completed": self.completed,
            "total_cycles": self.total_cycles,
            "gc_cycles": self.gc_cycles,
            "allocated_bytes": self.allocated_bytes,
            "demographics": dict(self.demographics),
            "survival_curve": list(self.survival_curve),
            "survival_by_collection": list(self.survival_by_collection),
            "survival_by_label": list(self.survival_by_label),
            "pauses": dict(self.pauses),
            "mmu_curve": [list(point) for point in self.mmu_curve],
            "worst_windows": list(self.worst_windows),
            "geometry": list(self.geometry),
            "geometry_labels": list(self.geometry_labels),
            "attribution": list(self.attribution),
            "attribution_totals": dict(self.attribution_totals),
            "phases": dict(self.phases),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "ProfileReport":
        report = cls()
        for name in vars(report):
            if name in obj:
                setattr(report, name, obj[name])
        report.mmu_curve = [tuple(point) for point in report.mmu_curve]
        return report

    # ------------------------------------------------------------------
    # Markdown rendering
    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        lines = [
            f"# GC profile: {self.benchmark} / {self.collector}",
            "",
            f"- heap: {self.heap_bytes} bytes, scale {self.scale}, "
            f"seed {self.seed}",
            f"- completed: {self.completed}",
            f"- total cycles: {self.total_cycles:.0f} "
            f"(GC: {self.gc_cycles:.0f}, "
            f"{100.0 * self.gc_cycles / self.total_cycles:.1f}%)"
            if self.total_cycles else "- total cycles: 0",
            f"- allocated: {self.allocated_bytes} bytes",
            "",
        ]
        lines += self._demographics_md()
        lines += self._pauses_md()
        lines += self._attribution_md()
        lines += self._geometry_md()
        return "\n".join(lines) + "\n"

    def _demographics_md(self) -> List[str]:
        demo = self.demographics
        lines = ["## Lifetime demographics", ""]
        if demo:
            lines.append(
                f"{demo.get('stamped_objects', 0)} objects stamped "
                f"({demo.get('stamped_bytes', 0)} bytes); "
                f"{demo.get('died_objects', 0)} died, "
                f"{demo.get('moved_objects', 0)} copies observed, "
                f"{demo.get('censored_objects', 0)} alive at exit "
                f"(censored)."
            )
            lines.append("")
        if self.survival_by_label:
            lines += _md_table(
                ["label", "collections", "survived bytes", "died bytes",
                 "survivor fraction"],
                [[r["label"], r["collections"], r["survived_bytes"],
                  r["died_bytes"], f"{r['survivor_fraction']:.3f}"]
                 for r in self.survival_by_label],
            )
            lines.append("")
        if self.survival_curve:
            lines.append("### Survival by age (bytes allocated)")
            lines.append("")
            lines += _md_table(
                ["age bucket (bytes)", "died bytes", "censored bytes",
                 "surviving fraction"],
                [[f"{r['age_lo_bytes']}–{r['age_hi_bytes']}",
                  r["died_bytes"], r["censored_bytes"],
                  f"{r['surviving_fraction']:.3f}"]
                 for r in self.survival_curve],
            )
            lines.append("")
        return lines

    def _pauses_md(self) -> List[str]:
        lines = ["## Pause analytics", ""]
        p = self.pauses
        if p:
            lines.append(
                f"n={p.get('count', 0):.0f} total={p.get('total', 0):.0f} "
                f"mean={p.get('mean', 0):.0f} p50={p.get('p50', 0):.0f} "
                f"p90={p.get('p90', 0):.0f} p99={p.get('p99', 0):.0f} "
                f"max={p.get('max', 0):.0f} (cycles)"
            )
            lines.append("")
        if self.mmu_curve:
            lines.append("### Minimum mutator utilisation (incremental)")
            lines.append("")
            worst = {w["window"]: w for w in self.worst_windows}
            rows = []
            for window, value in self.mmu_curve:
                at = worst.get(window)
                rows.append([
                    f"{window:.0f}", f"{value:.4f}",
                    f"{at['start']:.0f}" if at else "--",
                    f"{at['paused']:.0f}" if at else "--",
                ])
            lines += _md_table(
                ["window (cycles)", "MMU", "worst window start",
                 "paused in worst"],
                rows,
            )
            lines.append("")
        return lines

    def _attribution_md(self) -> List[str]:
        lines = ["## Cost attribution", ""]
        totals = self.attribution_totals
        if totals:
            shares = totals.get("shares", {})
            components = totals.get("components", {})
            # Canonical order: JSON round trips sort dict keys, so the
            # rendering must not depend on insertion order.
            order = ("setup", "copy", "scan", "roots", "remset", "free", "boot")
            names = [c for c in order if c in components]
            names += sorted(set(components) - set(names))
            lines += _md_table(
                ["component", "cycles", "share"],
                [[c, f"{components[c]:.0f}",
                  f"{100.0 * shares.get(c, 0.0):.1f}%"]
                 for c in names],
            )
            lines.append("")
            lines.append(
                f"{totals.get('collections', 0)} collections, "
                f"{totals.get('pause_cycles', 0):.0f} pause cycles "
                f"({totals.get('wall_s', 0):.4f}s host wall)."
            )
            lines.append("")
        return lines

    def _geometry_md(self) -> List[str]:
        lines = ["## Heap geometry (frames per label)", ""]
        if not self.geometry:
            return lines + ["(no samples)", ""]
        labels = self.geometry_labels
        rows = []
        for row in self.geometry:
            cells = [f"{row['time']:.0f}", row["trigger"]]
            for label in labels:
                cell = row["occupancy"].get(label)
                cells.append(str(cell[0]) if cell else "0")
            rows.append(cells)
        lines += _md_table(["time", "trigger", *labels], rows)
        lines.append("")
        return lines


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return out


def aggregate_by_label(rows: Sequence[dict]) -> List[dict]:
    """Collapse per-collection survivor rows to one row per label."""
    by_label: Dict[str, List[float]] = {}
    collections: Dict[str, set] = {}
    for row in rows:
        cell = by_label.setdefault(row["label"], [0, 0, 0, 0])
        cell[0] += row["survived_objects"]
        cell[1] += row["survived_bytes"]
        cell[2] += row["died_objects"]
        cell[3] += row["died_bytes"]
        collections.setdefault(row["label"], set()).add(row["collection"])
    out = []
    for label in sorted(by_label):
        so, sb, do, db = by_label[label]
        denominator = sb + db
        out.append({
            "label": label,
            "collections": len(collections[label]),
            "survived_objects": so,
            "survived_bytes": sb,
            "died_objects": do,
            "died_bytes": db,
            "survivor_fraction": sb / denominator if denominator else 0.0,
        })
    return out
