"""Streaming pause analytics: percentile sketch and incremental MMU.

Both structures consume the pause timeline *as it happens* (one
``add(...)`` per ``gc.end`` event) instead of post-processing
``RunStats.pause_intervals()`` after the run, and both are required to be
**point-identical** to the post-hoc analysis layer:

* :class:`StreamingPercentiles` keeps an insertion-sorted duration list,
  so its nearest-rank percentiles are, by construction, the same floats
  :func:`repro.analysis.pauses.percentile` computes on the sorted
  post-hoc durations;
* :class:`IncrementalMMU` maintains the sorted pause arrays + prefix sums
  of :func:`repro.analysis.mmu.mmu` incrementally and evaluates window
  anchors *eagerly*: an anchor ``t0`` of window ``w`` is scored the
  moment the stream time passes ``t0 + w``, which is safe because pauses
  arrive in non-decreasing time order — no later pause can intersect
  ``[t0, t0 + w)``.  Anchors that never mature (and the run-boundary
  anchors, which need the final run length) are completed in
  :meth:`IncrementalMMU.finalise`.

The point-identity is pinned by tests against ``analysis.mmu.mmu_curve``
and ``analysis.mmu.mmu_curve_from_events`` on all six benchmark specs.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis.mmu import pause_time_in
from ...quantiles import percentile

#: Default window ladder (cycles) evaluated *during* the stream: geometric
#: steps of 4x from about 1e3 to 1e9 cycles, bracketing every scaled
#: workload's pauses and run lengths.  Windows longer than the run are
#: completed at finalise time (they clamp to the run length, which is not
#: known while streaming).
DEFAULT_STREAM_WINDOWS: Tuple[float, ...] = tuple(
    float(4 ** k) for k in range(5, 16)
)


class StreamingPercentiles:
    """Exact streaming percentiles over pause durations.

    An insertion-sorted list (O(n) insert, exact answers) rather than an
    approximate sketch: runs here have at most a few thousand pauses, and
    the acceptance criterion is *equality* with the post-hoc
    nearest-rank percentiles, which an approximate sketch cannot honour.
    """

    def __init__(self) -> None:
        self._sorted: List[float] = []
        self.count = 0
        self.total = 0.0

    def add(self, duration: float) -> None:
        insort(self._sorted, duration)
        self.count += 1
        self.total += duration

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, the shared ``repro.quantiles`` floats."""
        return percentile(self._sorted, q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def summary(self) -> Dict[str, float]:
        """The same fields as :class:`repro.analysis.pauses.PauseSummary`."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class _WindowState:
    """Running minimum + pending anchors for one streamed window length."""

    __slots__ = ("window", "best_util", "worst_t0", "worst_paused", "pending")

    def __init__(self, window: float):
        self.window = window
        self.best_util = 1.0
        self.worst_t0: Optional[float] = None
        self.worst_paused = 0.0
        self.pending: deque = deque()


class IncrementalMMU:
    """Bounded-mutator-utilisation curves maintained during the stream.

    ``add_pause`` appends to the same sorted ``starts``/``ends``/prefix
    structure the post-hoc :func:`repro.analysis.mmu.mmu` builds (pauses
    arrive in time order from the simulated clock, so appending *is*
    sorted insertion, and the prefix sums accumulate in the same order —
    the floats are bit-identical).  Each registered window keeps a running
    minimum over matured anchors; :meth:`finalise` completes the pending
    and boundary anchors and returns the curve.  :meth:`mmu_at` evaluates
    any window post-hoc from the maintained arrays with exactly the
    anchor set and arithmetic of ``analysis.mmu.mmu``.
    """

    def __init__(self, windows: Sequence[float] = DEFAULT_STREAM_WINDOWS):
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._prefix: List[float] = [0.0]
        self._states: List[_WindowState] = [
            _WindowState(float(w)) for w in sorted(set(windows))
        ]
        self._now = 0.0
        self._finalised: Optional[List[Tuple[float, float]]] = None

    # ------------------------------------------------------------------
    @property
    def pause_count(self) -> int:
        return len(self._starts)

    def add_pause(self, start: float, end: float) -> None:
        """Record one pause; evaluate every anchor this pause matured."""
        if start < self._now:
            raise ValueError(
                f"pauses must arrive in time order (got start={start} "
                f"after t={self._now})"
            )
        self._starts.append(start)
        self._ends.append(end)
        self._prefix.append(self._prefix[-1] + (end - start))
        self._now = end
        for state in self._states:
            w = state.window
            state.pending.append(start)
            state.pending.append(end - w)
            self._drain_matured(state)

    def _drain_matured(self, state: _WindowState) -> None:
        """Score pending anchors whose window is fully in the past."""
        w = state.window
        now = self._now
        pending = state.pending
        kept = deque()
        while pending:
            anchor = pending.popleft()
            t0 = max(anchor, 0.0)
            if t0 + w <= now:
                self._score(state, t0)
            else:
                kept.append(anchor)
        state.pending = kept

    def _score(self, state: _WindowState, t0: float) -> None:
        w = state.window
        paused = pause_time_in(self._starts, self._ends, self._prefix, t0, t0 + w)
        util = 1.0 - paused / w
        if util < state.best_util:
            state.best_util = util
            state.worst_t0 = t0
            state.worst_paused = paused

    # ------------------------------------------------------------------
    def mmu_at(self, window: float, total_time: float) -> float:
        """MMU of one window length — the exact ``analysis.mmu.mmu``
        computation over the incrementally maintained pause arrays."""
        if total_time <= 0:
            return 1.0
        window = min(window, total_time)
        if window <= 0:
            return 0.0 if self._starts else 1.0
        starts, ends, prefix = self._starts, self._ends, self._prefix
        anchors = [0.0, total_time - window]
        anchors.extend(starts)
        anchors.extend(e - window for e in ends)
        best_util = 1.0
        for t0 in anchors:
            t0 = min(max(t0, 0.0), total_time - window)
            paused = pause_time_in(starts, ends, prefix, t0, t0 + window)
            util = 1.0 - paused / window
            if util < best_util:
                best_util = util
        return max(0.0, best_util)

    def curve(
        self, windows: Sequence[float], total_time: float
    ) -> List[Tuple[float, float]]:
        """(window, MMU) points for arbitrary window lengths."""
        return [(w, self.mmu_at(w, total_time)) for w in windows]

    # ------------------------------------------------------------------
    def finalise(self, total_time: float) -> List[Tuple[float, float]]:
        """Complete every streamed window and return the (w, mmu) ladder.

        Windows no shorter than the run (their effective length clamps to
        ``total_time``, unknown while streaming) and the two run-boundary
        anchors are evaluated post-hoc via :meth:`mmu_at`; for windows the
        stream fully matured this merges the eager minimum with the
        clamped leftovers — the result equals ``mmu_at`` on every window
        (pinned by tests), the eager path just did the work early.
        """
        out: List[Tuple[float, float]] = []
        for state in self._states:
            w = state.window
            if total_time <= 0 or w >= total_time or w <= 0:
                out.append((w, self.mmu_at(w, total_time)))
                continue
            for anchor in (0.0, total_time - w, *state.pending):
                t0 = min(max(anchor, 0.0), total_time - w)
                self._score(state, t0)
            state.pending.clear()
            out.append((w, max(0.0, state.best_util)))
        self._finalised = out
        return out

    def worst_windows(self, total_time: float) -> List[Dict[str, float]]:
        """Per streamed window: where the minimum-utilisation window sits.

        Call after :meth:`finalise`.  ``start`` is the anchor of the
        worst window, ``paused`` the GC time packed into it — the
        worst-window identification the post-hoc analysis cannot give
        without re-scanning every anchor.
        """
        rows = []
        for state in self._states:
            if state.worst_t0 is None:
                continue
            rows.append({
                "window": state.window,
                "utilisation": max(0.0, state.best_util),
                "start": state.worst_t0,
                "paused": state.worst_paused,
            })
        return rows
