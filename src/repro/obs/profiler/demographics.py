"""Object-lifetime demographics: birth stamps, death walks, survival.

Every allocation is stamped with the *bytes-allocated-so-far* clock (the
standard GC age measure: an object's age is how much allocation happened
during its lifetime, not wall time).  Stamps are kept per frame, so the
death walk is driven by the one seam every collector in this repository
already funnels reclamation through: ``space.release_frame``.  When a
frame is released at the end of a collection its stamped objects are
resolved by reading the frame's raw storage directly (``frame.words``,
never ``space.load`` — the walk must be counter-free):

* status word odd → the object was copied; the stamp follows the
  forwarding pointer to its new frame (age keeps accumulating);
* status word even → the object died; its age is folded into a log2
  age histogram and into the per-belt accounting of the open collection.

Objects still stamped when the run ends are *censored* — alive at exit,
lifetime unknown — and are reported separately rather than counted as
deaths (counting them would bias the survival curve down).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Forwarding-pointer convention shared by every collector here: an odd
#: status word holds ``new_addr | 1`` (see ``core.collector`` /
#: ``gctk.copying``).
_FORWARDED_BIT = 1


class CollectionTally:
    """Per-(label, increment) survivor/death accounting of one collection."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        #: (label, increment id) -> [survived_objs, survived_bytes,
        #:                           died_objs, died_bytes]
        self.cells: Dict[Tuple[str, int], List[int]] = {}

    def _cell(self, label: str, increment: int) -> List[int]:
        key = (label, increment)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = [0, 0, 0, 0]
        return cell

    def survived(self, label: str, increment: int, size_bytes: int) -> None:
        cell = self._cell(label, increment)
        cell[0] += 1
        cell[1] += size_bytes

    def died(self, label: str, increment: int, size_bytes: int) -> None:
        cell = self._cell(label, increment)
        cell[2] += 1
        cell[3] += size_bytes

    def rows(self, collection: int) -> List[dict]:
        """One flat dict per (label, increment) touched, sorted stably."""
        out = []
        for (label, inc), (so, sb, do, db) in sorted(self.cells.items()):
            denominator = sb + db
            out.append({
                "collection": collection,
                "label": label,
                "increment": inc,
                "survived_objects": so,
                "survived_bytes": sb,
                "died_objects": do,
                "died_bytes": db,
                "survivor_fraction": sb / denominator if denominator else 0.0,
            })
        return out


class LifetimeCensus:
    """Birth-stamped allocation accounting and the survival histogram."""

    def __init__(self, frame_shift: int):
        self._frame_shift = frame_shift
        #: frame index -> {addr: (birth_bytes, size_bytes)} for every
        #: stamped object currently living in that frame.
        self._by_frame: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.stamped_objects = 0
        self.stamped_bytes = 0
        self.died_objects = 0
        self.died_bytes = 0
        self.moved_objects = 0
        #: log2(age bytes) bucket -> [objects, bytes] for completed deaths.
        self._died_buckets: Dict[int, List[int]] = {}
        #: Same bucketing for censored (alive-at-exit) objects.
        self._alive_buckets: Dict[int, List[int]] = {}
        self.censored_objects = 0
        self.censored_bytes = 0

    # ------------------------------------------------------------------
    def birth(self, addr: int, birth_bytes: int, size_bytes: int) -> None:
        """Stamp a fresh allocation with the current allocation clock."""
        frame = addr >> self._frame_shift
        stamps = self._by_frame.get(frame)
        if stamps is None:
            stamps = self._by_frame[frame] = {}
        stamps[addr] = (birth_bytes, size_bytes)
        self.stamped_objects += 1
        self.stamped_bytes += size_bytes

    # ------------------------------------------------------------------
    def frame_released(
        self,
        frame,
        frame_base: int,
        now_bytes: int,
        tally: Optional[CollectionTally],
    ) -> None:
        """Resolve every stamped object of a frame about to be recycled.

        Must run *before* the space zeroes the frame: the walk reads the
        raw status words to distinguish forwarded survivors from deaths.
        ``frame_base`` is the frame's byte base address; ``now_bytes`` the
        current allocation clock; ``tally`` the open collection's
        accumulator (survivor fractions), or None outside a collection.
        """
        stamps = self._by_frame.pop(frame.index, None)
        if not stamps:
            return
        words = frame.words
        shift = self._frame_shift
        label = frame.space_name
        increment = getattr(frame.increment, "id", -1)
        by_frame = self._by_frame
        for addr, stamp in stamps.items():
            status = words[(addr - frame_base) >> 2]
            if status & _FORWARDED_BIT:
                new_addr = status & ~_FORWARDED_BIT
                dest = by_frame.get(new_addr >> shift)
                if dest is None:
                    dest = by_frame[new_addr >> shift] = {}
                dest[new_addr] = stamp
                self.moved_objects += 1
                if tally is not None:
                    tally.survived(label, increment, stamp[1])
            else:
                self._record_death(now_bytes - stamp[0], stamp[1])
                if tally is not None:
                    tally.died(label, increment, stamp[1])

    def _record_death(self, age_bytes: int, size_bytes: int) -> None:
        bucket = int(age_bytes).bit_length()
        cell = self._died_buckets.get(bucket)
        if cell is None:
            cell = self._died_buckets[bucket] = [0, 0]
        cell[0] += 1
        cell[1] += size_bytes
        self.died_objects += 1
        self.died_bytes += size_bytes

    # ------------------------------------------------------------------
    def finalise(self, end_bytes: int) -> None:
        """Classify everything still stamped as censored (alive at exit)."""
        for stamps in self._by_frame.values():
            for birth_bytes, size_bytes in stamps.values():
                bucket = int(end_bytes - birth_bytes).bit_length()
                cell = self._alive_buckets.get(bucket)
                if cell is None:
                    cell = self._alive_buckets[bucket] = [0, 0]
                cell[0] += 1
                cell[1] += size_bytes
                self.censored_objects += 1
                self.censored_bytes += size_bytes
        self._by_frame.clear()

    # ------------------------------------------------------------------
    def survival_curve(self) -> List[dict]:
        """Byte-weighted survival by age: one row per log2 age bucket.

        ``surviving_fraction`` at bucket ``b`` is the fraction of all
        *resolved* bytes (died + censored) not yet observed dead at ages
        below the bucket's upper edge; censored objects only ever raise
        it — they are known to have lived at least to their last age.
        """
        buckets = sorted(set(self._died_buckets) | set(self._alive_buckets))
        total = self.died_bytes + self.censored_bytes
        if not buckets or not total:
            return []
        rows = []
        dead_so_far = 0
        for bucket in buckets:
            died = self._died_buckets.get(bucket, (0, 0))
            alive = self._alive_buckets.get(bucket, (0, 0))
            dead_so_far += died[1]
            rows.append({
                "age_lo_bytes": 0 if bucket == 0 else 1 << (bucket - 1),
                "age_hi_bytes": (1 << bucket) - 1,
                "died_objects": died[0],
                "died_bytes": died[1],
                "censored_objects": alive[0],
                "censored_bytes": alive[1],
                "surviving_fraction": 1.0 - dead_so_far / total,
            })
        return rows

    def summary(self) -> dict:
        return {
            "stamped_objects": self.stamped_objects,
            "stamped_bytes": self.stamped_bytes,
            "died_objects": self.died_objects,
            "died_bytes": self.died_bytes,
            "moved_objects": self.moved_objects,
            "censored_objects": self.censored_objects,
            "censored_bytes": self.censored_bytes,
        }
