"""Telemetry sinks: JSONL streaming, ring buffer, counter export.

A sink is any object with ``accept(event)``; these three cover the uses
the harness and tests need:

* :class:`JsonlSink` streams every event as one JSON line — the
  ``beltway-bench run --trace out.jsonl`` artefact, diffable and
  replayable by the analysis layer;
* :class:`RingBufferSink` keeps the last N events in memory — what tests
  and interactive sessions inspect;
* :class:`CounterSink` folds the stream into a flat Prometheus-style
  ``name -> value`` dict — the scrape-shaped export the analysis layer
  consumes instead of reaching into VM internals.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Union

from .events import Event, SchemaError, validate_event


class JsonlSink:
    """Stream events as JSON lines to a path or an open text stream.

    When constructed from a path the file is owned (and closed) by the
    sink; an externally supplied stream is flushed but left open.
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._stream = target
            self._owned = False
        self.count = 0

    def accept(self, event: Event) -> None:
        self._stream.write(event.to_json())
        self._stream.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._owned:
            if not self._stream.closed:
                self._stream.close()
        else:
            try:
                self._stream.flush()
            except (ValueError, OSError):  # already closed by the owner
                pass


@dataclass
class JsonlLoadReport:
    """What one JSONL load saw: lines read, events yielded, lines skipped.

    ``corrupt`` counts lines that were not valid JSON objects; ``invalid``
    counts parsed events that failed schema validation (unknown kind,
    missing/mistyped required field).  Both are only ever non-zero in
    ``validate=True`` mode — without validation, corrupt lines raise.
    """

    lines: int = 0
    events: int = 0
    corrupt: int = 0
    invalid: int = 0

    @property
    def skipped(self) -> int:
        return self.corrupt + self.invalid


def iter_jsonl(
    source: Union[str, Path, IO[str]],
    *,
    validate: bool = False,
    report: Optional[JsonlLoadReport] = None,
) -> Iterator[dict]:
    """Stream a JSONL trace as flat event dicts, one line at a time.

    The streaming complement of :func:`load_jsonl` — a multi-gigabyte
    campaign trace is consumed without materialising the event list.
    With ``validate=True`` every line is checked against the event
    schemas and bad input is *skipped, not raised*: corrupt JSON and
    schema-invalid events are counted into ``report`` (pass a
    :class:`JsonlLoadReport` to observe the counts) so one truncated
    line cannot take down a whole trace build.  Without ``validate``,
    corrupt JSON raises as before and no schema checking happens.
    """
    report = report if report is not None else JsonlLoadReport()
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            yield from _iter_stream(stream, validate, report)
    else:
        yield from _iter_stream(source, validate, report)


def _iter_stream(stream, validate: bool, report: JsonlLoadReport):
    for line in stream:
        if not line.strip():
            continue
        report.lines += 1
        if validate:
            try:
                obj = json.loads(line)
            except ValueError:
                report.corrupt += 1
                continue
            if not isinstance(obj, dict):
                report.corrupt += 1
                continue
            try:
                validate_event(obj)
            except SchemaError:
                report.invalid += 1
                continue
        else:
            obj = json.loads(line)
        report.events += 1
        yield obj


def load_jsonl(
    source: Union[str, Path, IO[str]],
    *,
    validate: bool = False,
    report: Optional[JsonlLoadReport] = None,
) -> List[dict]:
    """Parse a JSONL trace back into flat event dicts.

    ``validate``/``report`` behave exactly as in :func:`iter_jsonl`
    (validation skips and counts bad lines instead of raising).
    """
    return list(iter_jsonl(source, validate=validate, report=report))


class RingBufferSink:
    """Keep the most recent ``capacity`` events (all of them if None).

    Overflow semantics are oldest-dropped: once ``capacity`` events are
    buffered, each further ``accept`` silently evicts the oldest event
    before appending the new one (the buffer always holds the most recent
    ``capacity`` events, never blocks, never raises).  ``dropped`` counts
    evictions so far and ``accepted`` counts every event ever offered, so
    ``accepted == len(sink) + sink.dropped`` holds at all times.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"ring buffer capacity must be positive, got {capacity}")
        self._buffer: deque = deque(maxlen=capacity)
        self.accepted = 0
        #: Events evicted to make room (oldest-dropped overflow count).
        self.dropped = 0

    def accept(self, event: Event) -> None:
        maxlen = self._buffer.maxlen
        if maxlen is not None and len(self._buffer) == maxlen:
            self.dropped += 1
        self._buffer.append(event)
        self.accepted += 1

    @property
    def events(self) -> List[Event]:
        return list(self._buffer)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._buffer if e.kind == kind]

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class CounterSink:
    """Fold the event stream into a Prometheus-style name→value dict.

    ``*_total`` names are monotonic counters accumulated across events;
    bare names are gauges carrying the latest observation.  ``run.end``
    merges the run's full counter export (see ``RunStats.counters``), so
    a finished run's snapshot is a superset of the live-updated subset.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _add(self, name: str, amount: float) -> None:
        self._values[name] = self._values.get(name, 0.0) + amount

    def _max(self, name: str, value: float) -> None:
        if value > self._values.get(name, 0.0):
            self._values[name] = value

    def accept(self, event: Event) -> None:
        kind = event.kind
        data = event.data
        if kind == "gc.end":
            self._add("gc_collections_total", 1)
            self._add("gc_copied_bytes_total", data["copied_bytes"])
            self._add("gc_freed_frames_total", data["freed_frames"])
            self._add("gc_pause_cycles_total", data["pause_cycles"])
            self._max("gc_max_pause_cycles", data["pause_cycles"])
            if data["full_heap"]:
                self._add("gc_full_heap_total", 1)
            self._values["heap_frames_in_use"] = float(data["heap_frames_in_use"])
        elif kind == "remset.batch":
            self._add("remset_inserts_total", data["inserts"])
            self._add("remset_drained_slots_total", data["drained_slots"])
            self._add("remset_dropped_entries_total", data["dropped_entries"])
            self._values["remset_entries"] = float(data["entries"])
        elif kind == "alloc.region":
            self._add("alloc_region_rollovers_total", 1)
            self._values["heap_frames_in_use"] = float(data["heap_frames_in_use"])
        elif kind == "heap.snapshot":
            self._values["heap_frames_in_use"] = float(data["frames_in_use"])
            self._values["heap_occupied_words"] = float(data["occupied_words"])
        elif kind == "phase":
            self._values[f"phase_{data['name']}_seconds"] = float(data["wall_s"])
        elif kind == "run.end":
            for name, value in data["counters"].items():
                self._values[name] = float(value)
            self._values["run_completed"] = float(bool(data["completed"]))

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """A copy of the current name→value export."""
        return dict(self._values)

    def render(self) -> str:
        """Prometheus text exposition (one ``name value`` line each).

        Ordering is pinned: lines are sorted by metric name, so two
        snapshots with the same values render byte-identically no matter
        what order the events arrived in.  ``parse`` inverts it exactly.
        """
        lines = [f"{name} {value}" for name, value in sorted(self._values.items())]
        return "\n".join(lines)

    @staticmethod
    def parse(text: str) -> Dict[str, float]:
        """Invert :meth:`render`: text exposition back to name→value.

        ``parse(sink.render()) == sink.snapshot()`` holds for every sink
        (the round-trip contract the golden-diff tooling relies on).
        """
        values: Dict[str, float] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            name, _, raw = line.rpartition(" ")
            if not name:
                raise ValueError(f"counter line has no value: {line!r}")
            values[name] = float(raw)
        return values
