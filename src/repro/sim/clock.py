"""Simulated clock and pause timeline.

Time advances only when work is charged: mutator work moves the clock
while the mutator runs, collector work moves it inside a recorded *pause*.
The resulting pause timeline is exactly what the responsiveness analysis
(minimum mutator utilisation, Fig. 11) needs: it captures clustering of
collections, not just individual pause lengths — the effect Cheng &
Blelloch's MMU metric was designed to expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class PauseRecord:
    """One stop-the-world collection on the timeline."""

    start: float
    end: float
    reason: str
    copied_words: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Clock:
    """Accumulates mutator and collector time in cycles."""

    def __init__(self) -> None:
        self.now = 0.0
        self.mutator_cycles = 0.0
        self.gc_cycles = 0.0
        self.pauses: List[PauseRecord] = []

    def charge_mutator(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative mutator charge {cycles}")
        self.now += cycles
        self.mutator_cycles += cycles

    def charge_pause(self, cycles: float, reason: str, copied_words: int = 0) -> PauseRecord:
        if cycles < 0:
            raise ValueError(f"negative pause charge {cycles}")
        record = PauseRecord(
            start=self.now, end=self.now + cycles, reason=reason, copied_words=copied_words
        )
        self.now += cycles
        self.gc_cycles += cycles
        self.pauses.append(record)
        return record

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return self.now

    @property
    def gc_fraction(self) -> float:
        """Fraction of total time spent collecting (Fig. 1a)."""
        return self.gc_cycles / self.now if self.now else 0.0

    @property
    def max_pause(self) -> float:
        return max((p.duration for p in self.pauses), default=0.0)
