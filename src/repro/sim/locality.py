"""Coarse locality penalty: cache reuse and paging effects on the mutator.

The paper's total-time results contain two effects that pure GC-work
accounting cannot produce (§4.2.6):

* 209_db and pseudojbb are "very sensitive to locality effects";
* "Appel performs very poorly in large heaps for pseudojbb because the
  program thrashes when its nursery becomes too large and spreads out live
  data too much" — i.e. the best total time is *not* at the largest heap
  (also Fig. 1b).

We model both with a benchmark-parameterised multiplier on mutator work:

    multiplier = 1 + cache_sensitivity * min(overrun, 4)           (cache)
               + paging_factor * max(0, footprint/memory - 1)      (paging)

where ``overrun = max(0, (reuse_ws - cache) / cache)`` and the reuse
working set is the region the mutator cycles through between collections —
dominated by the allocation area (the nursery), plus the live data it
touches.  This is deliberately simple: it reproduces the paper's
*qualitative* locality stories (flat db curves, pseudojbb's large-heap
degradation, small-nursery locality benefits) without pretending to model
a PowerPC G4 memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LocalityModel:
    """Benchmark-specific locality parameters (all sizes in words)."""

    #: Effective cache size; working sets beyond it slow the mutator.
    cache_words: int = 16 * 1024
    #: How strongly this benchmark's mutator suffers per unit of cache
    #: overrun (db and pseudojbb are high; jess and raytrace low).
    cache_sensitivity: float = 0.0
    #: Physical memory; a footprint beyond it thrashes.  0 disables paging.
    memory_words: int = 0
    #: Slowdown per unit of memory overcommit.
    paging_factor: float = 4.0

    def multiplier(self, reuse_ws_words: int, footprint_words: int) -> float:
        """Mutator slowdown for the current working set and footprint."""
        factor = 1.0
        if self.cache_sensitivity and reuse_ws_words > self.cache_words:
            overrun = (reuse_ws_words - self.cache_words) / self.cache_words
            factor += self.cache_sensitivity * min(overrun, 4.0)
        if self.memory_words and footprint_words > self.memory_words:
            overcommit = footprint_words / self.memory_words - 1.0
            factor += self.paging_factor * overcommit
        return factor


#: No locality effects at all (unit multiplier) — the default for tests.
NO_LOCALITY = LocalityModel()
