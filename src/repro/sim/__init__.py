"""Deterministic time simulation: cost model, clock, locality, statistics."""

from .clock import Clock, PauseRecord
from .cost import CYCLES_PER_SECOND, CostModel, DEFAULT_COST_MODEL, cycles_to_seconds
from .locality import NO_LOCALITY, LocalityModel
from .stats import RunStats

__all__ = [
    "CYCLES_PER_SECOND",
    "Clock",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "LocalityModel",
    "NO_LOCALITY",
    "PauseRecord",
    "RunStats",
    "cycles_to_seconds",
]
