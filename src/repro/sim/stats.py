"""Run statistics: everything a paper table or figure consumes.

A :class:`RunStats` is the complete, serialisable outcome of executing one
benchmark against one collector configuration at one heap size.  The
analysis layer never reaches back into VM internals — every figure in the
paper is derived from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .clock import PauseRecord
from .cost import cycles_to_seconds


@dataclass
class RunStats:
    """Outcome of one (benchmark, collector, heap size) run."""

    benchmark: str
    collector: str
    heap_bytes: int
    completed: bool = True
    failure: str = ""

    # time (cycles)
    total_cycles: float = 0.0
    gc_cycles: float = 0.0
    mutator_cycles: float = 0.0
    pauses: List[PauseRecord] = field(default_factory=list)

    # volume
    allocations: int = 0
    allocated_bytes: int = 0
    copied_bytes: int = 0
    collections: int = 0
    full_heap_collections: int = 0

    # write barrier
    barrier_fast: int = 0
    barrier_slow: int = 0

    # remsets
    remset_inserts: int = 0
    peak_remset_entries: int = 0

    # heap shape
    peak_footprint_bytes: int = 0
    #: bytes occupied by heap objects right after each collection — the
    #: reclamation floor; incomplete configurations show a rising floor
    #: (retained cross-increment cycles)
    post_gc_occupancy_bytes: List[int] = field(default_factory=list)

    #: Request-latency outcome (:class:`repro.workloads.latency.RequestStats`)
    #: for open-loop server workloads; ``None`` for the closed-loop SPEC
    #: replays.  Typed loosely so the sim layer stays independent of the
    #: workloads layer; the grid store rebuilds it on deserialisation.
    requests: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def gc_fraction(self) -> float:
        """Fraction of total time in GC (Fig. 1a)."""
        return self.gc_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def total_seconds(self) -> float:
        return cycles_to_seconds(self.total_cycles)

    @property
    def gc_seconds(self) -> float:
        return cycles_to_seconds(self.gc_cycles)

    @property
    def max_pause_cycles(self) -> float:
        return max((p.duration for p in self.pauses), default=0.0)

    @property
    def survival_bytes_per_collection(self) -> float:
        return self.copied_bytes / self.collections if self.collections else 0.0

    def late_occupancy_floor(self) -> int:
        """Lowest post-collection occupancy over the last half of the
        run's collections (0 if fewer than two collections)."""
        series = self.post_gc_occupancy_bytes
        if len(series) < 2:
            return 0
        return min(series[len(series) // 2:])

    def pause_intervals(self) -> List[Tuple[float, float]]:
        """(start, end) pairs for the MMU computation."""
        return [(p.start, p.end) for p in self.pauses]

    def counters(self) -> Dict[str, float]:
        """Prometheus-style ``name -> value`` export of this run.

        This is the counter snapshot the telemetry layer publishes in its
        ``run.end`` event and the analysis layer consumes instead of
        reaching into VM internals; names follow the ``*_total`` counter /
        bare-name gauge convention.
        """
        durations = [p.duration for p in self.pauses]
        counters = {
            "run_completed": float(self.completed),
            "run_total_cycles": float(self.total_cycles),
            "run_gc_cycles": float(self.gc_cycles),
            "run_mutator_cycles": float(self.mutator_cycles),
            "alloc_objects_total": float(self.allocations),
            "alloc_bytes_total": float(self.allocated_bytes),
            "gc_collections_total": float(self.collections),
            "gc_full_heap_total": float(self.full_heap_collections),
            "gc_copied_bytes_total": float(self.copied_bytes),
            "gc_pauses_total": float(len(durations)),
            "gc_pause_cycles_total": float(sum(durations)),
            "gc_max_pause_cycles": float(max(durations, default=0.0)),
            "barrier_fast_total": float(self.barrier_fast),
            "barrier_slow_total": float(self.barrier_slow),
            "remset_inserts_total": float(self.remset_inserts),
            "remset_peak_entries": float(self.peak_remset_entries),
            "heap_peak_footprint_bytes": float(self.peak_footprint_bytes),
        }
        if self.requests is not None:
            counters.update(self.requests.counters())
        return counters

    def summary_row(self) -> str:
        """One formatted line for console tables."""
        status = "ok" if self.completed else f"FAIL({self.failure})"
        return (
            f"{self.benchmark:<10} {self.collector:<14} "
            f"{self.heap_bytes / 1024:8.1f}KB  GCs={self.collections:<4} "
            f"gc={self.gc_seconds:7.3f}s total={self.total_seconds:7.3f}s "
            f"gc%={100 * self.gc_fraction:5.1f} {status}"
        )
