"""Deterministic cost model: abstract time from counted work.

The paper reports wall-clock seconds on a 733 MHz PowerMac G4.  We cannot
(and need not) model that machine: every claim in the evaluation is about
*relative* time — curves normalised to the best configuration in each
figure, crossover heap sizes, robustness across heap sizes.  Those are
functions of the work each collector performs, which this reproduction
counts exactly: words allocated and copied, reference slots scanned, write
barrier fast/slow paths, root and remset processing, and per-collection
fixed overhead.

The unit is the abstract *cycle*; :data:`CYCLES_PER_SECOND` converts to
pseudo-seconds only for presentation.  Constants are calibrated to the
relative magnitudes measured for Jikes RVM-era copying collectors (e.g.
Hosking, Moss & Stefanović's barrier measurements; copying an object costs
roughly an order of magnitude more per word than allocating one): barrier
fast paths are a few cycles, remset inserts several times that, copying
dominates collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for every counted operation."""

    # --- mutator ------------------------------------------------------
    alloc_object: float = 6.0  # size check, bump, header init
    alloc_word: float = 1.0  # zeroing and cache traffic per word
    barrier_fast: float = 3.0  # shift, compare (paper Fig. 4 fast path)
    barrier_slow: float = 24.0  # remset hash + insert
    field_read: float = 1.0
    field_write: float = 1.0  # the store itself, barrier charged separately
    work_unit: float = 300.0  # benchmark-declared computation: one "work
    # unit" is a few hundred cycles of application code, calibrated so the
    # SPEC-like workloads spend ~35-45% of time in GC at their minimum
    # heaps and ~10-15% at 3x (paper Fig. 1a)

    # --- collector ----------------------------------------------------
    gc_setup: float = 8_000.0  # stop-the-world handshake, flip, unlog
    copy_word: float = 10.0  # load+store+allocation in copy space
    copy_object: float = 20.0  # forwarding-pointer install, size decode
    scan_slot: float = 6.0  # load, from-space test per reference slot
    root_slot: float = 8.0  # stack/global map decoding per root
    remset_slot: float = 12.0  # remset iteration, re-read, re-insert test
    free_frame: float = 50.0  # unmapping and pool bookkeeping
    boot_scan_slot: float = 6.0  # per boot-image slot, for collectors that
    #                              rescan the boot image (the Appel baseline)

    def mutator_alloc_cost(self, size_words: int) -> float:
        return self.alloc_object + self.alloc_word * size_words

    def collection_cost(
        self,
        copied_objects: int,
        copied_words: int,
        scanned_ref_slots: int,
        root_slots: int,
        remset_slots: int,
        freed_frames: int,
        boot_slots_scanned: int = 0,
    ) -> float:
        """Pause cost of one collection, from its work counters."""
        return (
            self.gc_setup
            + self.copy_object * copied_objects
            + self.copy_word * copied_words
            + self.scan_slot * scanned_ref_slots
            + self.root_slot * root_slots
            + self.remset_slot * remset_slots
            + self.free_frame * freed_frames
            + self.boot_scan_slot * boot_slots_scanned
        )


#: Conversion used only for presentation (pseudo-seconds in the tables).
CYCLES_PER_SECOND = 733e6 / 16.0  # a "733 MHz" machine at 16 cycles/op headroom


def cycles_to_seconds(cycles: float) -> float:
    return cycles / CYCLES_PER_SECOND


DEFAULT_COST_MODEL = CostModel()
