"""Event tracing: a machine-readable timeline of a run.

Records the collection-level events of a run — when each GC happened on
the simulated clock, what it collected, what it copied and freed — plus
periodic heap-shape snapshots, and serialises them as JSON lines.  This
is the artefact to diff when two collector versions disagree, and the
input for external plotting.

Since the telemetry bus landed (``repro.obs``), :class:`Tracer` is a thin
*subscriber* on that bus rather than a second hook path into the
collector: attaching a tracer attaches standard VM instrumentation
(``repro.obs.instrument.attach``) to a private bus and folds the richer
``gc.end`` / ``heap.snapshot`` events down to the legacy two-kind
``TraceEvent`` timeline, so traces written before and after the bus
existed stay diffable line for line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Dict, List

from ..obs import TelemetryBus, attach
from ..runtime.vm import VM

#: gc.end payload keys copied verbatim into a "collection" TraceEvent —
#: exactly the fields the pre-bus tracer recorded, in its spelling.
_COLLECTION_KEYS = (
    "id", "reason", "belts", "from_frames", "copied_words",
    "copied_objects", "freed_frames", "remset_slots", "full_heap",
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced event (collection or snapshot)."""

    kind: str  # "collection" | "snapshot"
    time: float  # simulated cycles at the event
    data: Dict

    def to_json(self) -> str:
        return json.dumps(
            {"kind": self.kind, "time": self.time, **self.data},
            sort_keys=True,
        )


class Tracer:
    """Attach to a VM before the run; read ``events`` after it.

    ``snapshot_every=N`` records a heap-shape snapshot after every Nth
    collection; ``snapshot_every=0`` (the default) disables periodic
    snapshots — :meth:`snapshot` still records one on demand.  Negative
    values raise ``ValueError``.
    """

    def __init__(self, vm: VM, snapshot_every: int = 0):
        self.vm = vm
        self.events: List[TraceEvent] = []
        self.bus = TelemetryBus()
        # All hooks into the VM live in the shared instrumentation; the
        # tracer itself only folds bus events down to TraceEvents.
        self._inst = attach(vm, self.bus, snapshot_every=snapshot_every)
        self.bus.subscribe(self)
        self._detached = False

    # ------------------------------------------------------------------
    # Bus subscriber
    # ------------------------------------------------------------------
    def accept(self, event) -> None:
        if event.kind == "gc.end":
            data = {key: event.data[key] for key in _COLLECTION_KEYS}
            self.events.append(
                TraceEvent(kind="collection", time=event.time, data=data)
            )
        elif event.kind == "heap.snapshot":
            self.events.append(
                TraceEvent(kind="snapshot", time=event.time, data=dict(event.data))
            )

    def snapshot(self) -> TraceEvent:
        """Record the current heap shape."""
        self._inst.snapshot_now()
        return self.events[-1]

    def detach(self) -> None:
        """Stop tracing and return the VM to the untouched-code path.

        The recorded ``events`` stay readable; the VM's counters advance
        bit-identically to a never-traced VM from here on.  Safe to call
        more than once.
        """
        if self._detached:
            return
        self._detached = True
        self._inst.detach()
        self.bus.unsubscribe(self)

    # ------------------------------------------------------------------
    def collections(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "collection"]

    def snapshots(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "snapshot"]

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per line; returns the event count."""
        for event in self.events:
            stream.write(event.to_json())
            stream.write("\n")
        return len(self.events)


def attach_tracer(vm: VM, snapshot_every: int = 0) -> Tracer:
    """Attach a :class:`Tracer` to ``vm`` and return it (public API)."""
    return Tracer(vm, snapshot_every=snapshot_every)


def load_jsonl(stream: IO[str]) -> List[Dict]:
    """Parse a trace written by :meth:`Tracer.write_jsonl`."""
    return [json.loads(line) for line in stream if line.strip()]
