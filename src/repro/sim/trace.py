"""Event tracing: a machine-readable timeline of a run.

Records the collection-level events of a run — when each GC happened on
the simulated clock, what it collected, what it copied and freed — plus
periodic heap-shape snapshots, and serialises them as JSON lines.  This
is the artefact to diff when two collector versions disagree, and the
input for external plotting.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Dict, List, Optional

from ..runtime.vm import VM


@dataclass(frozen=True)
class TraceEvent:
    """One traced event (collection or snapshot)."""

    kind: str  # "collection" | "snapshot"
    time: float  # simulated cycles at the event
    data: Dict

    def to_json(self) -> str:
        return json.dumps(
            {"kind": self.kind, "time": self.time, **self.data},
            sort_keys=True,
        )


class Tracer:
    """Attach to a VM before the run; read ``events`` after it."""

    def __init__(self, vm: VM, snapshot_every: int = 0):
        self.vm = vm
        self.events: List[TraceEvent] = []
        self._snapshot_every = snapshot_every
        self._since_snapshot = 0
        vm.plan.collection_listeners.append(self._on_collection)

    # ------------------------------------------------------------------
    def _on_collection(self, result) -> None:
        self.events.append(
            TraceEvent(
                kind="collection",
                time=self.vm.clock.now,
                data={
                    "id": result.collection_id,
                    "reason": result.reason,
                    "belts": list(result.belts_collected),
                    "from_frames": result.from_frames,
                    "copied_words": result.copied_words,
                    "copied_objects": result.copied_objects,
                    "freed_frames": result.freed_frames,
                    "remset_slots": result.remset_slots,
                    "full_heap": result.was_full_heap,
                },
            )
        )
        self._since_snapshot += 1
        if self._snapshot_every and self._since_snapshot >= self._snapshot_every:
            self.snapshot()
            self._since_snapshot = 0

    def snapshot(self) -> TraceEvent:
        """Record the current heap shape."""
        plan = self.vm.plan
        space = self.vm.space
        event = TraceEvent(
            kind="snapshot",
            time=self.vm.clock.now,
            data={
                "frames_in_use": space.heap_frames_in_use,
                "frames_total": space.heap_frames,
                "occupied_words": plan.live_words_upper_bound,
                "remset_entries": len(plan.remsets),
                "allocations": plan.allocations,
            },
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def collections(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "collection"]

    def snapshots(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "snapshot"]

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per line; returns the event count."""
        for event in self.events:
            stream.write(event.to_json())
            stream.write("\n")
        return len(self.events)


def load_jsonl(stream: IO[str]) -> List[Dict]:
    """Parse a trace written by :meth:`Tracer.write_jsonl`."""
    return [json.loads(line) for line in stream if line.strip()]
