"""The Beltway garbage-collection framework (the paper's contribution).

Belts group increments in FIFO queues; increments are collected
independently; configurations selected "from the command line" reproduce
semi-space, Appel generational, fixed-nursery, older-first and older-first
mix collectors, plus the paper's new Beltway X.X and X.X.100 designs.
"""

from .barrier import BarrierStats, FrameBarrier
from .belt import Belt, Increment
from .beltway import BeltwayHeap
from .collector import CollectionResult, Collector
from .config import PAPER_CONFIGS, BeltSpec, BeltwayConfig, PromotionStyle
from .mos import MOSPolicy, Train
from .order import restamp
from .policy import (
    GenerationalPolicy,
    OlderFirstMixPolicy,
    OlderFirstPolicy,
    Policy,
    make_policy,
)
from .remset import RememberedSets
from .reserve import SLACK_FRAMES, required_reserve_frames
from .triggers import Triggers

__all__ = [
    "BarrierStats",
    "Belt",
    "BeltSpec",
    "BeltwayConfig",
    "BeltwayHeap",
    "CollectionResult",
    "Collector",
    "FrameBarrier",
    "GenerationalPolicy",
    "Increment",
    "MOSPolicy",
    "OlderFirstMixPolicy",
    "OlderFirstPolicy",
    "PAPER_CONFIGS",
    "Policy",
    "PromotionStyle",
    "RememberedSets",
    "SLACK_FRAMES",
    "Train",
    "Triggers",
    "make_policy",
    "required_reserve_frames",
    "restamp",
]
