"""Collection-order stamping of frames (paper §3.3.1).

Every frame carries a number giving its *relative collection order*; the
write barrier compares these numbers to decide whether a pointer must be
remembered.  The invariant maintained here:

    frame X is stamped lower than frame Y  ⇒  X's increment will be
    collected no later than Y's.

Stamps are recomputed from scratch whenever the increment structure changes
(an increment opens, closes or is collected; BOF flips its belts).  This is
O(#frames), and is sound because the *relative* order of two surviving
increments never changes under any Beltway policy: belts keep their
priority, increments leave only from the front of a belt and join only at
the back.  The one exception — the BOF flip — happens only when belt A is
empty, so no pointer out of A can have been skipped under the old order.

Frames of the same increment share a stamp, so intra-increment pointers are
never recorded even when the increment spans frames (§3.3.1).
"""

from __future__ import annotations

from typing import Iterable

from ..heap.space import AddressSpace
from .belt import Belt


def restamp(space: AddressSpace, belts_in_priority: Iterable[Belt]) -> int:
    """Stamp every increment of every belt in predicted collection order.

    ``belts_in_priority`` must be ordered soonest-collected first (for
    generational policies: nursery upward; for BOF: belt A then belt C).
    Returns the number of increments stamped.
    """
    stamp = 1
    for belt in belts_in_priority:
        for inc in belt.increments:  # deque order: oldest (front) first
            inc.stamp = stamp
            for frame in inc.region.frames:
                space.set_order(frame, stamp)
            stamp += 1
    return stamp - 1
