"""The frame-based, unidirectional Beltway write barrier (paper Fig. 4).

The Java original::

    public static final void writeBarrier(ADDRESS source, ADDRESS target) {
        int s = (source >>> FRAME_SIZE_LOG);
        int t = (target >>> FRAME_SIZE_LOG);
        if ((s != t)                                  // pointer is inter-frame
            && (Belt.collect_[t] < Belt.collect_[s])) {
            // target will be collected before source
            int rsidx = (s << REMSET_SHIFT) | t;
            GCTk_RememberedSet.insert(rsidx, source);
        }
    }

is transcribed below, with the flat ``orders`` table of the address space
playing the role of ``Belt.collect_[]``.  The barrier is *not*
address-ordered (unlike the Appel baseline's boundary barrier) but it is
unidirectional with respect to frames: only pointers into sooner-collected
frames are recorded.  Boot-image frames carry an infinite order, so
boot→heap pointers are always recorded and TIB-pointer stores (heap→boot)
never are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..heap.space import AddressSpace
from .remset import RememberedSets


@dataclass
class BarrierStats:
    """Fast/slow-path counts, mirroring the paper's statistics runs."""

    fast_path: int = 0  # barrier executed (every reference store)
    slow_path: int = 0  # remset insert performed
    null_stores: int = 0  # stores of NULL (filtered before the compare)

    @property
    def slow_fraction(self) -> float:
        return self.slow_path / self.fast_path if self.fast_path else 0.0

    def reset(self) -> None:
        self.fast_path = 0
        self.slow_path = 0
        self.null_stores = 0


class FrameBarrier:
    """Write barrier + store, bound to one address space and remset table."""

    def __init__(self, space: AddressSpace, remsets: RememberedSets):
        self.space = space
        self.remsets = remsets
        self.stats = BarrierStats()

    def write_ref(self, source_obj: int, slot_addr: int, target: int) -> None:
        """Store ``target`` into ``slot_addr`` of ``source_obj``, remembering
        the pointer when the target frame is collected before the source's.
        """
        space = self.space
        shift = space.frame_shift
        self.stats.fast_path += 1
        if target == 0:
            self.stats.null_stores += 1
            space.store(slot_addr, target)
            return
        s = source_obj >> shift
        t = target >> shift
        if s != t:  # pointer is inter-frame
            orders = space.orders
            if orders[t] < orders[s]:
                # target will be collected before source
                self.stats.slow_path += 1
                self.remsets.insert(s, t, slot_addr)
        space.store(slot_addr, target)

    def record_collector_pointer(self, source_obj: int, slot_addr: int, target: int) -> None:
        """Barrier check without the store, for pointers the collector has
        already written while copying (scan-time remset maintenance).

        Not counted as mutator barrier activity: Jikes RVM's copy loop does
        this work inside the collector, not via the mutator barrier.
        """
        if target == 0:
            return
        space = self.space
        shift = space.frame_shift
        s = source_obj >> shift
        t = target >> shift
        if s != t:
            orders = space.orders
            if orders[t] < orders[s]:
                self.remsets.insert(s, t, slot_addr)
