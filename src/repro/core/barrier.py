"""The frame-based, unidirectional Beltway write barrier (paper Fig. 4).

The Java original::

    public static final void writeBarrier(ADDRESS source, ADDRESS target) {
        int s = (source >>> FRAME_SIZE_LOG);
        int t = (target >>> FRAME_SIZE_LOG);
        if ((s != t)                                  // pointer is inter-frame
            && (Belt.collect_[t] < Belt.collect_[s])) {
            // target will be collected before source
            int rsidx = (s << REMSET_SHIFT) | t;
            GCTk_RememberedSet.insert(rsidx, source);
        }
    }

is transcribed below, with the flat ``orders`` table of the address space
playing the role of ``Belt.collect_[]``.  The barrier is *not*
address-ordered (unlike the Appel baseline's boundary barrier) but it is
unidirectional with respect to frames: only pointers into sooner-collected
frames are recorded.  Boot-image frames carry an infinite order, so
boot→heap pointers are always recorded and TIB-pointer stores (heap→boot)
never are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import HeapCorruption, InvalidAddress
from ..heap.space import AddressSpace
from .remset import RememberedSets


def compile_fast_path(template: str, name: str, substitutions: Dict[str, int],
                      namespace: Dict[str, object]) -> Callable:
    """Compile a specialised inner-loop function from a source template.

    ``substitutions`` are baked into the bytecode as literals (frame shift,
    word mask — per-space constants); ``namespace`` provides the captured
    objects (space, stats, remsets).  This is the Python rendition of the
    paper's compiled-in write barrier (Fig. 4): the per-store work is a
    handful of shifts, compares and one append, with no intermediate call
    layers.
    """
    source = template
    for token, value in substitutions.items():
        source = source.replace(token, str(value))
    code = compile(source, f"<compiled {name}>", "exec")
    exec(code, namespace)
    return namespace[name]


#: Barriered reference-field store, specialised per heap (Fig. 4 inlined
#: into the mutator store path).  Equivalent to ``ref_slot_addr`` +
#: ``FrameBarrier.write_ref`` — identical bounds/unmapped errors, identical
#: load/store/fast/slow/null accounting (two header-decode loads, one slot
#: store) — with the object's frame resolved once.
_WRITE_FIELD_SRC = """\
def write_ref_field(obj, index, value):
    if obj & 3:
        raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
    s = obj >> __SHIFT__
    frame = (
        _space._cache_frame
        if s == _space._cache_index
        else _resolve(s, obj + 4, "load from")
    )
    words = frame.words
    base = (obj >> 2) & __WORD_MASK__
    _space.load_count += 1
    desc = _by_addr.get(words[base + 1])
    if desc is None:
        desc = _types.by_addr(words[base + 1])
    code = desc.ref_code
    count = words[base + 2] if code < 0 else code
    _space.load_count += 1
    if not 0 <= index < count:
        raise HeapCorruption(
            f"ref slot {index} out of range [0,{count}) for "
            f"{desc.name} object {obj:#x}"
        )
    _stats.fast_path += 1
    if value == 0:
        _stats.null_stores += 1
        words[base + 3 + index] = 0
        _space.store_count += 1
        return
    t = value >> __SHIFT__
    if t != s and _orders[t] < _orders[s]:
        _stats.slow_path += 1
        _insert(s, t, obj + ((index + 3) << 2))
    words[base + 3 + index] = value
    _space.store_count += 1
"""

#: Object initialisation (status, length, barriered TIB store) for the
#: allocation fast path.  Equivalent to ``init_header`` + a barriered
#: type-slot store: three counted stores, same fast/slow/null accounting
#: (the TIB store is §3.3.2's barrier traffic, filtered by the order
#: compare because type objects live in infinite-order boot frames).
_INIT_OBJECT_SRC = """\
def init_object(addr, desc, length):
    if addr & 3:
        raise InvalidAddress(f"misaligned store to {addr:#x}")
    s = addr >> __SHIFT__
    frame = (
        _space._cache_frame
        if s == _space._cache_index
        else _resolve(s, addr, "store to")
    )
    words = frame.words
    base = (addr >> 2) & __WORD_MASK__
    words[base] = 0
    words[base + 2] = length
    value = desc.addr
    _stats.fast_path += 1
    if value == 0:
        _stats.null_stores += 1
        words[base + 1] = 0
        _space.store_count += 3
        return
    t = value >> __SHIFT__
    if t != s and _orders[t] < _orders[s]:
        _stats.slow_path += 1
        _insert(s, t, addr + 4)
    words[base + 1] = value
    _space.store_count += 3
"""


@dataclass
class BarrierStats:
    """Fast/slow-path counts, mirroring the paper's statistics runs."""

    fast_path: int = 0  # barrier executed (every reference store)
    slow_path: int = 0  # remset insert performed
    null_stores: int = 0  # stores of NULL (filtered before the compare)

    @property
    def slow_fraction(self) -> float:
        return self.slow_path / self.fast_path if self.fast_path else 0.0

    def counters(self) -> Dict[str, float]:
        """Prometheus-style export for the telemetry layer."""
        return {
            "barrier_fast_total": float(self.fast_path),
            "barrier_slow_total": float(self.slow_path),
            "barrier_null_total": float(self.null_stores),
        }

    def reset(self) -> None:
        self.fast_path = 0
        self.slow_path = 0
        self.null_stores = 0


class FrameBarrier:
    """Write barrier + store, bound to one address space and remset table."""

    def __init__(self, space: AddressSpace, remsets: RememberedSets):
        self.space = space
        self.remsets = remsets
        self.stats = BarrierStats()

    def write_ref(self, source_obj: int, slot_addr: int, target: int) -> None:
        """Store ``target`` into ``slot_addr`` of ``source_obj``, remembering
        the pointer when the target frame is collected before the source's.
        """
        space = self.space
        shift = space.frame_shift
        self.stats.fast_path += 1
        if target == 0:
            self.stats.null_stores += 1
            space.store(slot_addr, target)
            return
        s = source_obj >> shift
        t = target >> shift
        if s != t:  # pointer is inter-frame
            orders = space.orders
            if orders[t] < orders[s]:
                # target will be collected before source
                self.stats.slow_path += 1
                self.remsets.insert(s, t, slot_addr)
        space.store(slot_addr, target)

    # ------------------------------------------------------------------
    # Compiled fast paths (ISSUE 2)
    # ------------------------------------------------------------------
    def _namespace(self, model) -> Dict[str, object]:
        space = self.space
        return {
            "_space": space,
            "_resolve": space._resolve,
            "_stats": self.stats,
            "_orders": space.orders,
            "_insert": self.remsets.insert,
            "_by_addr": model.types._by_addr,
            "_types": model.types,
            "InvalidAddress": InvalidAddress,
            "HeapCorruption": HeapCorruption,
        }

    def _substitutions(self) -> Dict[str, int]:
        return {
            "__SHIFT__": self.space.frame_shift,
            "__WORD_MASK__": self.space._word_mask,
        }

    def compile_write_field(self, model) -> Callable[[int, int, int], None]:
        """The compiled mutator store inner loop: slot decode + barrier +
        store in one call frame (see :data:`_WRITE_FIELD_SRC`)."""
        return compile_fast_path(
            _WRITE_FIELD_SRC, "write_ref_field",
            self._substitutions(), self._namespace(model),
        )

    def compile_init_object(self, model) -> Callable[[int, object, int], None]:
        """The compiled allocation-initialisation path (see
        :data:`_INIT_OBJECT_SRC`)."""
        return compile_fast_path(
            _INIT_OBJECT_SRC, "init_object",
            self._substitutions(), self._namespace(model),
        )

    def record_collector_pointer(self, source_obj: int, slot_addr: int, target: int) -> None:
        """Barrier check without the store, for pointers the collector has
        already written while copying (scan-time remset maintenance).

        Not counted as mutator barrier activity: Jikes RVM's copy loop does
        this work inside the collector, not via the mutator barrier.
        """
        if target == 0:
            return
        space = self.space
        shift = space.frame_shift
        s = source_obj >> shift
        t = target >> shift
        if s != t:
            orders = space.orders
            if orders[t] < orders[s]:
                self.remsets.insert(s, t, slot_addr)
