"""BeltwayHeap: the configured collector a mutator allocates against.

This is the equivalent of the paper's single GCTk collector whose
command-line options select the configuration (§4.1).  It owns the belts,
the write barrier, the remembered sets, the triggers, the dynamic copy
reserve and the copying collector, and exposes the three operations a
mutator needs: allocate, write a reference field, read a reference field.

Allocation policy (the paper's behaviours, expressed as one loop):

1. bump-allocate in the current allocation increment;
2. else grow that increment by a frame — allowed only while the dynamic
   conservative copy reserve still fits in the remaining free frames;
3. else open a new increment on the allocation belt if the belt's
   ``max_increments`` permits (bounding the nursery to one increment is
   the paper's nursery trigger) and the nursery could still reach the
   configured minimum size (Appel's "nursery below a small fixed threshold
   means the heap is full" rule);
4. else collect — the policy picks the FIFO-oldest increment of the lowest
   non-empty belt, escalating up the belts on successive failures until
   either allocation succeeds or nothing remains to collect
   (``OutOfMemory``: the heap is below this configuration's minimum size).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import HeapCorruption, OutOfMemory
from ..heap.bootimage import BootImage
from ..heap.objectmodel import ObjectModel, TypeDescriptor
from ..heap.space import AddressSpace
from ..sanitizer.heapcheck import HeapVerifier, VerifyReport
from .barrier import FrameBarrier
from .belt import Belt, Increment
from .collector import CollectionResult, Collector
from .config import BeltwayConfig
from .order import restamp
from .policy import make_policy
from .remset import RememberedSets
from .reserve import required_reserve_frames
from .triggers import Triggers


class BeltwayHeap:
    """A Beltway collector instance bound to an address space."""

    def __init__(
        self,
        space: AddressSpace,
        model: ObjectModel,
        boot: BootImage,
        config: BeltwayConfig,
        debug_verify: bool = False,
        kernels=None,
    ):
        self.space = space
        self.model = model
        self.boot = boot
        self.config = config
        self.debug_verify = debug_verify
        #: Substrate-kernel tier (repro.kernels.KernelSet) or None for the
        #: pure-Python reference paths.
        self.kernels = kernels
        self.policy = make_policy(config)
        self.remsets = RememberedSets(kernels)
        self.barrier = FrameBarrier(space, self.remsets)
        # Compiled mutator fast paths (ISSUE 2): instance attributes bound
        # once at heap construction, so every reference store and field
        # read is one call frame of shifts/compares instead of a stack of
        # model/barrier/space method calls.  Accounting is bit-identical
        # to the layered reference paths (see DESIGN.md).
        self.write_ref_field = self.barrier.compile_write_field(model)
        self._init_object = self.barrier.compile_init_object(model)
        self.read_ref_field, _, _ = model.compile_field_ops()
        self.triggers = Triggers(config)
        self.collector = Collector(self)
        self.belts: List[Belt] = [
            Belt(i, spec, space, space.heap_frames)
            for i, spec in enumerate(config.belts)
        ]
        #: BOF role tracking: which physical belt is the allocation belt A.
        self.of_alloc_belt = 0
        self.allocation_increment: Optional[Increment] = None
        self.root_arrays: List[List[int]] = []
        #: Observers called with each CollectionResult (the VM's cost model).
        self.collection_listeners: List[Callable[[CollectionResult], None]] = []
        # Statistics.
        self.collections: List[CollectionResult] = []
        self.allocations = 0
        self.allocated_words = 0
        self.flips = 0
        #: Bumped on every restamp so the compiled substrate trace knows
        #: when its frame-order snapshot went stale (DESIGN §13).
        self.restamp_epoch = 0

    @property
    def name(self) -> str:
        """Collector name shown in figures and tables."""
        return self.config.name

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def register_roots(self, array: List[int]) -> None:
        """Register a mutable array of root addresses (updated in place
        when a collection moves objects)."""
        self.root_arrays.append(array)

    # ------------------------------------------------------------------
    # Mutator interface
    # ------------------------------------------------------------------
    def alloc(self, desc: TypeDescriptor, length: int = 0) -> int:
        """Allocate and initialise an object; may trigger collections.

        Any references the caller needs across this call must already be
        reachable from registered roots.
        """
        size = desc.size_words(length)
        inc = self.allocation_increment
        addr = inc.alloc(size) if inc is not None else 0
        if not addr:
            addr = self._alloc_slow(size)
        # Header init plus the type-slot store through the barrier: the TIB
        # initialisation traffic of §3.3.2 (young source, boot target — the
        # barrier's order compare filters it without a remset insert).
        self._init_object(addr, desc, length)
        self.allocations += 1
        self.allocated_words += size
        return addr

    def _alloc_slow(self, size: int) -> int:
        budget = 4 + 2 * (len(self.belts) + self.num_increments)
        collections = 0
        while True:
            inc = self.allocation_increment
            if inc is None:
                inc = self._adopt_youngest_increment()
            if inc is not None:
                addr = inc.alloc(size)
                if addr:
                    return addr
            reason = self.triggers.poll(self)
            if reason is not None:
                self.collect(reason)
                collections += 1
                continue
            if self.triggers.should_switch_nursery_increment(self):
                if self._try_open_allocation_increment(force=True):
                    continue
            if (
                inc is not None
                and not inc.at_max_size
                and self._reserve_allows(extra_frames=1)
            ):
                inc.add_frame()
                continue
            if self._try_open_allocation_increment():
                continue
            if collections >= budget:
                raise OutOfMemory(
                    f"{self.config.name}: no progress after {collections} "
                    f"collections for a {size}-word allocation",
                    requested_words=size,
                )
            self.collect("full")
            collections += 1

    def _adopt_youngest_increment(self) -> Optional[Increment]:
        """Resume allocation in the youngest open increment of the
        allocation belt, if any.

        This is what makes BSS a true semi-space (allocation continues
        after the survivors, in the same increment they were copied to)
        and what keeps BOF allocating at the back of belt A.  Belts whose
        nursery promotes elsewhere are empty after collection, so this is
        a no-op for Appel / X.X / X.X.100 nurseries.
        """
        belt = self.belts[self.policy.allocation_belt_index(self)]
        inc = belt.youngest()
        if inc is not None and not inc.at_max_size and inc.num_frames > 0:
            self.allocation_increment = inc
            return inc
        return None

    def _try_open_allocation_increment(self, force: bool = False) -> bool:
        belt = self.belts[self.policy.allocation_belt_index(self)]
        cap = belt.spec.max_increments
        if not force and cap is not None and belt.num_increments >= cap:
            return False
        # Appel's rule: a nursery that cannot reach the minimum size means
        # the heap is full.
        if not self._reserve_allows(extra_frames=self.config.min_nursery_frames):
            return False
        inc = self.open_increment(belt)
        inc.add_frame()
        self.allocation_increment = inc
        return True

    def _reserve_allows(self, extra_frames: int) -> bool:
        free_after = self.space.heap_frames_free() - extra_frames
        return free_after >= self.current_reserve_frames()

    # Field access: ``write_ref_field`` (barriered store) and
    # ``read_ref_field`` (no barrier — collections are stop-the-world) are
    # compiled per-instance fast paths bound in ``__init__``.

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, reason: str = "forced") -> CollectionResult:
        """Run one collection chosen by the scheduling policy."""
        pre = self.policy.pre_collection(self, reason)
        if pre is not None:
            # Copy-free reclamation (a garbage MOS train).
            pre.reserve_frames = self.current_reserve_frames()
            self.collections.append(pre)
            for listener in self.collection_listeners:
                listener(pre)
            return pre
        batch = self.policy.choose_collection(self)
        if not batch:
            raise OutOfMemory(
                f"{self.config.name}: heap full and nothing collectible"
            )
        result = self.collector.collect(batch, reason)
        result.reserve_frames = self.current_reserve_frames()
        self.collections.append(result)
        for listener in self.collection_listeners:
            listener(result)
        return result

    def record_auxiliary_collection(self, result: CollectionResult) -> None:
        """Record a copy-free reclamation performed by the policy (MOS
        train reclamation) so statistics and the cost model see it."""
        result.reserve_frames = self.current_reserve_frames()
        self.collections.append(result)
        for listener in self.collection_listeners:
            listener(result)

    def current_reserve_frames(self) -> int:
        if self.config.fixed_half_reserve:
            # Ablation: the classic semi-space / generational reserve.
            return self.space.heap_frames // 2
        base = required_reserve_frames(
            self.belts, self.policy.target_belt_index, self.allocation_increment
        )
        return max(base, self.policy.min_reserve_frames(self))

    # ------------------------------------------------------------------
    # Structure maintenance (used by the collector and policies)
    # ------------------------------------------------------------------
    def open_increment(self, belt: Belt) -> Increment:
        inc = belt.open_increment()
        self.restamp()
        return inc

    def restamp(self) -> None:
        self.restamp_epoch += 1
        restamp(self.space, self.policy.priority_belts(self))

    def note_increments_removed(self, batch: List[Increment]) -> None:
        if self.allocation_increment in batch:
            self.allocation_increment = None

    def note_flip(self) -> None:
        """BOF belt flip: drop empty leftover increments, reset allocation."""
        self.flips += 1
        for belt in self.belts:
            for inc in list(belt.increments):
                if inc.is_empty:
                    for frame in list(inc.region.frames):
                        self.space.release_frame(frame)
                    belt.remove(inc)
        self.allocation_increment = None
        self.restamp()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_increments(self) -> int:
        return sum(belt.num_increments for belt in self.belts)

    @property
    def occupied_frames(self) -> int:
        return sum(belt.num_frames for belt in self.belts)

    @property
    def live_words_upper_bound(self) -> int:
        return sum(belt.occupancy_words for belt in self.belts)

    def roots(self):
        """All true roots: mutator arrays plus boot-image objects."""
        for array in self.root_arrays:
            yield from (value for value in array if value)
        yield from self.boot.iter_objects()

    def verify(self) -> VerifyReport:
        """Full-heap verification; raises HeapCorruption on any violation."""
        return HeapVerifier(self.space, self.model).verify(self.roots())

    def describe_structure(self) -> str:
        """ASCII belt/increment diagram (Figures 2 and 3 of the paper)."""
        lines = []
        for belt in reversed(self.belts):
            cells = []
            for inc in belt.increments:
                tag = "A" if inc is self.allocation_increment else " "
                cells.append(f"[{tag}#{inc.id} {inc.num_frames}f {inc.occupancy_words}w]")
            role = ""
            if len(self.belts) == 2 and self.config.style.value == "of":
                role = " (A)" if belt.index == self.of_alloc_belt else " (C)"
            lines.append(f"belt {belt.index}{role}: " + " ".join(cells))
        return "\n".join(lines)
