"""Beltway configurations: "command-line options" selecting a collector.

The paper's single collector implementation is configured into BSS, BA2,
BOF, BOFM, fixed-nursery generational, Beltway X.X and Beltway X.X.100 by
choosing belt count, increment sizes, promotion style and triggers
(paper §3.1–§3.2).  :func:`BeltwayConfig.parse` accepts the same notation
the paper uses:

* ``"SS"`` / ``"BSS"`` — semi-space (one belt, one usable-memory increment)
* ``"Appel"`` / ``"BA2"`` / ``"100.100"`` — two-generation Appel
* ``"100.100.100"`` — three-generation Appel
* ``"25.25"`` — Beltway X.X (incremental, *incomplete*)
* ``"25.25.100"`` — Beltway X.X.100 (incremental and complete)
* ``"BOF.25"`` — older-first with a 25% window
* ``"BOFM.25"`` — older-first *mix* with 25% increments
* ``"Fixed.25"`` — fixed-size-nursery generational (nursery = 25% of usable)

Increment sizes are expressed as a percentage X of *usable* memory, where
usable = heap − copy reserve.  In the steady state the reserve of a belt of
X-sized increments is one increment, so an X% increment occupies
``X/(100+X)`` of the whole heap (e.g. Appel's X=100 increment is half the
heap; a 33% increment is ~25% of the heap — which is how the paper's
"X=33 gives four increments" example adds up).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError

#: Sentinel increment percentage meaning "may grow to all usable memory".
GROWABLE = 100


class PromotionStyle(enum.Enum):
    """How survivors move between belts."""

    #: Survivors of belt *b* are copied to belt *b+1*; the top belt copies
    #: to a fresh increment at its own back (BSS, Appel, X.X, X.X.100).
    GENERATIONAL = "generational"
    #: One belt; survivors are copied *into the allocation increment* at the
    #: back of the belt, mixing with new allocation (BOFM, §3.1).
    OLDER_FIRST_MIX = "ofm"
    #: Two belts A (allocation) and C (copy); survivors of A's front go to
    #: C's back; the belts flip when A empties (BOF, §3.1).
    OLDER_FIRST = "of"


@dataclass(frozen=True)
class BeltSpec:
    """Static description of one belt."""

    #: Max increment size as a percentage of usable memory; GROWABLE (100)
    #: means a single increment may grow to consume all usable memory.
    increment_pct: int
    #: Cap on the number of *open* increments the mutator may allocate into
    #: (None = unbounded).  1 implements the paper's nursery trigger.
    max_increments: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 < self.increment_pct <= 100:
            raise ConfigError(
                f"increment percentage must be in (0,100], got {self.increment_pct}"
            )

    @property
    def growable(self) -> bool:
        return self.increment_pct >= GROWABLE

    def increment_frames(self, heap_frames: int) -> Optional[int]:
        """Max increment size in frames for a heap of ``heap_frames``.

        ``None`` means growable.  An X% -of-usable increment occupies
        ``X/(100+X)`` of the heap (see module docstring); always ≥ 1 frame.
        """
        if self.growable:
            return None
        frames = (heap_frames * self.increment_pct) // (100 + self.increment_pct)
        return max(1, frames)


@dataclass(frozen=True)
class BeltwayConfig:
    """A fully resolved collector configuration."""

    name: str
    belts: Tuple[BeltSpec, ...]
    style: PromotionStyle = PromotionStyle.GENERATIONAL
    #: Remset trigger: collect when total remset entries exceed this (0 = off).
    remset_trigger_entries: int = 0
    #: Time-to-die trigger, in bytes of allocation (0 = off).  Requires the
    #: nursery belt to allow 2 increments (§3.3.3).
    time_to_die_bytes: int = 0
    #: Appel's "nursery below a small fixed threshold means the heap is
    #: full" rule, in frames.
    min_nursery_frames: int = 1
    #: Ablation: replace the dynamic conservative copy reserve (§3.3.4)
    #: with the classic fixed half-heap reserve.  Loses the incremental
    #: configurations' heap-utilisation advantage.
    fixed_half_reserve: bool = False
    #: Ablation: disable the collect-together optimisation (§3.3.2), so a
    #: full receiver belt is only reached by successive single-increment
    #: collections.
    enable_combine: bool = True
    #: The top belt is managed by Mature Object Space (train algorithm)
    #: rules — the paper's future-work extension: completeness without
    #: full-heap collections (see repro.core.mos).
    mos_top_belt: bool = False

    def __post_init__(self) -> None:
        if not self.belts:
            raise ConfigError("a Beltway configuration needs at least one belt")
        if self.style is PromotionStyle.OLDER_FIRST and len(self.belts) != 2:
            raise ConfigError("BOF requires exactly two belts (A and C)")
        if self.style is PromotionStyle.OLDER_FIRST_MIX and len(self.belts) != 1:
            raise ConfigError("BOFM requires exactly one belt")
        if self.time_to_die_bytes:
            nursery = self.belts[0]
            if nursery.max_increments is not None and nursery.max_increments < 2:
                raise ConfigError(
                    "the time-to-die trigger needs at least two nursery increments"
                )

    # ------------------------------------------------------------------
    @property
    def nursery_belt(self) -> int:
        """Index of the belt receiving new allocation."""
        return 0

    @property
    def top_belt(self) -> int:
        return len(self.belts) - 1

    @property
    def is_complete(self) -> bool:
        """Whether the configuration eventually collects all garbage.

        Complete iff some belt's increment can grow to cover all usable
        memory so cross-increment cycles eventually share one increment
        (§3.2), or the top belt uses Mature Object Space rules (trains
        cluster each cycle into one train, which is then reclaimed
        wholesale); BOF/BOFM/X.X (X<100) are incomplete.
        """
        if self.style is not PromotionStyle.GENERATIONAL:
            return False
        return self.belts[-1].growable or self.mos_top_belt

    def describe(self) -> str:
        """Human-readable one-line summary."""
        sizes = ".".join(str(b.increment_pct) for b in self.belts)
        return f"{self.name} [{self.style.value} {sizes}]"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @staticmethod
    def parse(text: str, **overrides) -> "BeltwayConfig":
        """Parse the paper's configuration notation (see module docstring)."""
        raw = text.strip()
        token = raw.lower()
        if token in ("ss", "bss", "semispace", "semi-space", "100"):
            return BeltwayConfig(name="BSS", belts=(BeltSpec(GROWABLE),), **overrides)
        if token in ("appel", "ba2"):
            return BeltwayConfig.parse("100.100", **overrides)._rename(raw if raw != "100.100" else "BA2")
        if token in ("ba3",):
            return BeltwayConfig.parse("100.100.100", **overrides)._rename("BA3")
        match = re.fullmatch(r"bofm\.(\d+)", token)
        if match:
            pct = _pct(match.group(1))
            return BeltwayConfig(
                name=f"BOFM.{pct}",
                belts=(BeltSpec(pct),),
                style=PromotionStyle.OLDER_FIRST_MIX,
                **overrides,
            )
        match = re.fullmatch(r"bof\.(\d+)", token)
        if match:
            pct = _pct(match.group(1))
            return BeltwayConfig(
                name=f"BOF.{pct}",
                belts=(BeltSpec(pct), BeltSpec(pct)),
                style=PromotionStyle.OLDER_FIRST,
                **overrides,
            )
        match = re.fullmatch(r"fixed\.(\d+)", token)
        if match:
            pct = _pct(match.group(1))
            # Fixed-size nursery: a bounded, single-increment nursery of
            # pct% of usable memory below a growable mature belt.
            return BeltwayConfig(
                name=f"Fixed.{pct}",
                belts=(BeltSpec(pct, max_increments=1), BeltSpec(GROWABLE)),
                **overrides,
            )
        match = re.fullmatch(r"(\d+)\.(\d+)\.mos", token)
        if match:
            lower = _pct(match.group(1))
            upper = _pct(match.group(2))
            return BeltwayConfig(
                name=raw if raw.isupper() else f"{lower}.{upper}.MOS",
                belts=(
                    BeltSpec(lower, max_increments=1),
                    BeltSpec(upper),
                    BeltSpec(upper),  # MOS cars are upper-belt sized
                ),
                mos_top_belt=True,
                **overrides,
            )
        match = re.fullmatch(r"(\d+(?:\.\d+)+)", token)
        if match:
            pcts = [_pct(p) for p in token.split(".")]
            belts = tuple(
                BeltSpec(p, max_increments=1 if i == 0 else None)
                for i, p in enumerate(pcts)
            )
            return BeltwayConfig(name=raw, belts=belts, **overrides)
        raise ConfigError(f"unrecognised Beltway configuration {text!r}")

    def _rename(self, name: str) -> "BeltwayConfig":
        import dataclasses

        return dataclasses.replace(self, name=name)

    # ------------------------------------------------------------------
    # Variants (triggers and ablations)
    # ------------------------------------------------------------------
    def with_time_to_die(self, ttd_bytes: int) -> "BeltwayConfig":
        """A copy using the time-to-die trigger (§3.3.3): the nursery belt
        allows a second increment, and once the heap is within
        ``ttd_bytes`` of full, allocation moves there so the youngest
        objects escape the next collection."""
        import dataclasses

        nursery = self.belts[0]
        cap = nursery.max_increments
        belts = (
            BeltSpec(nursery.increment_pct, max_increments=max(2, cap or 2)),
        ) + self.belts[1:]
        return dataclasses.replace(
            self,
            name=f"{self.name}+ttd{ttd_bytes}",
            belts=belts,
            time_to_die_bytes=ttd_bytes,
        )

    def with_remset_trigger(self, entries: int) -> "BeltwayConfig":
        """A copy that also collects whenever the remembered sets grow past
        ``entries`` (§3.3.3: remset entries are collection roots, so big
        remsets mean high survival and slow scans)."""
        import dataclasses

        return dataclasses.replace(
            self,
            name=f"{self.name}+rs{entries}",
            remset_trigger_entries=entries,
        )


def _pct(text: str) -> int:
    value = int(text)
    if not 0 < value <= 100:
        raise ConfigError(f"increment percentage {value} out of range (0,100]")
    return value


#: The named configurations used throughout the paper's evaluation.
PAPER_CONFIGS = (
    "BSS",
    "Appel",
    "100.100",
    "100.100.100",
    "Fixed.10",
    "Fixed.25",
    "Fixed.50",
    "BOF.25",
    "BOFM.25",
    "10.10",
    "10.10.100",
    "25.25",
    "25.25.100",
    "33.33",
    "33.33.100",
    "50.50.100",
)

#: Extension configurations beyond the paper (see repro.core.mos).
EXTENSION_CONFIGS = (
    "25.25.MOS",
    "33.33.MOS",
)
