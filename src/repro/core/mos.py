"""Mature Object Space (train-algorithm) rules for the Beltway top belt.

The paper twice points at this extension as future work: "An alternative
approach to lack of completeness in the Beltway X.X collector is to use a
complete, incremental collector (such as the Mature Object Space
collector [24]) in place of the third belt" (§3.2, §5).  This module
implements it: configurations written ``X.X.MOS`` keep the two bounded
lower belts and manage the top belt with Hudson & Moss's train algorithm,
gaining *completeness without full-heap collections* — the worst-case
collection increment stays one car.

Train rules, adapted to Beltway's machinery:

* the top belt's increments ("cars") are grouped into FIFO *trains*;
  frames are stamped in (train, car) order, so the ordinary Beltway write
  barrier records exactly the pointers the train algorithm needs;
* promotions from the lower belts join the youngest train (a fresh train
  is started whenever the youngest grows past ``MAX_EXTERNAL_CARS``);
* collecting the top belt means collecting the *first car of the first
  train*; survivors referenced from another train move to *that* train's
  last car, survivors referenced from roots move to a train that is not
  the first, and transitively reached objects follow their referrer —
  this is what clusters each cyclic structure into a single train;
* before any car is collected, the first train is checked for external
  references (roots or remsets from outside it); if there are none the
  whole train is reclaimed *without copying a word*.

A cross-increment dead cycle therefore migrates, collection by
collection, into one train, which is then reclaimed wholesale — the
completeness mechanism that replaces X.X.100's full top-belt collection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from ..errors import HeapCorruption, OutOfMemory
from .belt import Belt, Increment
from .collector import CollectionResult
from .config import BeltwayConfig
from .policy import GenerationalPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .beltway import BeltwayHeap

#: External promotions start a fresh train once the youngest train has
#: this many cars, bounding how much one train can accrete from outside.
MAX_EXTERNAL_CARS = 2

#: Every Nth belt-1 collection also services the mature space (collects
#: its first car, batched with the emptied lower belts), so garbage
#: trains are found at a steady rate instead of only under extreme
#: pressure — Hudson & Moss collect the young generation together with
#: the lowest car the same way.
MATURE_PERIOD = 2


class Train:
    """A FIFO sequence of cars (increments) collected front-first."""

    _next_id = 0

    def __init__(self) -> None:
        self.id = Train._next_id
        Train._next_id += 1
        self.cars: List[Increment] = []

    @property
    def num_frames(self) -> int:
        return sum(car.num_frames for car in self.cars)

    def frame_indices(self) -> Set[int]:
        frames: Set[int] = set()
        for car in self.cars:
            frames.update(car.frame_indices())
        return frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Train {self.id} cars={len(self.cars)}>"


class MOSPolicy(GenerationalPolicy):
    """Generational promotion below, train-managed top belt above."""

    #: Train routing steers copies through destination contexts, which
    #: the compiled substrate trace does not model: reference trace only.
    kernel_traceable = False

    def __init__(self, config: BeltwayConfig):
        super().__init__(config)
        self.trains: List[Train] = []
        self.trains_reclaimed = 0
        self._reclaim_counter = 0
        self._belt1_collections = 0

    # ------------------------------------------------------------------
    # Structure bookkeeping
    # ------------------------------------------------------------------
    def manages_belt(self, belt_index: int) -> bool:
        return belt_index == self.config.top_belt

    def _top_belt(self, heap: "BeltwayHeap") -> Belt:
        return heap.belts[self.config.top_belt]

    def _sync_belt(self, heap: "BeltwayHeap") -> None:
        """Rebuild the top belt's increment order from the train list and
        restamp, so the write barrier sees (train, car) collection order."""
        belt = self._top_belt(heap)
        belt.increments.clear()
        for train in self.trains:
            belt.increments.extend(train.cars)
        heap.restamp()

    def _new_car(self, heap: "BeltwayHeap", train: Train) -> Increment:
        belt = self._top_belt(heap)
        car = Increment(belt, belt.increment_frames)
        train.cars.append(car)
        self._sync_belt(heap)
        return car

    def _train_of(self, heap: "BeltwayHeap", frame_index: int) -> Optional[Train]:
        for train in self.trains:
            if frame_index in train.frame_indices():
                return train
        return None

    # ------------------------------------------------------------------
    # Destination contexts (the train rules)
    # ------------------------------------------------------------------
    def external_dest_context(self, heap: "BeltwayHeap", from_frames) -> Train:
        """Promotions from the lower belts join the youngest usable train.

        A train whose *every* car is being collected cannot receive
        (copying into from-space); partially collected trains are fine —
        ``copy_alloc_in_context`` opens a fresh car past the collected
        ones."""
        usable = [t for t in self.trains if t.cars]
        if usable:
            youngest = usable[-1]
            if len(youngest.cars) < MAX_EXTERNAL_CARS:
                return youngest
        train = Train()
        self.trains.append(train)
        return train

    def root_dest_context(self, heap: "BeltwayHeap", from_frames) -> Train:
        """Root-referenced survivors leave the collected train: garbage
        must not ride along with what the mutator still uses."""
        return self.external_dest_context(heap, from_frames)

    def slot_dest_context(self, heap: "BeltwayHeap", slot_addr: int, from_frames):
        """Survivors referenced from a train move to *that* train (even
        their own — its tail — which is what clusters a cyclic structure
        into one train over successive car collections)."""
        frame_index = slot_addr >> heap.space.frame_shift
        if frame_index in from_frames:
            # The referrer itself is being evacuated; its copy re-scans
            # the pointer, so the context here is irrelevant — fall
            # through to external routing for safety.
            return self.external_dest_context(heap, from_frames)
        train = self._train_of(heap, frame_index)
        if train is not None:
            return train
        # Referrer outside the mature space (boot image): external.
        return self.external_dest_context(heap, from_frames)

    def copy_alloc_in_context(
        self, heap: "BeltwayHeap", ctx: Train, size_words: int, from_frames
    ) -> int:
        if not isinstance(ctx, Train):
            raise HeapCorruption(f"MOS destination context {ctx!r} is not a train")
        car = ctx.cars[-1] if ctx.cars else None
        if car is None or (car.frame_indices() & from_frames):
            car = self._new_car(heap, ctx)
        while True:
            addr = car.alloc(size_words)
            if addr:
                car.copied_in_words += size_words
                return addr
            if not car.at_max_size:
                car.add_frame()  # may raise OutOfMemory
                continue
            car = self._new_car(heap, ctx)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def min_reserve_frames(self, heap: "BeltwayHeap") -> int:
        """A mature service cycle evacuates the lower belts plus one car
        in a single batch; the reserve must be able to hold all of it.
        Unlike X.X.100's reserve this never grows with the mature space —
        the point of the extension."""
        top = self.config.top_belt
        lower = 0
        for belt in heap.belts[:top]:
            for inc in belt.increments:
                # current occupancy only: nursery growth re-checks the
                # reserve frame by frame, so anticipation is not needed
                # and would inflate every reserve check
                lower += inc.num_frames
        car = heap.belts[top].increment_frames or 0
        return lower + car + 1

    def choose_collection(self, heap: "BeltwayHeap"):
        batch = super().choose_collection(heap)
        if not batch:
            return batch
        top = self.config.top_belt
        if batch[0].belt.index == top - 1:
            # A mature-space service cycle: every MATURE_PERIOD-th belt-1
            # collection also collects the first car of the first train.
            # The lower belts must travel with it — pointers from them
            # into the later-collected mature space are (correctly) not
            # remembered by the barrier, so they are evacuated together.
            self._belt1_collections += 1
            if self._belt1_collections % MATURE_PERIOD == 0 and self.trains:
                for belt in heap.belts[:top]:
                    for inc in belt.increments:
                        if not inc.is_empty and inc not in batch:
                            batch.append(inc)
                first_car = self.trains[0].cars[0]
                if not first_car.is_empty and first_car not in batch:
                    batch.append(first_car)
        return batch

    def pre_collection(self, heap: "BeltwayHeap", reason: str):
        """Reclaim the first train wholesale if nothing outside references
        it — the train algorithm's completeness payoff."""
        if not self.trains:
            return None
        # Only sound once the lower belts are empty: pointers from them
        # into the (later-collected) mature space are not remembered.
        if any(
            not heap.belts[i].is_empty for i in range(self.config.top_belt)
        ):
            return None
        first = self.trains[0]
        frames = first.frame_indices()
        if not frames:
            self.trains.pop(0)
            return None
        shift = heap.space.frame_shift
        for array in heap.root_arrays:
            for value in array:
                if value and (value >> shift) in frames:
                    return None
        for src, tgt in heap.remsets.pairs():
            if tgt in frames and src not in frames:
                if heap.remsets.entries_for_pair(src, tgt):
                    return None
        # The whole train is garbage: release it without copying a word.
        self._reclaim_counter += 1
        result = CollectionResult(
            reason="train-reclaim", collection_id=-self._reclaim_counter
        )
        result.increments_collected = len(first.cars)
        result.belts_collected = (self.config.top_belt,)
        result.from_frames = len(frames)
        result.from_words = sum(
            car.region.allocated_words for car in first.cars
        )
        result.remset_entries_dropped = heap.remsets.drop_frames(frames)
        belt = self._top_belt(heap)
        for car in first.cars:
            for frame in list(car.region.frames):
                heap.space.release_frame(frame)
                result.freed_frames += 1
        self.trains.pop(0)
        self.trains_reclaimed += 1
        self._sync_belt(heap)
        return result

    def after_collection(self, heap: "BeltwayHeap") -> None:
        """Drop collected cars from their trains and empty trains, then
        reclaim any garbage trains at the front (sound whenever the lower
        belts are empty, which a mature service cycle guarantees)."""
        belt = self._top_belt(heap)
        live = set(id(inc) for inc in belt.increments)
        changed = False
        for train in self.trains:
            before = len(train.cars)
            train.cars = [car for car in train.cars if id(car) in live]
            changed = changed or len(train.cars) != before
        before_trains = len(self.trains)
        self.trains = [t for t in self.trains if t.cars]
        if changed or len(self.trains) != before_trains:
            self._sync_belt(heap)
        while True:
            reclaimed = self.pre_collection(heap, "post-collection")
            if reclaimed is None:
                break
            heap.record_auxiliary_collection(reclaimed)
