"""The dynamic conservative copy reserve (paper §3.3.4).

Every copying collector must keep enough memory free to accommodate the
worst-case survival of the next collection.  Classic semi-space and
generational collectors fix the reserve at half the heap; Beltway computes
a *dynamic conservative* reserve:

    reserve = max( largest increment size,
                   max over increments i of potential(i) )

    potential(i) = occupancy(i) + max occupancy of any other increment
                   from which the collector could copy into i

Copies land in the *youngest* increment of the target belt, so only that
increment accrues a potential term.  Increments on fixed-size belts cap
their potential at the increment size — overflow opens a fresh increment
whose own potential is bounded the same way.

The reserve is recomputed before every frame acquisition for the mutator,
so it "automatically falls back to a smaller size" after a big collection,
exactly as §3.3.4 describes for the X.X.100 third belt.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .belt import Belt, Increment

#: Extra frames reserved for packing slack: "the copy reserve must be
#: slightly more generous because the copied data may not pack as well as
#: the original data" (paper footnote 1).
SLACK_FRAMES = 1


def required_reserve_frames(
    belts: List[Belt],
    target_belt_index,
    alloc_increment: Optional[Increment],
) -> int:
    """Frames that must stay free to guarantee the next collections succeed.

    Parameters
    ----------
    belts:
        All belts, indexable by belt index.
    target_belt_index:
        ``f(belt_index) -> belt_index`` giving each belt's promotion target.
    alloc_increment:
        The increment the mutator is currently allocating into (its future
        growth to the belt's increment size is anticipated).
    """
    # Worst-case contribution of each increment as a *source* of copies.
    def source_frames(inc: Increment) -> int:
        if inc is alloc_increment and inc.max_frames is not None:
            # The allocation increment may fill up to its bound before it
            # is collected.
            return inc.max_frames
        return inc.num_frames

    largest_source = 0
    incoming_max: Dict[int, int] = {}  # largest single promoter, per belt
    incoming_sum: Dict[int, int] = {}  # cumulative promoters, per belt
    receivers: Dict[int, Optional[Increment]] = {}
    for belt in belts:
        receivers[belt.index] = belt.youngest()
    for belt in belts:
        tgt = target_belt_index(belt.index)
        receiver = receivers[tgt]
        for inc in belt.increments:
            frames = source_frames(inc)
            if frames == 0:
                continue
            largest_source = max(largest_source, frames)
            if inc is receiver:
                # An increment never copies into itself; its own collection
                # sends survivors to a fresh increment.
                continue
            incoming_max[tgt] = max(incoming_max.get(tgt, 0), frames)
            incoming_sum[tgt] = incoming_sum.get(tgt, 0) + frames

    reserve = largest_source
    for belt in belts:
        receiver = receivers[belt.index]
        occupied = receiver.num_frames if receiver is not None else 0
        if belt.increment_frames is not None:
            # Fixed-size belt: overflow spills into a new increment, so no
            # single increment's next collection exceeds the increment size
            # (this is X.X's small-reserve, high-utilisation advantage).
            potential = min(
                occupied + incoming_max.get(belt.index, 0), belt.increment_frames
            )
        else:
            # Growable belt (Appel's old generation, the X.X.100 third
            # belt): everything its promoters hold can accumulate in it
            # before it is next collected en masse, so the reserve must
            # cover the belt plus its whole inflow.  This is how "the copy
            # reserve grows until it is finally half of the heap" (§3.3.4)
            # and what guarantees the eventual full belt collection fits.
            potential = occupied + incoming_sum.get(belt.index, 0)
        reserve = max(reserve, potential)
    return reserve + SLACK_FRAMES if reserve else 0
