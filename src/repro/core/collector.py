"""The Beltway copying collector: forward, copy, scan, promote.

One ``collect`` call collects a *batch* of increments together (usually a
single increment; the scheduling policy batches a lower-belt increment with
the next belt's oldest when promotion would immediately force that
collection anyway — the paper's collect-together optimisation, which also
lets the remsets *between* the batched increments be ignored).

The algorithm is a breadth-first copying trace (Cheney order, explicit
FIFO worklist):

1. roots = mutator root slots + every remembered slot pointing into the
   collected frames from outside them;
2. forwarding: the first visit to a from-space object copies it to its
   promotion destination and installs a forwarding pointer in its status
   word; later visits just read the forwarding pointer;
3. scanning a copied object forwards its from-space referents and re-runs
   the barrier check for its other pointers, because copying changed the
   pointer's *source* frame (remsets sourced in collected frames are
   dropped wholesale afterwards);
4. collected frames are released, remsets into/out of them deleted, and
   the frames restamped in the new predicted collection order.

Copy allocation is allowed to consume the copy reserve — that is what the
reserve is for — but a hard budget exhaustion raises ``OutOfMemory``,
which the harness reads as "this heap size is below the configuration's
minimum" (Table 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from ..errors import HeapCorruption
from ..heap.address import WORD_BYTES
from .belt import Increment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .beltway import BeltwayHeap


@dataclass
class CollectionResult:
    """Work counters for one collection, consumed by the cost model."""

    reason: str
    collection_id: int = 0
    increments_collected: int = 0
    belts_collected: tuple = ()
    from_frames: int = 0
    from_words: int = 0  # allocated words in the collected increments
    freed_frames: int = 0
    copied_objects: int = 0
    copied_words: int = 0
    scanned_objects: int = 0
    scanned_ref_slots: int = 0
    root_slots: int = 0
    remset_slots: int = 0
    remset_entries_dropped: int = 0
    was_full_heap: bool = False
    #: Boot-image slots rescanned by collectors that do not remember
    #: boot→heap pointers (the gctk Appel baseline; Beltway leaves this 0).
    boot_slots_scanned: int = 0

    @property
    def survival_rate(self) -> float:
        """Fraction of collected (allocated) words that survived."""
        return self.copied_words / self.from_words if self.from_words else 0.0


class Collector:
    """Stateless-between-collections copying machinery for a BeltwayHeap."""

    def __init__(self, heap: "BeltwayHeap"):
        self.heap = heap
        self._collections = 0

    # ------------------------------------------------------------------
    def collect(self, batch: List[Increment], reason: str) -> CollectionResult:
        heap = self.heap
        space = heap.space
        model = heap.model
        if not batch:
            raise HeapCorruption("collect() called with an empty batch")
        self._collections += 1
        result = CollectionResult(reason=reason, collection_id=self._collections)
        result.increments_collected = len(batch)
        result.belts_collected = tuple(sorted({inc.belt.index for inc in batch}))
        from_frames: Set[int] = set()
        for inc in batch:
            from_frames.update(inc.frame_indices())
            result.from_words += inc.region.allocated_words
        result.from_frames = len(from_frames)
        # "Full heap" in the generational sense: a *growable* top belt is
        # collected en masse.  Every BSS collection is full-heap; X.X and
        # X.X.MOS (bounded top increments) never perform one; OF-style
        # policies never perform one either (their incompleteness, §2.2).
        top_spec = heap.config.belts[heap.config.top_belt]
        result.was_full_heap = (
            not heap.policy.copies_into_allocation_increment
            and heap.config.style.value == "generational"
            and top_spec.growable
            and heap.config.top_belt in result.belts_collected
        )

        from_increment: Dict[int, Increment] = {}
        for inc in batch:
            for index in inc.frame_indices():
                from_increment[index] = inc

        dests: Dict[object, Increment] = {}  # dest key -> open destination
        worklist: Deque = deque()  # (copied addr, dest context)
        shift = space.frame_shift
        policy = heap.policy

        # -- forwarding --------------------------------------------------
        # ``ctx`` is an opaque destination context: None for ordinary
        # belt-target promotion; train-aware policies (the MOS top belt)
        # return contexts that route an object to its referrer's train,
        # and copied objects pass their context on to their children.
        def forward(obj: int, ctx) -> int:
            if model.is_forwarded(obj):
                return model.forwarding_address(obj)
            size = model.size_words(obj)
            source_inc = from_increment[obj >> shift]
            new_addr = self._copy_alloc(source_inc, size, dests, from_frames, ctx)
            model.copy_words(obj, new_addr, size)
            model.set_forwarding(obj, new_addr)
            worklist.append((new_addr, ctx))
            result.copied_objects += 1
            result.copied_words += size
            return new_addr

        # -- roots: mutator root arrays -----------------------------------
        root_ctx = policy.root_dest_context(heap, from_frames)
        for array in heap.root_arrays:
            for i, value in enumerate(array):
                result.root_slots += 1
                if value and (value >> shift) in from_frames:
                    array[i] = forward(value, root_ctx)

        # -- roots: remembered slots into the collected frames ------------
        # Slots inside the collected frames themselves are excluded: their
        # objects are copied and re-scanned, and remsets between increments
        # collected together are deliberately ignored (§3.3.2).
        remset_slots = list(heap.remsets.slots_into(from_frames, from_frames))
        barrier = heap.barrier
        for slot in remset_slots:
            result.remset_slots += 1
            target = space.load(slot)
            if target and (target >> shift) in from_frames:
                ctx = policy.slot_dest_context(heap, slot, from_frames)
                new_target = forward(target, ctx)
                space.store(slot, new_target)
                # The pair for the old target frame is dropped below, so
                # re-record the pointer against the destination frame.
                barrier.record_collector_pointer(slot, slot, new_target)

        # -- transitive closure (Cheney order) -----------------------------
        # The scan reads each object's reference slots as one bulk slice
        # and inlines the barrier's order compare (the body of
        # ``record_collector_pointer``): per-slot work is one membership
        # test and one compare, with no per-word load() calls.
        orders = space.orders
        remsets = heap.remsets
        word_bytes = WORD_BYTES
        while worklist:
            obj, ctx = worklist.popleft()
            result.scanned_objects += 1
            slot, target, base, ref_values = model.scan_ref_slots(obj)
            result.scanned_ref_slots += 1 + len(ref_values)
            s = obj >> shift
            if target:
                t = target >> shift
                if t in from_frames:
                    target = forward(target, ctx)
                    space.store(slot, target)
                    t = target >> shift
                if t != s and orders[t] < orders[s]:
                    remsets.insert(s, t, slot)
            for i, target in enumerate(ref_values):
                if not target:
                    continue
                t = target >> shift
                if t in from_frames:
                    target = forward(target, ctx)
                    space.store(base + i * word_bytes, target)
                    t = target >> shift
                if t != s and orders[t] < orders[s]:
                    remsets.insert(s, t, base + i * word_bytes)

        # -- reclaim -------------------------------------------------------
        result.remset_entries_dropped = heap.remsets.drop_frames(from_frames)
        for inc in batch:
            for frame in list(inc.region.frames):
                space.release_frame(frame)
                result.freed_frames += 1
            inc.belt.remove(inc)
        heap.note_increments_removed(batch)
        heap.restamp()
        heap.policy.after_collection(heap)
        if heap.debug_verify:
            heap.verify()
        return result

    # ------------------------------------------------------------------
    def _copy_alloc(
        self,
        source_inc: Increment,
        size_words: int,
        dests: Dict[object, Increment],
        from_frames: Set[int],
        ctx,
    ) -> int:
        """Allocate ``size_words`` in the destination for ``source_inc``."""
        heap = self.heap
        policy = heap.policy
        belt_index = self._target_belt(source_inc)
        if policy.manages_belt(belt_index):
            # The destination belt is policy-managed (MOS trains): route
            # through the referrer's context, or the external context for
            # promotions arriving from below.
            if ctx is None:
                ctx = policy.external_dest_context(heap, from_frames)
            return policy.copy_alloc_in_context(
                heap, ctx, size_words, from_frames
            )
        # Contexts only steer policy-managed belts; an object bound for an
        # ordinary belt (e.g. a nursery child of a train-resident object in
        # a combined batch) follows its normal promotion target.
        dest = dests.get(belt_index)
        if dest is None:
            dest = self._choose_dest(belt_index, from_frames)
            dests[belt_index] = dest
        while True:
            addr = dest.alloc(size_words)
            if addr:
                dest.copied_in_words += size_words
                return addr
            if not dest.at_max_size:
                dest.add_frame()  # may raise OutOfMemory: reserve exhausted
                continue
            # Destination increment is full: overflow into a fresh one.
            dest = heap.open_increment(heap.belts[belt_index])
            dests[belt_index] = dest

    def _target_belt(self, source_inc: Increment) -> int:
        policy = self.heap.policy
        if policy.copies_into_allocation_increment:
            return self.heap.policy.allocation_belt_index(self.heap)
        return policy.target_belt_index(source_inc.belt.index)

    def _choose_dest(self, belt_index: int, from_frames: Set[int]) -> Increment:
        """Youngest open increment of the target belt not being collected,
        else a fresh increment."""
        heap = self.heap
        belt = heap.belts[belt_index]
        if heap.policy.copies_into_allocation_increment:
            candidate = heap.allocation_increment
            if (
                candidate is not None
                and candidate.belt.index == belt_index
                and not candidate.frame_indices() & from_frames
            ):
                return candidate
            return heap.open_increment(belt)
        candidate = belt.youngest()
        if (
            candidate is not None
            and not candidate.at_max_size
            and not candidate.frame_indices() & from_frames
        ):
            return candidate
        return heap.open_increment(belt)
