"""The Beltway copying collector: forward, copy, scan, promote.

One ``collect`` call collects a *batch* of increments together (usually a
single increment; the scheduling policy batches a lower-belt increment with
the next belt's oldest when promotion would immediately force that
collection anyway — the paper's collect-together optimisation, which also
lets the remsets *between* the batched increments be ignored).

The algorithm is a breadth-first copying trace (Cheney order, explicit
FIFO worklist):

1. roots = mutator root slots + every remembered slot pointing into the
   collected frames from outside them;
2. forwarding: the first visit to a from-space object copies it to its
   promotion destination and installs a forwarding pointer in its status
   word; later visits just read the forwarding pointer;
3. scanning a copied object forwards its from-space referents and re-runs
   the barrier check for its other pointers, because copying changed the
   pointer's *source* frame (remsets sourced in collected frames are
   dropped wholesale afterwards);
4. collected frames are released, remsets into/out of them deleted, and
   the frames restamped in the new predicted collection order.

Copy allocation is allowed to consume the copy reserve — that is what the
reserve is for — but a hard budget exhaustion raises ``OutOfMemory``,
which the harness reads as "this heap size is below the configuration's
minimum" (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set

from ..errors import HeapCorruption, InvalidAddress
from ..heap.objectmodel import HEADER_WORDS
from .belt import Increment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .beltway import BeltwayHeap


@dataclass
class CollectionResult:
    """Work counters for one collection, consumed by the cost model."""

    reason: str
    collection_id: int = 0
    increments_collected: int = 0
    belts_collected: tuple = ()
    from_frames: int = 0
    from_words: int = 0  # allocated words in the collected increments
    freed_frames: int = 0
    copied_objects: int = 0
    copied_words: int = 0
    scanned_objects: int = 0
    scanned_ref_slots: int = 0
    root_slots: int = 0
    remset_slots: int = 0
    remset_entries_dropped: int = 0
    was_full_heap: bool = False
    #: Boot-image slots rescanned by collectors that do not remember
    #: boot→heap pointers (the gctk Appel baseline; Beltway leaves this 0).
    boot_slots_scanned: int = 0
    #: Copy-reserve frames the plan holds back *after* this collection
    #: (Beltway's dynamic conservative reserve; the gctk baselines' fixed
    #: half-heap).  Telemetry-only: the cost model never reads it.
    reserve_frames: int = 0

    @property
    def survival_rate(self) -> float:
        """Fraction of collected (allocated) words that survived."""
        return self.copied_words / self.from_words if self.from_words else 0.0


class Collector:
    """Stateless-between-collections copying machinery for a BeltwayHeap."""

    def __init__(self, heap: "BeltwayHeap"):
        self.heap = heap
        self._collections = 0
        # Substrate trace engine (repro.kernels cffi tier): resolved
        # lazily on the first collection; False = checked, unavailable.
        self._tracer = None

    # ------------------------------------------------------------------
    def collect(self, batch: List[Increment], reason: str) -> CollectionResult:
        heap = self.heap
        if not batch:
            raise HeapCorruption("collect() called with an empty batch")
        self._collections += 1
        result = CollectionResult(reason=reason, collection_id=self._collections)
        result.increments_collected = len(batch)
        result.belts_collected = tuple(sorted({inc.belt.index for inc in batch}))
        from_frames: Set[int] = set()
        for inc in batch:
            from_frames.update(inc.frame_indices())
            result.from_words += inc.region.allocated_words
        result.from_frames = len(from_frames)
        # "Full heap" in the generational sense: a *growable* top belt is
        # collected en masse.  Every BSS collection is full-heap; X.X and
        # X.X.MOS (bounded top increments) never perform one; OF-style
        # policies never perform one either (their incompleteness, §2.2).
        top_spec = heap.config.belts[heap.config.top_belt]
        result.was_full_heap = (
            not heap.policy.copies_into_allocation_increment
            and heap.config.style.value == "generational"
            and top_spec.growable
            and heap.config.top_belt in result.belts_collected
        )

        from_increment: Dict[int, Increment] = {}
        for inc in batch:
            for index in inc.frame_indices():
                from_increment[index] = inc

        # -- trace: compiled substrate engine or the reference loops ------
        # Policies that route copies through destination contexts (MOS
        # trains) set kernel_traceable = False and always take the
        # reference path; both paths are counter-bit-identical (DESIGN §13).
        tracer = self._tracer
        if tracer is None:
            kernels = heap.kernels
            tracer = (
                kernels.beltway_tracer(self) if kernels is not None else None
            ) or False
            self._tracer = tracer
        if tracer and heap.policy.kernel_traceable:
            tracer.trace(from_frames, from_increment, result)
        else:
            self._trace_reference(result, from_frames, from_increment)

        # -- reclaim -------------------------------------------------------
        space = heap.space
        result.remset_entries_dropped = heap.remsets.drop_frames(from_frames)
        for inc in batch:
            for frame in list(inc.region.frames):
                space.release_frame(frame)
                result.freed_frames += 1
            inc.belt.remove(inc)
        heap.note_increments_removed(batch)
        heap.restamp()
        heap.policy.after_collection(heap)
        if heap.debug_verify:
            heap.verify()
        return result

    # ------------------------------------------------------------------
    def _trace_reference(
        self,
        result: CollectionResult,
        from_frames: Set[int],
        from_increment: Dict[int, Increment],
    ) -> None:
        """The pure-Python trace phase (roots, remset drain, closure)."""
        heap = self.heap
        space = heap.space
        model = heap.model
        dests: Dict[object, Increment] = {}  # dest key -> open destination
        worklist: List = []  # (copied addr, dest context); drained by cursor
        shift = space.frame_shift
        policy = heap.policy

        # Collection-critical locals (ISSUE 2): the trace below bypasses
        # the word-at-a-time AddressSpace API, reading headers and ref-slot
        # runs straight out of the frames' typed arrays.  It replicates the
        # reference path's load/store accounting and error behaviour
        # exactly — see the counter-equivalence invariant in DESIGN.md.
        word_mask = space._word_mask
        resolve = space._resolve
        types = model.types
        by_addr = types._by_addr
        worklist_append = worklist.append

        # Private one-entry frame caches (index -> words array).  The trace
        # ping-pongs between the scan frame, the from-space object and the
        # copy destination, so the space's shared single-entry cache
        # thrashes; frames stay mapped for the whole trace, so caching the
        # words arrays locally is safe.
        src_fi = dst_fi = -1
        src_words = dst_words = None

        # -- forwarding --------------------------------------------------
        # ``ctx`` is an opaque destination context: None for ordinary
        # belt-target promotion; train-aware policies (the MOS top belt)
        # return contexts that route an object to its referrer's train,
        # and copied objects pass their context on to their children.
        # Accounting: a forwarded visit charges 2 loads (status twice),
        # a copying visit 3 loads (status, type, length) + ``size`` loads
        # and stores (the bulk copy) + 1 store (the forwarding pointer) —
        # identical to is_forwarded/size_words/set_forwarding.
        def forward(obj: int, ctx) -> int:
            nonlocal src_fi, src_words, dst_fi, dst_words
            if obj & 3:
                raise InvalidAddress(f"misaligned load from {obj:#x}")
            fi = obj >> shift
            if fi != src_fi:
                src_words = resolve(fi, obj, "load from").words
                src_fi = fi
            words = src_words
            b = (obj >> 2) & word_mask
            space.load_count += 1
            status = words[b]
            if status & 1:
                space.load_count += 1
                return status & ~1
            space.load_count += 1
            desc = by_addr.get(words[b + 1])
            if desc is None:
                desc = types.by_addr(words[b + 1])
            sc = desc.size_code
            size = (HEADER_WORDS + words[b + 2]) if sc < 0 else sc
            space.load_count += 1
            new_addr = self._copy_alloc(from_increment[fi], size, dests, from_frames, ctx)
            # Inline single-frame copy (objects never span frames): same
            # ``size`` loads + ``size`` stores as the copy_words kernel.
            di = new_addr >> shift
            if di != dst_fi:
                dst_words = resolve(di, new_addr, "store to").words
                dst_fi = di
            d = (new_addr >> 2) & word_mask
            space.load_count += size
            space.store_count += size
            dst_words[d : d + size] = words[b : b + size]
            words[b] = new_addr | 1
            space.store_count += 1
            worklist_append((new_addr, ctx))
            result.copied_objects += 1
            result.copied_words += size
            return new_addr

        # -- roots: mutator root arrays -----------------------------------
        root_ctx = policy.root_dest_context(heap, from_frames)
        for array in heap.root_arrays:
            for i, value in enumerate(array):
                result.root_slots += 1
                if value and (value >> shift) in from_frames:
                    array[i] = forward(value, root_ctx)

        # -- roots: remembered slots into the collected frames ------------
        # Slots inside the collected frames themselves are excluded: their
        # objects are copied and re-scanned, and remsets between increments
        # collected together are deliberately ignored (§3.3.2).
        remset_slots = list(heap.remsets.slots_into(from_frames, from_frames))
        barrier = heap.barrier
        for slot in remset_slots:
            result.remset_slots += 1
            target = space.load(slot)
            if target and (target >> shift) in from_frames:
                ctx = policy.slot_dest_context(heap, slot, from_frames)
                new_target = forward(target, ctx)
                space.store(slot, new_target)
                # The pair for the old target frame is dropped below, so
                # re-record the pointer against the destination frame.
                barrier.record_collector_pointer(slot, slot, new_target)

        # -- transitive closure (Cheney order) -----------------------------
        # The worklist drains in blocks through an integer cursor (list
        # append + index, FIFO order preserved); each object's reference
        # slots are read as one typed-array slice and the barrier's order
        # compare (the body of ``record_collector_pointer``) runs inline
        # over the slice: per-slot work is one membership test and one
        # compare, with no per-word load()/store() calls.  Accounting per
        # object: ``count + 3`` loads (type twice, length, ``count``
        # slots), 1 store per updated slot — identical to the
        # scan_ref_slots + space.store reference path.
        orders = space.orders
        insert = heap.remsets.insert
        # Draining by direct list iteration: a list iterator picks up
        # items appended during the loop (defined Python semantics),
        # which is exactly the Cheney gray-queue FIFO.
        scan_fi = -1
        scan_words = None
        for obj, ctx in worklist:
            result.scanned_objects += 1
            if obj & 3:
                raise InvalidAddress(f"misaligned load from {obj + 4:#x}")
            s = obj >> shift
            if s != scan_fi:
                scan_words = resolve(s, obj + 4, "load from").words
                scan_fi = s
            words = scan_words
            b = (obj >> 2) & word_mask
            space.load_count += 1
            target = words[b + 1]
            desc = by_addr.get(target)
            if desc is None:
                desc = types.by_addr(target)
            code = desc.ref_code
            count = words[b + 2] if code < 0 else code
            space.load_count += count + 2
            result.scanned_ref_slots += 1 + count
            if target:
                t = target >> shift
                if t in from_frames:
                    target = forward(target, ctx)
                    words[b + 1] = target
                    space.store_count += 1
                    t = target >> shift
                if t != s and orders[t] < orders[s]:
                    insert(s, t, obj + 4)
            if count:
                # Snapshot the run before any forwarding stores, matching
                # the load_slice-then-iterate reference semantics.
                refs = words[b + 3 : b + 3 + count]
                for i, target in enumerate(refs):
                    if not target:
                        continue
                    t = target >> shift
                    if t in from_frames:
                        # forward() may open a fresh increment, which
                        # restamps every frame: re-read orders afterwards.
                        target = forward(target, ctx)
                        words[b + 3 + i] = target
                        space.store_count += 1
                        t = target >> shift
                    if t != s and orders[t] < orders[s]:
                        insert(s, t, obj + ((i + 3) << 2))

    # ------------------------------------------------------------------
    def _copy_alloc(
        self,
        source_inc: Increment,
        size_words: int,
        dests: Dict[object, Increment],
        from_frames: Set[int],
        ctx,
    ) -> int:
        """Allocate ``size_words`` in the destination for ``source_inc``."""
        heap = self.heap
        policy = heap.policy
        belt_index = self._target_belt(source_inc)
        if policy.manages_belt(belt_index):
            # The destination belt is policy-managed (MOS trains): route
            # through the referrer's context, or the external context for
            # promotions arriving from below.
            if ctx is None:
                ctx = policy.external_dest_context(heap, from_frames)
            return policy.copy_alloc_in_context(
                heap, ctx, size_words, from_frames
            )
        # Contexts only steer policy-managed belts; an object bound for an
        # ordinary belt (e.g. a nursery child of a train-resident object in
        # a combined batch) follows its normal promotion target.
        return self._copy_alloc_in_belt(belt_index, size_words, dests, from_frames)

    def _copy_alloc_in_belt(
        self,
        belt_index: int,
        size_words: int,
        dests: Dict[object, Increment],
        from_frames: Set[int],
    ) -> int:
        """Belt-routed copy allocation: grow the open destination, then
        overflow into fresh increments.  Also the refill slow path of the
        compiled trace engine, which bump-allocates the fast path itself.
        """
        heap = self.heap
        dest = dests.get(belt_index)
        if dest is None:
            dest = self._choose_dest(belt_index, from_frames)
            dests[belt_index] = dest
        while True:
            addr = dest.alloc(size_words)
            if addr:
                dest.copied_in_words += size_words
                return addr
            if not dest.at_max_size:
                dest.add_frame()  # may raise OutOfMemory: reserve exhausted
                continue
            # Destination increment is full: overflow into a fresh one.
            dest = heap.open_increment(heap.belts[belt_index])
            dests[belt_index] = dest

    def _target_belt(self, source_inc: Increment) -> int:
        policy = self.heap.policy
        if policy.copies_into_allocation_increment:
            return self.heap.policy.allocation_belt_index(self.heap)
        return policy.target_belt_index(source_inc.belt.index)

    def _choose_dest(self, belt_index: int, from_frames: Set[int]) -> Increment:
        """Youngest open increment of the target belt not being collected,
        else a fresh increment."""
        heap = self.heap
        belt = heap.belts[belt_index]
        if heap.policy.copies_into_allocation_increment:
            candidate = heap.allocation_increment
            if (
                candidate is not None
                and candidate.belt.index == belt_index
                and not candidate.frame_indices() & from_frames
            ):
                return candidate
            return heap.open_increment(belt)
        candidate = belt.youngest()
        if (
            candidate is not None
            and not candidate.at_max_size
            and not candidate.frame_indices() & from_frames
        ):
            return candidate
        return heap.open_increment(belt)
