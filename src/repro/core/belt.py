"""Belts and increments — the paper's two organisational principles.

An *increment* is an independently collectible region of memory (a bump
region over whole frames).  A *belt* is a FIFO queue of increments: the
oldest increment on a belt is always collected first, and belts are
collected independently of each other (§2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Set

from ..errors import HeapCorruption
from ..heap.allocator import BumpRegion
from ..heap.space import AddressSpace
from .config import BeltSpec


class Increment:
    """An independently collectible unit: whole frames, bump allocated."""

    _next_id = 0

    def __init__(self, belt: "Belt", max_frames: Optional[int]):
        self.id = Increment._next_id
        Increment._next_id += 1
        self.belt = belt
        self.max_frames = max_frames  # None = growable
        self.region = BumpRegion(belt.space)
        #: Relative collection-order stamp shared by all this increment's
        #: frames (maintained by repro.core.order).
        self.stamp = 0
        #: Words copied into this increment by collections (vs. allocated).
        self.copied_in_words = 0

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return self.region.num_frames

    @property
    def occupancy_words(self) -> int:
        return self.region.occupancy_words

    @property
    def is_empty(self) -> bool:
        return self.region.allocated_words == 0

    @property
    def at_max_size(self) -> bool:
        return self.max_frames is not None and self.num_frames >= self.max_frames

    def frame_indices(self) -> Set[int]:
        return {frame.index for frame in self.region.frames}

    def alloc(self, size_words: int) -> int:
        """Bump-allocate; 0 means the caller must grow the increment."""
        return self.region.alloc(size_words)

    def add_frame(self) -> None:
        """Grow by one frame (caller has already authorised the acquisition)."""
        if self.at_max_size:
            raise HeapCorruption(f"increment {self.id} grew past its max size")
        frame = self.belt.space.acquire_frame(f"belt{self.belt.index}")
        frame.increment = self
        self.region.add_frame(frame)
        self.belt.space.set_order(frame, self.stamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Increment {self.id} belt={self.belt.index} stamp={self.stamp} "
            f"frames={self.num_frames} occ={self.occupancy_words}w>"
        )


class Belt:
    """A FIFO queue of increments."""

    def __init__(self, index: int, spec: BeltSpec, space: AddressSpace, heap_frames: int):
        self.index = index
        self.spec = spec
        self.space = space
        #: Max frames per increment on this belt (None = growable).
        self.increment_frames = spec.increment_frames(heap_frames)
        self.increments: Deque[Increment] = deque()

    # ------------------------------------------------------------------
    def open_increment(self) -> Increment:
        """Append a fresh, empty increment at the back of the belt."""
        inc = Increment(self, self.increment_frames)
        self.increments.append(inc)
        return inc

    def remove(self, inc: Increment) -> None:
        """Remove a (collected) increment from the belt."""
        try:
            self.increments.remove(inc)
        except ValueError:
            raise HeapCorruption(
                f"increment {inc.id} is not on belt {self.index}"
            ) from None

    def oldest_collectible(self) -> Optional[Increment]:
        """The front-most non-empty increment (FIFO collection order)."""
        for inc in self.increments:
            if not inc.is_empty:
                return inc
        return None

    def youngest(self) -> Optional[Increment]:
        return self.increments[-1] if self.increments else None

    @property
    def is_empty(self) -> bool:
        return all(inc.is_empty for inc in self.increments)

    @property
    def num_increments(self) -> int:
        return len(self.increments)

    @property
    def occupancy_words(self) -> int:
        return sum(inc.occupancy_words for inc in self.increments)

    @property
    def num_frames(self) -> int:
        return sum(inc.num_frames for inc in self.increments)

    def __iter__(self) -> Iterator[Increment]:
        return iter(self.increments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Belt {self.index} increments={len(self.increments)}>"
