"""Promotion and scheduling policies for the three Beltway styles.

A policy answers four questions the collector machinery needs:

* *priority order* — in what order would the belts' increments be collected
  (this drives the frame collection-order stamps);
* *promotion target* — which belt receives a belt's survivors;
* *what to collect now* — the FIFO-oldest increment of the lowest
  non-empty belt, possibly batched with the next belt's increment when the
  promotion would immediately force that belt's collection anyway (the
  paper's collect-together optimisation, §3.3.2);
* *post-collection bookkeeping* — the BOF belt flip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ConfigError
from .belt import Belt, Increment
from .config import BeltwayConfig, PromotionStyle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .beltway import BeltwayHeap


def make_policy(config: BeltwayConfig) -> "Policy":
    """Instantiate the policy implementing ``config.style``."""
    if config.mos_top_belt:
        from .mos import MOSPolicy

        return MOSPolicy(config)
    if config.style is PromotionStyle.GENERATIONAL:
        return GenerationalPolicy(config)
    if config.style is PromotionStyle.OLDER_FIRST_MIX:
        return OlderFirstMixPolicy(config)
    if config.style is PromotionStyle.OLDER_FIRST:
        return OlderFirstPolicy(config)
    raise ConfigError(f"unknown promotion style {config.style}")


class Policy:
    """Shared interface; see module docstring."""

    #: Whether the compiled substrate trace engine may run collections
    #: under this policy.  True means every copy routes by target belt
    #: alone (root/slot destination contexts are always None); policies
    #: that steer copies through contexts (MOS trains) set this False and
    #: always use the reference trace (DESIGN §13).
    kernel_traceable = True

    def __init__(self, config: BeltwayConfig):
        self.config = config

    # -- structure ------------------------------------------------------
    def priority_belts(self, heap: "BeltwayHeap") -> List[Belt]:
        """Belts ordered soonest-collected first, for stamping."""
        raise NotImplementedError

    def target_belt_index(self, belt_index: int) -> int:
        """The belt receiving survivors of ``belt_index``'s increments."""
        raise NotImplementedError

    def allocation_belt_index(self, heap: "BeltwayHeap") -> int:
        """The belt new objects are allocated into."""
        return 0

    @property
    def copies_into_allocation_increment(self) -> bool:
        """OFM mixes survivors into the allocation increment itself."""
        return False

    # -- scheduling ------------------------------------------------------
    def choose_collection(self, heap: "BeltwayHeap") -> List[Increment]:
        """The increments to collect together now ([] = nothing to do)."""
        raise NotImplementedError

    def after_collection(self, heap: "BeltwayHeap") -> None:
        """Post-collection bookkeeping (only BOF needs any)."""

    def pre_collection(self, heap: "BeltwayHeap", reason: str):
        """A chance to reclaim without copying (MOS whole-train
        reclamation).  Returns a CollectionResult or None."""
        return None

    def min_reserve_frames(self, heap: "BeltwayHeap") -> int:
        """Extra copy-reserve floor a policy's batching requires (MOS
        service cycles collect the lower belts plus one car together)."""
        return 0

    # -- destination contexts (train-aware policies only) ----------------
    def manages_belt(self, belt_index: int) -> bool:
        """True if copies into ``belt_index`` are routed by this policy."""
        return False

    def root_dest_context(self, heap: "BeltwayHeap", from_frames):
        """Context for objects reached from mutator roots."""
        return None

    def slot_dest_context(self, heap: "BeltwayHeap", slot_addr: int, from_frames):
        """Context for objects reached from a remembered slot."""
        return None

    def external_dest_context(self, heap: "BeltwayHeap", from_frames):
        """Context for promotions arriving from lower belts."""
        raise NotImplementedError  # pragma: no cover - managed belts only

    def copy_alloc_in_context(
        self, heap: "BeltwayHeap", ctx, size_words: int, from_frames
    ) -> int:
        """Copy allocation inside a managed belt."""
        raise NotImplementedError  # pragma: no cover - managed belts only


class GenerationalPolicy(Policy):
    """BSS, Appel, fixed-nursery, Beltway X.X and X.X.100 (§3.1–3.2).

    Survivors of belt *b* promote to belt *b+1*; the top belt copies to a
    fresh increment at its own back.
    """

    def priority_belts(self, heap: "BeltwayHeap") -> List[Belt]:
        return list(heap.belts)

    def target_belt_index(self, belt_index: int) -> int:
        return min(belt_index + 1, self.config.top_belt)

    def choose_collection(self, heap: "BeltwayHeap") -> List[Increment]:
        for belt in heap.belts:
            inc = belt.oldest_collectible()
            if inc is None:
                continue
            batch = [inc]
            self._maybe_combine(heap, batch)
            return batch
        return []

    def _maybe_combine(self, heap: "BeltwayHeap", batch: List[Increment]) -> None:
        """Batch a growable receiver belt *in its entirety*, together with
        every increment below it, when promotion would leave the receiver
        uncollectible (its future reserve would no longer fit).

        For Appel this is exactly the classic full-heap major collection;
        for X.X.100 it is the paper's "collect [the third belt] in its
        entirety only once it has grown to consume all usable memory",
        batched with the lower belts so no staging leftovers waste the
        tight-heap margin (and so the remsets between them are ignored,
        §3.3.2).
        """
        while True:
            source = batch[-1]
            target_index = self.target_belt_index(source.belt.index)
            if target_index == source.belt.index:
                return  # top belt: survivors go to a fresh increment
            receiver_belt = heap.belts[target_index]
            if receiver_belt.increment_frames is not None:
                return  # fixed-size receivers overflow into new increments
            receiver = receiver_belt.oldest_collectible()
            if receiver is None or receiver in batch:
                return
            # Combine only when the receiver belt will have to be collected
            # immediately anyway: its occupancy (which is also the reserve
            # its own collection needs) leaves no room for a minimum
            # nursery.  For Appel this is the classic "mature space reached
            # half the heap" major trigger; firing any earlier would turn
            # every minor collection into a full-heap one.
            headroom = heap.space.heap_frames - 2 * receiver_belt.num_frames
            if headroom >= self.config.min_nursery_frames:
                return
            for belt in heap.belts[: target_index + 1]:
                for inc in belt.increments:
                    if not inc.is_empty and inc not in batch:
                        batch.append(inc)


class OlderFirstMixPolicy(Policy):
    """BOFM: one belt; survivors join new allocation at the belt's back."""

    def priority_belts(self, heap: "BeltwayHeap") -> List[Belt]:
        return list(heap.belts)

    def target_belt_index(self, belt_index: int) -> int:
        return 0

    @property
    def copies_into_allocation_increment(self) -> bool:
        return True

    def choose_collection(self, heap: "BeltwayHeap") -> List[Increment]:
        belt = heap.belts[0]
        alloc_inc = heap.allocation_increment
        for inc in belt.increments:
            if not inc.is_empty and inc is not alloc_inc:
                return [inc]
        # Only the allocation increment remains: collect it (survivors go
        # to a fresh increment, which becomes the new allocation point).
        if alloc_inc is not None and not alloc_inc.is_empty:
            return [alloc_inc]
        return []


class OlderFirstPolicy(Policy):
    """BOF: allocation belt A and copy belt C, flipped when A empties.

    ``heap.of_alloc_belt`` tracks which physical belt currently plays A.
    """

    def priority_belts(self, heap: "BeltwayHeap") -> List[Belt]:
        a = heap.of_alloc_belt
        return [heap.belts[a], heap.belts[1 - a]]

    def target_belt_index(self, belt_index: int) -> int:
        # Survivors always go to the copy belt; the copy belt itself is
        # never collected until it becomes the allocation belt.
        return 1 - self._alloc_index

    def allocation_belt_index(self, heap: "BeltwayHeap") -> int:
        return heap.of_alloc_belt

    def __init__(self, config: BeltwayConfig):
        super().__init__(config)
        self._alloc_index = 0

    def choose_collection(self, heap: "BeltwayHeap") -> List[Increment]:
        belt_a = heap.belts[heap.of_alloc_belt]
        inc = belt_a.oldest_collectible()
        if inc is not None:
            return [inc]
        # A is empty: flip, then collect the first increment of the new A.
        self._flip(heap)
        belt_a = heap.belts[heap.of_alloc_belt]
        inc = belt_a.oldest_collectible()
        return [inc] if inc is not None else []

    def _flip(self, heap: "BeltwayHeap") -> None:
        heap.of_alloc_belt = 1 - heap.of_alloc_belt
        self._alloc_index = heap.of_alloc_belt
        heap.note_flip()

    def after_collection(self, heap: "BeltwayHeap") -> None:
        self._alloc_index = heap.of_alloc_belt
