"""Per-frame-pair remembered sets (paper §3.3.2), SSB-backed.

Beltway keeps a *distinct* remembered set for every (source frame, target
frame) pair.  This buys two cheap operations the paper relies on:

* when a frame is collected or released, every remset into or out of it can
  be deleted wholesale;
* when two increments are collected together, the remsets between them are
  simply ignored (never consulted) rather than filtered entry by entry.

Entries are *slot addresses* (the address of the field the pointer was
stored into).  At collection time each slot is re-read, so stale entries —
the field was later overwritten — cost one load and are dropped.

Layout (the collection-critical fast paths, ISSUE 2)
----------------------------------------------------
The paper's GCTk stores each per-pair remset as a *sequential store
buffer*: the barrier's slow path is a bounded append, and all set
semantics (dedup) are the collector's problem.  This module mirrors that
split:

* ``insert`` appends the slot to a per-pair ``array('q')`` buffer — one
  dict probe and one C append, nothing else;
* dedup happens at *drain* time (``_sync``): pending buffers are merged
  into per-pair Python sets, counting ``duplicate_inserts`` exactly as
  insert-time dedup would (duplicate counts are order-independent, so the
  cumulative counters are bit-identical to the eager implementation);
* ``slots_into`` consults a target-frame → pair-keys index, so drain cost
  scales with the number of *matching* pairs, not all pairs
  (``pairs_scanned`` counts the examined candidates for the regression
  test); a source-frame index gives ``drop_frames`` the same property.

Counter-equivalence invariant: every externally visible statistic —
``inserts``, ``duplicate_inserts``, ``total_entries``/``len()``, the
values yielded by ``slots_into`` *and their order*, and ``drop_frames``
return values — is pinned by the golden-counter suite and must be
bit-identical across substrate tiers (DESIGN §13).  Drain order is
*canonically first-insertion order at both levels*: pairs drain in
pair-creation order (``_seq`` reproduces dict insertion order, including
re-insertion after a drop moving a key to the back), and within a pair
slots drain in the order they were first inserted (``_synced`` holds an
insertion-ordered dict-as-set, never a hash-ordered ``set``).  First-
insertion order is the one ordering every tier — a Python loop, a numpy
``unique(return_index)`` dedup, or a C kernel replay — can reproduce
exactly; CPython set iteration order is not.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Set, Tuple

#: Pair keys are ``(src << _KEY_SHIFT) | tgt`` — frame indices are table
#: offsets and stay far below 2**32 even for multi-GB simulated heaps.
_KEY_SHIFT = 32
_KEY_MASK = (1 << _KEY_SHIFT) - 1


#: Pending buffers at least this long drain through the substrate-kernel
#: dedup when one is attached; shorter ones use the reference loop.
_KERNEL_SYNC_THRESHOLD = 16


class RememberedSets:
    """All remsets of one collector, keyed by (src_frame, tgt_frame).

    ``kernels`` is an optional :class:`repro.kernels.KernelSet`; numpy
    tiers replace the drain-time dedup loop with a vectorised kernel that
    preserves the canonical first-insertion order and the exact
    ``duplicate_inserts`` accounting (DESIGN §13).
    """

    def __init__(self, kernels=None) -> None:
        self._sync_kernel = (
            kernels.remset_sync() if kernels is not None else None
        )
        #: Drained (deduplicated) entries per pair, in pair-creation order.
        #: Each value is a dict-as-set: keys are slot addresses in
        #: first-insertion order (the canonical cross-tier drain order).
        self._synced: Dict[int, Dict[int, None]] = {}
        #: Pending SSB tails per pair (appended by ``insert``).
        self._pending: Dict[int, array] = {}
        #: Pair-creation stamps: reproduces dict insertion order for drains.
        self._seq: Dict[int, int] = {}
        self._next_seq = 0
        #: tgt frame -> pair keys, src frame -> pair keys.
        self._by_target: Dict[int, Set[int]] = {}
        self._by_source: Dict[int, Set[int]] = {}
        self._total_entries = 0
        self._duplicate_inserts = 0
        #: Monotonic counters for the statistics runs (§4.1).
        self.inserts = 0
        #: Candidate pairs examined by ``slots_into`` (regression metric:
        #: must scale with matching pairs, not total pairs).
        self.pairs_scanned = 0

    # ------------------------------------------------------------------
    # Mutator fast path
    # ------------------------------------------------------------------
    def insert(self, src_frame: int, tgt_frame: int, slot_addr: int) -> None:
        """Remember that ``slot_addr`` (in src) points into tgt.

        This is the barrier's slow path: a bounded append into the pair's
        sequential store buffer.  No dedup happens here.
        """
        self.inserts += 1
        key = (src_frame << _KEY_SHIFT) | tgt_frame
        buf = self._pending.get(key)
        if buf is None:
            buf = self._new_pair(src_frame, tgt_frame, key)
        buf.append(slot_addr)

    def _new_pair(self, src_frame: int, tgt_frame: int, key: int) -> array:
        buf = array("q")
        self._pending[key] = buf
        self._synced[key] = {}
        self._seq[key] = self._next_seq
        self._next_seq += 1
        self._by_target.setdefault(tgt_frame, set()).add(key)
        self._by_source.setdefault(src_frame, set()).add(key)
        return buf

    # ------------------------------------------------------------------
    # Drain-time dedup
    # ------------------------------------------------------------------
    def _sync(self, key: int) -> Dict[int, None]:
        """Merge the pair's pending buffer into its deduplicated dict-set.

        The returned mapping's keys iterate in first-insertion order —
        the canonical drain order every substrate tier reproduces.
        """
        entries = self._synced[key]
        buf = self._pending[key]
        if buf:
            kernel = self._sync_kernel
            if kernel is not None and len(buf) >= _KERNEL_SYNC_THRESHOLD:
                fresh, dups = kernel(entries, buf)
            else:
                before = len(entries)
                for slot in buf:
                    entries[slot] = None
                fresh = len(entries) - before
                dups = len(buf) - fresh
            self._duplicate_inserts += dups
            self._total_entries += fresh
            del buf[:]
        return entries

    def _sync_all(self) -> None:
        for key, buf in self._pending.items():
            if buf:
                self._sync(key)

    # ------------------------------------------------------------------
    # Collector interface
    # ------------------------------------------------------------------
    def slots_into(
        self, target_frames: Set[int], exclude_sources: Set[int]
    ) -> Iterator[int]:
        """All remembered slots pointing into ``target_frames`` whose source
        frame is *not* in ``exclude_sources``.

        ``exclude_sources`` is normally the collected frame set itself: slots
        inside from-space objects are dead (their objects are copied and the
        copies re-scanned), and remsets *between* increments collected
        together are ignored per the paper's optimisation.

        Only pairs targeting ``target_frames`` are examined (via the
        target-frame index); they drain in pair-creation order, matching
        the eager implementation's dict-iteration order exactly.
        """
        by_target = self._by_target
        matched: List[int] = []
        for tgt in target_frames:
            keys = by_target.get(tgt)
            if not keys:
                continue
            self.pairs_scanned += len(keys)
            matched.extend(
                key for key in keys
                if (key >> _KEY_SHIFT) not in exclude_sources
            )
        matched.sort(key=self._seq.__getitem__)
        for key in matched:
            yield from self._sync(key)

    def drop_frames(self, frames: Set[int]) -> int:
        """Delete every remset whose source or target frame is in ``frames``.

        Returns the number of (deduplicated) entries dropped.  Pending
        buffers of doomed pairs are drained first so ``duplicate_inserts``
        accounting matches the eager implementation.
        """
        doomed: Set[int] = set()
        for frame in frames:
            doomed.update(self._by_source.get(frame, ()))
            doomed.update(self._by_target.get(frame, ()))
        dropped = 0
        for key in doomed:
            dropped += len(self._sync(key))
            self._remove_pair(key)
        self._total_entries -= dropped
        return dropped

    def _remove_pair(self, key: int) -> None:
        src = key >> _KEY_SHIFT
        tgt = key & _KEY_MASK
        del self._synced[key]
        del self._pending[key]
        del self._seq[key]
        keys = self._by_source[src]
        keys.discard(key)
        if not keys:
            del self._by_source[src]
        keys = self._by_target[tgt]
        keys.discard(key)
        if not keys:
            del self._by_target[tgt]

    # ------------------------------------------------------------------
    # Introspection (statistics runs, MOS train reclamation, tests)
    # ------------------------------------------------------------------
    @property
    def duplicate_inserts(self) -> int:
        self._sync_all()
        return self._duplicate_inserts

    @property
    def total_entries(self) -> int:
        self._sync_all()
        return self._total_entries

    def counters(self) -> Dict[str, float]:
        """Prometheus-style export for the telemetry layer.

        Reading ``total_entries`` drains pending SSB buffers; that is
        counter-safe (dedup totals are order-independent, see the module
        docstring), so telemetry may snapshot at any point.
        """
        return {
            "remset_inserts_total": float(self.inserts),
            "remset_duplicates_total": float(self.duplicate_inserts),
            "remset_entries": float(self.total_entries),
            "remset_pairs": float(len(self._synced)),
            "remset_pairs_scanned_total": float(self.pairs_scanned),
        }

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All (src, tgt) pairs, in creation order (dict-order parity)."""
        return [
            (key >> _KEY_SHIFT, key & _KEY_MASK) for key in self._synced
        ]

    def entries_for_pair(self, src_frame: int, tgt_frame: int) -> Set[int]:
        key = (src_frame << _KEY_SHIFT) | tgt_frame
        if key not in self._synced:
            return set()
        return set(self._sync(key))

    def __len__(self) -> int:
        return self.total_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RememberedSets pairs={len(self._synced)} "
            f"entries={self.total_entries}>"
        )
