"""Per-frame-pair remembered sets (paper §3.3.2).

Beltway keeps a *distinct* remembered set for every (source frame, target
frame) pair.  This buys two cheap operations the paper relies on:

* when a frame is collected or released, every remset into or out of it can
  be deleted wholesale;
* when two increments are collected together, the remsets between them are
  simply ignored (never consulted) rather than filtered entry by entry.

Entries are *slot addresses* (the address of the field the pointer was
stored into).  At collection time each slot is re-read, so stale entries —
the field was later overwritten — cost one load and are dropped.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple


class RememberedSets:
    """All remsets of one collector, keyed by (src_frame, tgt_frame)."""

    def __init__(self) -> None:
        self._sets: Dict[Tuple[int, int], Set[int]] = {}
        self.total_entries = 0
        #: Monotonic counters for the statistics runs (§4.1).
        self.inserts = 0
        self.duplicate_inserts = 0

    # ------------------------------------------------------------------
    def insert(self, src_frame: int, tgt_frame: int, slot_addr: int) -> None:
        """Remember that ``slot_addr`` (in src) points into tgt."""
        key = (src_frame, tgt_frame)
        entries = self._sets.get(key)
        if entries is None:
            entries = set()
            self._sets[key] = entries
        self.inserts += 1
        if slot_addr in entries:
            self.duplicate_inserts += 1
        else:
            entries.add(slot_addr)
            self.total_entries += 1

    def slots_into(
        self, target_frames: Set[int], exclude_sources: Set[int]
    ) -> Iterator[int]:
        """All remembered slots pointing into ``target_frames`` whose source
        frame is *not* in ``exclude_sources``.

        ``exclude_sources`` is normally the collected frame set itself: slots
        inside from-space objects are dead (their objects are copied and the
        copies re-scanned), and remsets *between* increments collected
        together are ignored per the paper's optimisation.
        """
        for (src, tgt), entries in self._sets.items():
            if tgt in target_frames and src not in exclude_sources:
                yield from entries

    def drop_frames(self, frames: Set[int]) -> int:
        """Delete every remset whose source or target frame is in ``frames``.

        Returns the number of entries dropped.
        """
        doomed = [
            key for key in self._sets if key[0] in frames or key[1] in frames
        ]
        dropped = 0
        for key in doomed:
            dropped += len(self._sets[key])
            del self._sets[key]
        self.total_entries -= dropped
        return dropped

    # ------------------------------------------------------------------
    def pairs(self) -> Iterable[Tuple[int, int]]:
        return self._sets.keys()

    def entries_for_pair(self, src_frame: int, tgt_frame: int) -> Set[int]:
        return self._sets.get((src_frame, tgt_frame), set())

    def __len__(self) -> int:
        return self.total_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RememberedSets pairs={len(self._sets)} entries={self.total_entries}>"
