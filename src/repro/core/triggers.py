"""Collection triggers (paper §3.3.3).

It is not always best to collect only when the heap is completely full.
Three triggers can preempt later performance problems:

* **Nursery trigger** — bound the nursery belt so young objects are
  collected frequently.  Expressed structurally: the nursery belt allows a
  single increment of bounded size (``max_increments=1`` in the config), so
  the heap collects as soon as that increment cannot grow.  This is the
  only trigger the paper's reported X.X / X.X.100 configurations use.
* **Remset trigger** — remset entries are collection roots, so survival
  rate and scanning cost climb with remset size; collect when total entries
  exceed a threshold.
* **Time-to-die trigger** — keep *two* nursery increments, and once the
  heap is within TTD bytes of full, direct allocation into the second so
  the objects allocated in the last TTD bytes are never part of the next
  collection (they are "too young to die").
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..heap.address import WORD_BYTES
from .config import BeltwayConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .beltway import BeltwayHeap


class Triggers:
    """Evaluates the configured triggers at each allocation poll."""

    def __init__(self, config: BeltwayConfig):
        self.config = config
        self.remset_threshold = config.remset_trigger_entries
        self.ttd_words = config.time_to_die_bytes // WORD_BYTES

    def poll(self, heap: "BeltwayHeap") -> Optional[str]:
        """A reason string if a trigger demands collection now, else None.

        Called when the mutator needs a new frame — the same granularity at
        which Jikes RVM polls for GC.
        """
        if self.remset_threshold and len(heap.remsets) >= self.remset_threshold:
            return "remset"
        return None

    def should_switch_nursery_increment(self, heap: "BeltwayHeap") -> bool:
        """Time-to-die: start the second nursery increment when the heap is
        within TTD bytes of full, so the youngest objects escape the next
        collection."""
        if not self.ttd_words:
            return False
        nursery = heap.belts[heap.policy.allocation_belt_index(heap)]
        if nursery.num_increments != 1:
            return False
        free_words = heap.space.heap_frames_free() * heap.space.frame_words
        reserve_words = heap.current_reserve_frames() * heap.space.frame_words
        return free_words - reserve_words <= self.ttd_words
