"""Unified spec acquisition: one loader for every workload reference.

Everything that runs a workload — ``run``, ``run_many``, ``sweep``,
``find_min_heap``, every CLI subcommand — accepts a *spec ref* and
resolves it here.  A ref is any of:

* a built-in benchmark name (``"jess"``, ``"_213_javac"``, … — the
  registry and aliases of :mod:`repro.bench.spec`);
* a path to a declarative workload file (``*.json`` / ``*.yaml`` /
  ``*.yml``, see :mod:`repro.workloads.config`);
* an already-constructed spec object (:class:`WorkloadSpec` or
  :class:`ServerWorkloadSpec`).

:func:`fingerprint` gives the grid store a content-addressed identity for
a ref: benchmark names map to their canonical name, file refs and server
spec objects map to a digest of their canonical mapping form — so editing
a YAML invalidates its cached cells while renaming or moving the file does
not, and two files with the same content share cells.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from .bench.engine import WorkloadSpec
from .bench.spec import benchmark_spec
from .bench.spec import canonical_name as _canonical_benchmark
from .errors import ConfigError
from .workloads.config import WORKLOAD_SUFFIXES, load_file
from .workloads.model import ServerWorkloadSpec

#: Anything :func:`load` accepts.
SpecRef = Union[str, os.PathLike, WorkloadSpec, ServerWorkloadSpec]

AnySpec = Union[WorkloadSpec, ServerWorkloadSpec]


def is_file_ref(ref: SpecRef) -> bool:
    """Whether ``ref`` names a declarative workload file (by suffix)."""
    if isinstance(ref, os.PathLike):
        return True
    return isinstance(ref, str) and ref.lower().endswith(WORKLOAD_SUFFIXES)


def load(ref: SpecRef, scale: float = 1.0) -> AnySpec:
    """Resolve any spec ref to a ready-to-run spec object.

    ``scale`` shortens the run exactly as each spec family defines it
    (allocation volume for the SPEC replays, observation window for
    server workloads); passing an already-constructed spec with
    ``scale != 1.0`` returns a scaled copy.
    """
    if isinstance(ref, (WorkloadSpec, ServerWorkloadSpec)):
        return ref.scaled(scale) if scale != 1.0 else ref
    if is_file_ref(ref):
        spec = load_file(ref)
        return spec.scaled(scale) if scale != 1.0 else spec
    if isinstance(ref, str):
        return benchmark_spec(ref, scale)
    raise ConfigError(
        f"cannot resolve workload ref {ref!r}: expected a benchmark name, "
        f"a {WORKLOAD_SUFFIXES} file path, or a spec object"
    )


def fingerprint(ref: SpecRef) -> Optional[str]:
    """Content-addressed identity of a ref for grid-store cell keys.

    Returns ``None`` for refs with no stable serialisable identity
    (hand-built :class:`WorkloadSpec` objects, whose ``setup`` callables
    and locality models cannot be digested) — the grid runs those
    uncached, like non-string collector configs.
    """
    if isinstance(ref, WorkloadSpec):
        return None
    if isinstance(ref, ServerWorkloadSpec):
        return _server_fingerprint(ref)
    if is_file_ref(ref):
        return _server_fingerprint(load_file(ref))
    if isinstance(ref, str):
        return _canonical_benchmark(ref)
    raise ConfigError(f"cannot fingerprint workload ref {ref!r}")


def _server_fingerprint(spec: ServerWorkloadSpec) -> str:
    canonical = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:24]
    return f"server:{spec.name}:{digest}"


def describe(ref: SpecRef) -> str:
    """A short stable display name for a ref (CLI tables, grid logs)."""
    if isinstance(ref, (WorkloadSpec, ServerWorkloadSpec)):
        return ref.name
    if is_file_ref(ref):
        return Path(ref).stem
    return _canonical_benchmark(str(ref))
