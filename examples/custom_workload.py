#!/usr/bin/env python3
"""Author your own workload: the engine behind the six SPEC benchmarks.

Everything in :mod:`repro.bench` is driven by declarative
:class:`~repro.bench.WorkloadSpec` objects.  This example writes a small
"web server" workload from scratch — request objects that die instantly,
session objects that live for a window of requests, an immortal routing
table — runs it against three collectors, validates its demographics
empirically, and prints a comparison.

This is the path a downstream user takes to evaluate a collector against
*their* application's behaviour.

Run::

    python examples/custom_workload.py
"""

from repro.bench import AllocSite, LifetimeClass, SyntheticMutator, WorkloadSpec
from repro.bench.validate import finalize, observe
from repro.runtime import VM

KB = 1024


def routing_table(engine):
    """Immortal router: 3 chunked tables of handler objects."""
    mu = engine.mu
    for _ in range(3):
        chunk = engine.alloc_immortal("refarr", length=16)
        for i in range(16):
            handler = engine.alloc_immortal("node")
            mu.write(chunk, i, handler)


def webserver_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="webserver",
        total_alloc_bytes=120 * KB,
        sites=[
            # request/response objects: die within the request
            AllocSite(weight=0.55, type_name="small", lifetime="request", work=5.0),
            # parsed headers: die with the request batch
            AllocSite(
                weight=0.20, type_name="refarr", lifetime="request", length=(2, 8)
            ),
            # sessions: live for a window of requests (middle-aged!)
            AllocSite(weight=0.15, type_name="big", lifetime="session",
                      link_prob=0.3, work=7.0),
            # response buffers
            AllocSite(
                weight=0.10, type_name="buf", lifetime="request", length=(6, 24)
            ),
        ],
        lifetimes={
            "request": LifetimeClass("request", 0, 2 * KB),
            "session": LifetimeClass("session", 6 * KB, 30 * KB),
        },
        mutation_rate=0.2,  # session table updates
        read_rate=1.5,  # handlers read far more than they write
        setup=routing_table,
    )


def main() -> None:
    heap = 48 * KB
    print(f"custom 'webserver' workload, {heap // KB}KB heap\n")
    header = (f"{'collector':<12} {'GCs':>5} {'gc%':>6} {'copiedKB':>9} "
              f"{'maxpause':>9} {'infant mortality':>17}")
    print(header)
    print("-" * len(header))
    for collector in ("25.25.100", "gctk:Appel", "BOF.25"):
        vm = VM(heap_bytes=heap, collector=collector)
        demo = observe(vm)
        engine = SyntheticMutator(vm, webserver_spec(), seed=2024)
        stats = engine.run()
        finalize(demo)
        vm.plan.verify()
        print(
            f"{collector:<12} {stats.collections:>5} "
            f"{100 * stats.gc_fraction:>5.1f}% "
            f"{stats.copied_bytes / KB:>9.1f} {stats.max_pause_cycles:>9.0f} "
            f"{100 * demo.infant_mortality:>16.1f}%"
        )
    print(
        "\nThe sessions are the interesting population: middle-aged enough\n"
        "to be promoted by a nursery collector, dead soon after — exactly\n"
        "the demographic where older-first and incremental configurations\n"
        "avoid copying work (paper §2.1, 'give objects time to die')."
    )


if __name__ == "__main__":
    main()
