#!/usr/bin/env python3
"""Quickstart: build a Beltway collector, allocate through it, watch it work.

This example walks the public API end to end:

1.  run a packaged benchmark through :func:`repro.run` — the one-call
    surface every figure in the paper is built from — with telemetry;
2.  create a :class:`repro.VM` with a Beltway 25.25.100 configuration
    (two incremental belts plus a growable third belt for completeness);
3.  define object types (their type objects live in the boot image);
4.  allocate a linked list through a :class:`repro.MutatorContext` —
    every reference store goes through the paper's frame write barrier;
5.  churn garbage until collections happen, then inspect the belt
    structure, verify the heap, and read the cost-model statistics.

Run::

    python examples/quickstart.py
"""

import repro
from repro import VM, MutatorContext


def run_a_benchmark() -> None:
    # The consolidated run API: one (benchmark, collector, heap) cell.
    # RunOptions selects telemetry; with the defaults nothing is
    # instrumented and only report.stats is filled.
    report = repro.run(
        "jess", "25.25.100", 48 * 1024,
        options=repro.RunOptions(scale=0.2, ring_buffer=0, counters=True),
    )
    print("One benchmark run through repro.run():")
    print(" ", report.stats.summary_row())
    gcs = [e for e in report.events if e.kind == "gc.end"]
    print(f"  telemetry: {len(report.events)} events, "
          f"{len(gcs)} collections observed")
    print(f"  counters:  gc_copied_bytes_total="
          f"{report.counters['gc_copied_bytes_total']:.0f}")
    print()


def main() -> None:
    run_a_benchmark()
    # A 32 KB heap managed by Beltway 25.25.100 (the paper's headline
    # configuration).  Any configuration string from the paper works here:
    # "BSS", "Appel", "BOF.25", "BOFM.25", "10.10", "33.33.100", ...
    vm = VM(heap_bytes=32 * 1024, collector="25.25.100")
    node = vm.define_type("node", nrefs=2, nscalars=1)

    mu = MutatorContext(vm)

    # Build a 200-element linked list.  Handles are GC-safe roots: when a
    # collection moves an object, the handle follows it.
    head = mu.handle()
    for i in range(200):
        cell = mu.alloc(node)
        mu.write_int(cell, 0, i)  # payload
        mu.write(cell, 0, head)  # next-pointer, through the write barrier
        head.addr = cell.addr
        cell.drop()

    # A long-lived "registry" object that we keep pointing at fresh
    # objects: once the registry is promoted, each of these stores is an
    # old->young pointer that the write barrier must remember.
    registry = mu.alloc(node)

    # Churn short-lived garbage to force nursery collections and
    # promotions up the belts.
    for i in range(3000):
        junk = mu.alloc(node)
        if i % 10 == 0:
            mu.write(registry, 1, junk)  # old -> young: barrier slow path
        junk.drop()

    print("Belt structure after churn:")
    print(vm.plan.describe_structure())
    print()

    # The list survived every collection intact.
    count, cursor = 0, mu.copy_handle(head)
    while not cursor.is_null:
        count += 1
        nxt = mu.read(cursor, 0)
        cursor.drop()
        cursor = nxt
    print(f"linked list intact: {count} nodes")

    # The verifier walks everything reachable and checks heap invariants.
    report = vm.plan.verify()
    print(f"verified heap: {report.objects} objects, {report.live_bytes} live bytes")
    print()

    stats = vm.finish()
    print("Run statistics (deterministic cost model):")
    print(f"  allocations:     {stats.allocations}")
    print(f"  allocated bytes: {stats.allocated_bytes}")
    print(f"  collections:     {stats.collections} "
          f"({stats.full_heap_collections} full-heap)")
    print(f"  copied bytes:    {stats.copied_bytes}")
    print(f"  barrier:         {stats.barrier_fast} stores, "
          f"{stats.barrier_slow} remembered")
    print(f"  GC time share:   {100 * stats.gc_fraction:.1f}%")
    print(f"  max pause:       {stats.max_pause_cycles:.0f} cycles")


if __name__ == "__main__":
    main()
