#!/usr/bin/env python3
"""Responsiveness: pause times and minimum mutator utilisation (Fig. 11).

The paper's §4.3 shows that Beltway configurations can be *tuned for
responsiveness*: small increments mean small collections, so
configurations like 10.10 and 10.10.100 deliver much better minimum
mutator utilisation (MMU) than Appel-style collectors, whose occasional
full-heap collections stall the mutator for a long time.

This example runs the synthetic javac workload at 1.5x its minimum heap
under five configurations and prints:

* the pause-time distribution (count / mean / max);
* MMU at a range of window sizes — the x-intercept of each curve is that
  collector's maximum pause, the asymptote its overall throughput.

Run::

    python examples/responsiveness.py
"""

from repro.analysis.mmu import max_pause, mmu, overall_utilisation
from repro.harness.runner import RunOptions, find_min_heap, run

COLLECTORS = ["10.10", "10.10.100", "33.33", "33.33.100", "gctk:Appel"]
BENCHMARK = "javac"
SCALE = 0.5  # shortened run; shapes are unaffected


def main() -> None:
    minimum = find_min_heap(BENCHMARK, "gctk:Appel", scale=SCALE)
    heap = int(1.5 * minimum)
    print(f"{BENCHMARK} at {heap / 1024:.1f}KB (1.5x min heap), "
          f"workload scale {SCALE}\n")

    runs = {}
    for collector in COLLECTORS:
        stats = run(
            BENCHMARK, collector, heap, options=RunOptions(scale=SCALE)
        ).stats
        if not stats.completed:
            print(f"{collector:<12} did not complete at this heap size")
            continue
        runs[collector] = stats

    print(f"{'collector':<12} {'pauses':>7} {'mean':>10} {'max':>10} "
          f"{'throughput':>11}")
    print("-" * 55)
    for collector, stats in runs.items():
        intervals = stats.pause_intervals()
        durations = [end - start for start, end in intervals]
        mean = sum(durations) / len(durations) if durations else 0.0
        print(
            f"{collector:<12} {len(durations):>7} {mean:>10.0f} "
            f"{max_pause(intervals):>10.0f} "
            f"{overall_utilisation(intervals, stats.total_cycles):>10.1%}"
        )

    # MMU at a few window sizes (in fractions of the total run).
    fractions = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3]
    print(f"\nMMU by window size (fraction of the run):")
    print(f"{'collector':<12} " + " ".join(f"{f:>7.3f}" for f in fractions))
    print("-" * (13 + 8 * len(fractions)))
    for collector, stats in runs.items():
        intervals = stats.pause_intervals()
        row = [
            mmu(intervals, stats.total_cycles, f * stats.total_cycles)
            for f in fractions
        ]
        print(f"{collector:<12} " + " ".join(f"{m:>7.3f}" for m in row))

    print(
        "\nReading the table: higher is better; small-increment Beltway\n"
        "configurations keep the mutator running at every window size,\n"
        "while Appel's full-heap collections zero out the small windows."
    )


if __name__ == "__main__":
    main()
