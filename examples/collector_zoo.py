#!/usr/bin/env python3
"""Collector zoo: one workload, every collector the framework subsumes.

The paper's central claim is generality: a single implementation,
configured "from the command line", behaves as a semi-space collector, an
Appel-style generational collector, a fixed-size-nursery generational
collector, an older-first collector, an older-first-mix collector, and
the new Beltway X.X / X.X.100 designs.

This example runs an identical rotating-live-set workload against every
configuration (plus the *independently implemented* gctk baselines) and
prints a comparison table: collection counts, bytes copied, write-barrier
activity, GC time share and maximum pause.  Note how

* BSS matches the independent gctk:SS, and Beltway 100.100 matches
  gctk:Appel (Fig. 5's equivalence);
* older-first configurations (BOF/BOFM) copy the least — they give
  objects time to die;
* small increments (10.10.100) trade more collections for much shorter
  maximum pauses (Fig. 11's responsiveness story).

Run::

    python examples/collector_zoo.py
"""

from repro import VM, MutatorContext
from repro.errors import OutOfMemory

COLLECTORS = [
    "BSS",
    "gctk:SS",
    "Appel",
    "gctk:Appel",
    "Fixed.25",
    "gctk:Fixed.25",
    "BOF.25",
    "BOFM.25",
    "25.25",
    "25.25.100",
    "10.10.100",
    "100.100.100",
]

HEAP_BYTES = 24 * 1024
ALLOCATIONS = 8000


def run(collector: str):
    vm = VM(heap_bytes=HEAP_BYTES, collector=collector)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    keep = []
    try:
        for i in range(ALLOCATIONS):
            handle = mu.alloc(node)
            mu.write_int(handle, 0, i)
            if i % 9 == 0:
                if keep:  # link into the live structure (barrier traffic)
                    mu.write(keep[-1], 1, handle)
                keep.append(handle)
                if len(keep) > 60:  # rotating live set
                    keep.pop(0).drop()
            else:
                handle.drop()
    except OutOfMemory as error:
        return None, str(error)
    vm.plan.verify()
    return vm.finish(), ""


def main() -> None:
    print(f"workload: {ALLOCATIONS} allocations, rotating live set, "
          f"{HEAP_BYTES // 1024}KB heap\n")
    header = (f"{'collector':<14} {'GCs':>4} {'full':>4} {'copiedKB':>9} "
              f"{'barrier':>8} {'slow':>6} {'gc%':>6} {'maxpause':>9}")
    print(header)
    print("-" * len(header))
    for collector in COLLECTORS:
        stats, failure = run(collector)
        if stats is None:
            print(f"{collector:<14} FAILED: {failure[:50]}")
            continue
        print(
            f"{collector:<14} {stats.collections:>4} "
            f"{stats.full_heap_collections:>4} "
            f"{stats.copied_bytes / 1024:>9.1f} {stats.barrier_fast:>8} "
            f"{stats.barrier_slow:>6} {100 * stats.gc_fraction:>5.1f}% "
            f"{stats.max_pause_cycles:>9.0f}"
        )


if __name__ == "__main__":
    main()
