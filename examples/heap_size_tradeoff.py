#!/usr/bin/env python3
"""Heap-size trade-off: a miniature Figure 9 for one benchmark.

Sweeps one benchmark across heap sizes from its minimum to 3x the
minimum (log-spaced, as in the paper) under Beltway 25.25.100, the
Appel-style baseline and a fixed-size 25% nursery, then prints GC time
and total time relative to the best observed result — the exact
presentation of the paper's performance figures.

Run::

    python examples/heap_size_tradeoff.py [benchmark]

(default benchmark: jess)
"""

import sys

from repro.analysis.series import relative_to_best
from repro.analysis.sweep import heap_multipliers, sweep
from repro.analysis.tables import render_series
from repro.harness.runner import find_min_heap

COLLECTORS = ["25.25.100", "gctk:Appel", "gctk:Fixed.25"]
SCALE = 0.5
POINTS = 8


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jess"
    minimum = find_min_heap(benchmark, "gctk:Appel", scale=SCALE)
    multipliers = heap_multipliers(POINTS)
    print(
        f"{benchmark}: min heap {minimum / 1024:.1f}KB, sweeping "
        f"{POINTS} sizes up to 3x (workload scale {SCALE})\n"
    )

    gc_series = {}
    total_series = {}
    for collector in COLLECTORS:
        result = sweep(benchmark, collector, minimum, multipliers, scale=SCALE)
        gc_series[collector] = result.gc_time_series()
        total_series[collector] = result.total_time_series()

    print(render_series(
        multipliers, relative_to_best(gc_series),
        f"GC time relative to best ({benchmark})",
    ))
    print()
    print(render_series(
        multipliers, relative_to_best(total_series),
        f"Total time relative to best ({benchmark})",
    ))
    print(
        "\n'--' marks heap sizes where a collector could not complete —\n"
        "fixed-size nurseries fail first as the heap tightens (Fig. 6)."
    )


if __name__ == "__main__":
    main()
