#!/usr/bin/env python3
"""Completeness: why Beltway X.X.100 exists (the javac anecdote, §4.2.4).

Beltway X.X (two belts of bounded increments) is attractively incremental
but *incomplete*: a dead cycle whose members sit in different increments
is never reclaimed, because each increment is collected independently and
each member looks live from the other's remembered set.  Beltway X.X.100
adds a third, growable belt that is eventually collected en masse,
restoring completeness.

This example constructs the pathological case directly through the
public API: rings of objects are cross-linked with rings allocated far
enough earlier that promotion scatters each pair across increments, then
all roots are dropped.  Under 25.25 the garbage accumulates forever;
under 25.25.100 (and Appel) it is reclaimed.

Run::

    python examples/completeness.py
"""

from repro import VM, MutatorContext
from repro.errors import OutOfMemory

HEAP = 18 * 1024


def run(collector: str):
    vm = VM(heap_bytes=HEAP, collector=collector)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)

    floor = [None]  # lowest post-collection occupancy, in words

    def watch(result):
        occ = vm.plan.live_words_upper_bound
        if floor[0] is None or occ < floor[0]:
            floor[0] = occ

    vm.plan.collection_listeners.append(watch)
    previous = None
    doomed = 0
    try:
        for generation in range(80):
            # one small ring per "generation"
            ring = [mu.alloc(node) for _ in range(4)]
            for i, handle in enumerate(ring):
                mu.write(handle, 0, ring[(i + 1) % 4])
            if previous is not None:
                # cross-link with the ring allocated a generation ago:
                # by now its members live in an older increment
                mu.write(ring[0], 1, previous)
                mu.write(previous, 1, ring[0])
                previous.drop()
                previous = None
            else:
                previous = mu.copy_handle(ring[0])
            for handle in ring:
                handle.drop()  # the cycle is garbage (when paired)
            doomed += 4 * node.size_bytes()
            # age the ring into the upper belts
            for _ in range(400):
                mu.alloc(node).drop()
        # All rings are garbage now.  Measure the occupancy floor over a
        # final stretch of pure churn: every collector gets ample chances
        # to reclaim whatever it is able to reclaim.
        floor[0] = None
        window = []
        for i in range(30000):
            junk = mu.alloc(node)
            if i % 6 == 0:
                window.append(junk)
                if len(window) > 40:  # rotating survivors: the old belts
                    window.pop(0).drop()  # keep filling, forcing full GCs
            else:
                junk.drop()
    except OutOfMemory as error:
        return None, doomed, str(error)

    reachable = vm.plan.verify()
    retained_floor = (floor[0] or 0) * 4
    return (reachable.live_bytes, retained_floor), doomed, ""


def main() -> None:
    print(f"{HEAP // 1024}KB heap; rings of garbage cross-linked across "
          f"increments\n")
    for collector in ("25.25", "25.25.100", "25.25.MOS", "Appel"):
        result, doomed, failure = run(collector)
        if result is None:
            print(f"{collector:<10} FAILED ({failure[:60]}) after dooming "
                  f"{doomed} bytes of cyclic garbage")
            continue
        reachable, floor = result
        print(
            f"{collector:<10} best post-GC occupancy={floor:6d}B  "
            f"(lower = more cyclic garbage reclaimed)"
        )
    print(
        "\nThe best post-collection occupancy is each collector's garbage\n"
        "floor.  Appel reclaims the dead cycles at every major collection;\n"
        "25.25.100 reclaims them only when its third belt has grown to all\n"
        "usable memory and is collected en masse (lazy completeness, the\n"
        "paper's trade-off); 25.25 carries cross-increment cycles forever\n"
        "and fails outright in tighter heaps (the javac anecdote, §4.2.4)."
    )


if __name__ == "__main__":
    main()
