"""Declarative workload loading: schema validation with JSON-pointer
locations, YAML degradation, and mapping round-trips (ISSUE 8)."""

import json

import pytest

import repro.workloads.config as config
from repro.errors import ConfigError
from repro.workloads import ServerWorkloadSpec, from_mapping, load_file, loads
from repro.workloads.model import MAX_ARRAY_LENGTH


def minimal_doc(**overrides):
    """The smallest valid spec, mutated per test."""
    doc = {
        "name": "t",
        "tasks": [
            {
                "name": "get",
                "sites": [{"type": "small", "lifetime": "request"}],
            }
        ],
    }
    doc.update(overrides)
    return doc


def fail_pointer(doc):
    """Load ``doc`` expecting a ConfigError; return its message."""
    with pytest.raises(ConfigError) as excinfo:
        from_mapping(doc, source="spec")
    return str(excinfo.value)


def test_minimal_doc_loads():
    spec = from_mapping(minimal_doc())
    assert isinstance(spec, ServerWorkloadSpec)
    assert spec.name == "t"
    assert spec.tasks[0].sites[0].lifetime == "request"


# ----------------------------------------------------------------------
# The three distinct errors the issue names, each with its pointer
# ----------------------------------------------------------------------
def test_negative_arrival_rate_has_pointer():
    msg = fail_pointer(minimal_doc(arrival={"rate_rps": -5}))
    assert "spec:/arrival/rate_rps:" in msg
    assert "arrival rate must be > 0 requests/s (got -5)" in msg


def test_zero_task_weight_has_pointer():
    doc = minimal_doc()
    doc["tasks"][0]["weight"] = 0
    msg = fail_pointer(doc)
    assert "spec:/tasks/0/weight:" in msg
    assert "task weight must be > 0 (got 0)" in msg


def test_negative_site_weight_has_pointer():
    doc = minimal_doc()
    doc["tasks"][0]["sites"][0]["weight"] = -1
    msg = fail_pointer(doc)
    assert "spec:/tasks/0/sites/0/weight:" in msg
    assert "site weight must be > 0 (got -1)" in msg


def test_unknown_lifetime_class_has_pointer():
    doc = minimal_doc()
    doc["tasks"][0]["sites"][0]["lifetime"] = "forever"
    msg = fail_pointer(doc)
    assert "spec:/tasks/0/sites/0/lifetime:" in msg
    assert "unknown lifetime class 'forever'" in msg
    assert "request" in msg  # the error lists what *is* known


# ----------------------------------------------------------------------
# Other schema errors keep their locations too
# ----------------------------------------------------------------------
def test_reserved_lifetime_redefinition():
    msg = fail_pointer(minimal_doc(
        lifetimes={"request": {"lo_bytes": 1, "hi_bytes": 2}}))
    assert "spec:/lifetimes/request:" in msg
    assert "reserved" in msg


def test_unknown_top_level_field():
    msg = fail_pointer(minimal_doc(bogus=1))
    assert "spec:/bogus:" in msg
    assert "unknown field" in msg


def test_unknown_site_type():
    doc = minimal_doc()
    doc["tasks"][0]["sites"][0]["type"] = "blob"
    msg = fail_pointer(doc)
    assert "spec:/tasks/0/sites/0/type:" in msg


def test_wrong_kind_rejected():
    msg = fail_pointer(minimal_doc(kind="closed-loop"))
    assert "spec:/kind:" in msg


def test_array_length_beyond_frame_capacity():
    doc = minimal_doc()
    doc["tasks"][0]["sites"][0] = {
        "type": "refarr", "lifetime": "request",
        "length": [4, MAX_ARRAY_LENGTH + 1],
    }
    msg = fail_pointer(doc)
    assert "spec:/tasks/0/sites/0/length:" in msg
    assert "frame capacity" in msg


def test_session_slots_beyond_frame_capacity():
    msg = fail_pointer(minimal_doc(
        sessions={"slots": MAX_ARRAY_LENGTH + 1}))
    assert "spec:/sessions/slots:" in msg


def test_bad_duration():
    msg = fail_pointer(minimal_doc(duration_s=0))
    assert "spec:/duration_s:" in msg


def test_named_lifetimes_resolve():
    doc = minimal_doc(lifetimes={"idx": {"lo_bytes": 64, "hi_bytes": 256}})
    doc["tasks"][0]["sites"].append({"type": "node", "lifetime": "idx"})
    spec = from_mapping(doc)
    assert spec.lifetimes["idx"].hi_bytes == 256


# ----------------------------------------------------------------------
# Round trips and file loading
# ----------------------------------------------------------------------
def test_to_dict_round_trips():
    spec = from_mapping(minimal_doc(
        duration_s=0.25,
        arrival={"process": "bursty", "rate_rps": 700},
        lifetimes={"idx": {"lo_bytes": 64, "hi_bytes": 256}},
    ))
    assert from_mapping(spec.to_dict()) == spec


def test_load_json_file(tmp_path):
    path = tmp_path / "w.json"
    path.write_text(json.dumps(minimal_doc()))
    assert load_file(path).name == "t"


def test_invalid_json_names_the_source(tmp_path):
    path = tmp_path / "w.json"
    path.write_text("{nope")
    with pytest.raises(ConfigError, match="invalid JSON"):
        load_file(path)


def test_missing_file_is_config_error(tmp_path):
    with pytest.raises(ConfigError, match="cannot read"):
        load_file(tmp_path / "absent.json")


def test_unknown_suffix_is_config_error(tmp_path):
    with pytest.raises(ConfigError, match="suffix"):
        load_file(tmp_path / "w.toml")


def test_error_carries_file_path(tmp_path):
    path = tmp_path / "bad.json"
    doc = minimal_doc()
    doc["tasks"][0]["weight"] = -2
    path.write_text(json.dumps(doc))
    with pytest.raises(ConfigError) as excinfo:
        load_file(path)
    assert str(path) in str(excinfo.value)
    assert "/tasks/0/weight" in str(excinfo.value)


# ----------------------------------------------------------------------
# YAML: optional extra, graceful degradation
# ----------------------------------------------------------------------
def test_yaml_loads_when_available():
    if config._yaml is None:
        pytest.skip("PyYAML not installed")
    spec = loads("name: t\ntasks:\n  - name: get\n    sites:\n"
                 "      - {type: small, lifetime: request}\n",
                 format="yaml")
    assert spec.name == "t"


def test_yaml_missing_degrades_with_clear_error(tmp_path, monkeypatch):
    monkeypatch.setattr(config, "_yaml", None)
    path = tmp_path / "w.yaml"
    path.write_text("name: t\n")
    with pytest.raises(ConfigError, match=r"repro\[workloads\]"):
        load_file(path)
    # JSON keeps working with the YAML backend absent
    jpath = tmp_path / "w.json"
    jpath.write_text(json.dumps(minimal_doc()))
    assert load_file(jpath).name == "t"


def test_loads_string_yaml_missing(monkeypatch):
    monkeypatch.setattr(config, "_yaml", None)
    with pytest.raises(ConfigError, match="YAML workload files need PyYAML"):
        loads("name: t\n", format="yaml")
    # the JSON path is untouched by the missing backend
    assert loads(json.dumps(minimal_doc()), format="json").name == "t"
