"""``beltway-bench serve``: config-only server runs from the command
line, plus workload-file refs flowing through the other subcommands."""

import json
from pathlib import Path

import pytest

from repro.harness.cli import main

REPO = Path(__file__).resolve().parents[2]
KVSTORE = str(REPO / "examples" / "workloads" / "kvstore.json")
WEBFRONT = str(REPO / "examples" / "workloads" / "webfront.yaml")


def mini_file(tmp_path, rate=700):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps({
        "name": "mini",
        "duration_s": 0.05,
        "arrival": {"rate_rps": rate},
        "tasks": [{"name": "get",
                   "sites": [{"type": "small", "lifetime": "request"}]}],
    }))
    return str(path)


def test_serve_validate_examples(capsys):
    assert main(["serve", KVSTORE, "--validate"]) == 0
    out = capsys.readouterr().out
    assert "kvstore: valid server workload" in out
    assert "poisson @ 1200" in out
    assert main(["serve", WEBFRONT, "--validate"]) == 0
    assert "webfront: valid server workload" in capsys.readouterr().out


def test_serve_runs_and_prints_latency_line(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["serve", spec, "--collector", "25.25.100",
                 "--heap-kb", "96", "--no-store"])
    assert code == 0
    out = capsys.readouterr().out
    assert "latency-cycles mini/25.25.100:" in out
    assert "p99=" in out and "queue_peak=" in out


def test_serve_is_bit_identical_across_invocations(tmp_path, capsys):
    spec = mini_file(tmp_path)
    args = ["serve", spec, "--collector", "25.25.100",
            "--heap-kb", "96", "--no-store"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    line = [l for l in first.splitlines() if l.startswith("latency-cycles")]
    assert line and line == \
        [l for l in second.splitlines() if l.startswith("latency-cycles")]


def test_serve_rate_override_changes_offered_load(tmp_path, capsys):
    spec = mini_file(tmp_path)
    base = ["serve", spec, "--collector", "25.25.100",
            "--heap-kb", "96", "--no-store"]
    assert main(base) == 0
    slow = capsys.readouterr().out
    assert main(base + ["--rate", "2000"]) == 0
    fast = capsys.readouterr().out
    def count(out):
        row = next(l for l in out.splitlines() if "requests=" in l)
        return int(row.split("requests=")[1].split()[0])
    assert count(fast) > count(slow)


def test_serve_bad_spec_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "name": "bad",
        "arrival": {"rate_rps": -5},
        "tasks": [{"name": "get",
                   "sites": [{"type": "small", "lifetime": "request"}]}],
    }))
    code = main(["serve", str(path), "--validate"])
    assert code != 0
    err = capsys.readouterr().err
    assert "/arrival/rate_rps" in err
    assert "must be > 0" in err


def test_serve_rejects_closed_loop_benchmarks(tmp_path):
    with pytest.raises(SystemExit):
        main(["serve", "jess", "--heap-kb", "96"])


def test_serve_through_grid_store(tmp_path, capsys):
    """Second serve of the same cell replays from the store."""
    spec = mini_file(tmp_path)
    args = ["serve", spec, "--collector", "25.25.100", "--heap-kb", "96",
            "--store", str(tmp_path / "store")]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "grid:" in second
    line = [l for l in first.splitlines() if l.startswith("latency-cycles")]
    assert line == \
        [l for l in second.splitlines() if l.startswith("latency-cycles")]


def test_serve_rate_ladder_prints_one_line_per_rate(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["serve", spec, "--collector", "25.25.100",
                 "--heap-kb", "96", "--no-store", "--rate", "400,800"])
    assert code == 0
    out = capsys.readouterr().out
    assert "latency-cycles mini/25.25.100@400rps:" in out
    assert "latency-cycles mini/25.25.100@800rps:" in out


def test_serve_single_rate_keeps_unsuffixed_format(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["serve", spec, "--collector", "25.25.100",
                 "--heap-kb", "96", "--no-store", "--rate", "2000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "latency-cycles mini/25.25.100:" in out
    assert "@" not in next(
        l for l in out.splitlines() if l.startswith("latency-cycles"))


def test_serve_rate_ladder_traces_one_merged_timeline(tmp_path, capsys):
    """A ladder plus --trace yields one JSONL timeline covering every
    rung (this combination used to be rejected; the campaign bus made
    the restriction obsolete)."""
    from repro.obs.sinks import load_jsonl
    from repro.obs.trace import build_timeline

    spec = mini_file(tmp_path)
    trace = tmp_path / "t.jsonl"
    code = main(["serve", spec, "--heap-kb", "96", "--no-store",
                 "--rate", "400,800", "--trace", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert f"-> {trace}" in out
    timeline = build_timeline(load_jsonl(trace, validate=True))
    runs = timeline.of_cat("run")
    assert len(runs) == 2
    assert len(timeline.of_cat("grid")) == 2
    assert timeline.of_cat("request")


def test_serve_rate_ladder_rejects_garbage(tmp_path):
    spec = mini_file(tmp_path)
    for bad in ("0", "400,-8", "nope", ","):
        with pytest.raises(SystemExit):
            main(["serve", spec, "--heap-kb", "96", "--no-store",
                  "--rate", bad])


def test_run_subcommand_accepts_workload_file(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["run", "--benchmark", spec, "--collector", "25.25.100",
                 "--heap-kb", "96"])
    assert code == 0
    assert "mini" in capsys.readouterr().out
