"""Golden request-latency snapshots: one example server workload on two
collector families, bit-identical across runs and substrate tiers.

``tests/data/golden_server.json`` was captured by
``tests/data/capture_golden_server.py``; these tests replay the identical
fixed-seed runs and compare every RequestStats field and the core cycle
counters exactly.  The pinned ``latency_line`` is the same line
``beltway-bench serve`` prints, so the CI grep and these asserts witness
the same bytes.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import RunOptions, run
from repro.kernels import available
from repro.runtime.vm import VM
from repro.specs import load as load_spec
from repro.workloads import ServerMutator

REPO = Path(__file__).resolve().parents[2]
GOLDEN = json.loads(
    (REPO / "tests" / "data" / "golden_server.json").read_text()
)

COMPARED = ("completed", "collections", "allocations", "allocated_bytes",
            "total_cycles", "gc_cycles", "mutator_cycles")


def replay(cell: dict) -> dict:
    report = run(REPO / cell["spec"], cell_collector(cell),
                 cell["heap_bytes"], options=RunOptions(seed=GOLDEN["seed"]))
    requests = report.requests
    got = {name: getattr(report.stats, name) for name in COMPARED}
    got["requests"] = requests.to_dict()
    spec = load_spec(REPO / cell["spec"])
    got["latency_line"] = (
        f"latency-cycles {spec.name}/{cell_collector(cell)}: "
        f"p50={requests.p50_cycles!r} p99={requests.p99_cycles!r} "
        f"p99.9={requests.p999_cycles!r} max={requests.max_cycles!r}"
    )
    return got


def cell_collector(cell: dict) -> str:
    return cell["_collector"]


def _cells():
    cells = []
    for key, cell in sorted(GOLDEN["cells"].items()):
        cell = dict(cell)
        cell["_collector"] = key.split("/", 1)[1]
        cells.append(pytest.param(cell, id=key))
    return cells


@pytest.mark.parametrize("cell", _cells())
def test_latency_golden_bit_identical(cell):
    got = replay(cell)
    for name in COMPARED:
        assert got[name] == cell[name], name
    assert got["requests"] == cell["requests"]
    assert got["latency_line"] == cell["latency_line"]


@pytest.mark.parametrize("tier", ("python", "numpy", "cffi"))
def test_latency_golden_on_every_tier(tier):
    """Request latencies are substrate-independent: the fastest-available
    kernel tier must reproduce the golden percentiles bit for bit."""
    status = available().get(tier, "unknown tier")
    if not status.startswith("ok"):
        pytest.skip(f"{tier} tier unavailable: {status}")
    key = sorted(GOLDEN["cells"])[0]
    cell = GOLDEN["cells"][key]
    collector = key.split("/", 1)[1]
    spec = load_spec(REPO / cell["spec"])
    vm = VM(cell["heap_bytes"], collector=collector, locality=spec.locality,
            benchmark_name=spec.name, tier=tier)
    engine = ServerMutator(vm, spec, seed=GOLDEN["seed"])
    stats = engine.run()
    assert stats.requests.to_dict() == cell["requests"]
    assert stats.total_cycles == cell["total_cycles"]
