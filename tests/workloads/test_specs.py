"""The unified spec-ref surface (ISSUE 8 satellite): one loader for
benchmark names, workload files and spec objects; content-addressed
fingerprints; every run entry point accepting all three ref kinds."""

import json
import shutil
from pathlib import Path

import pytest

from repro.bench.engine import WorkloadSpec
from repro.bench.spec import benchmark_spec
from repro.errors import ConfigError
from repro.harness.runner import RunOptions, find_min_heap, run, run_many
from repro.specs import describe, fingerprint, is_file_ref, load
from repro.workloads import ServerWorkloadSpec, from_mapping

REPO = Path(__file__).resolve().parents[2]
KVSTORE = REPO / "examples" / "workloads" / "kvstore.json"

MINI = {
    "name": "mini",
    "duration_s": 0.05,
    "arrival": {"rate_rps": 600},
    "tasks": [{"name": "get",
               "sites": [{"type": "small", "lifetime": "request"}]}],
}


# ----------------------------------------------------------------------
# load(): the three ref kinds
# ----------------------------------------------------------------------
def test_load_benchmark_name():
    spec = load("jess")
    assert isinstance(spec, WorkloadSpec)
    assert spec.name == "jess"


def test_load_file_path_str_and_pathlike():
    by_path = load(KVSTORE)
    by_str = load(str(KVSTORE))
    assert isinstance(by_path, ServerWorkloadSpec)
    assert by_path == by_str
    assert by_path.name == "kvstore"


def test_load_spec_object_passthrough():
    spec = from_mapping(MINI)
    assert load(spec) is spec
    bench = benchmark_spec("db")
    assert load(bench) is bench


def test_load_applies_scale():
    half = load(KVSTORE, scale=0.5)
    full = load(KVSTORE)
    assert half.duration_s == pytest.approx(full.duration_s * 0.5)
    scaled_obj = load(from_mapping(MINI), scale=0.5)
    assert scaled_obj.duration_s == pytest.approx(0.025)


def test_load_rejects_unresolvable_refs():
    with pytest.raises(ConfigError, match="unknown benchmark"):
        load("no-such-benchmark")
    with pytest.raises(ConfigError, match="cannot resolve"):
        load(12345)


def test_is_file_ref_by_suffix():
    assert is_file_ref("shop.yaml")
    assert is_file_ref("shop.JSON")
    assert is_file_ref(Path("shop.yml"))
    assert not is_file_ref("jess")


def test_describe_names():
    assert describe("jess") == "jess"
    assert describe(KVSTORE) == "kvstore"
    assert describe(from_mapping(MINI)) == "mini"


# ----------------------------------------------------------------------
# fingerprint(): content addressing
# ----------------------------------------------------------------------
def test_fingerprint_benchmark_is_canonical_name():
    assert fingerprint("jess") == "jess"
    assert fingerprint("_202_jess") == "jess"


def test_fingerprint_survives_rename(tmp_path):
    renamed = tmp_path / "totally-different-name.json"
    shutil.copyfile(KVSTORE, renamed)
    assert fingerprint(KVSTORE) == fingerprint(renamed)
    assert fingerprint(KVSTORE).startswith("server:kvstore:")


def test_fingerprint_changes_on_edit(tmp_path):
    doc = json.loads(KVSTORE.read_text())
    doc["arrival"]["rate_rps"] = 999
    edited = tmp_path / "kvstore.json"
    edited.write_text(json.dumps(doc))
    assert fingerprint(edited) != fingerprint(KVSTORE)


def test_fingerprint_object_equals_file():
    assert fingerprint(load(KVSTORE)) == fingerprint(KVSTORE)


def test_fingerprint_handbuilt_workloadspec_is_none():
    assert fingerprint(benchmark_spec("db")) is None


# ----------------------------------------------------------------------
# Entry points accept every ref kind
# ----------------------------------------------------------------------
def test_run_accepts_file_ref():
    report = run(KVSTORE, "25.25.100", 192 * 1024,
                 options=RunOptions(seed=13, scale=0.2))
    assert report.completed
    assert report.requests.count > 0


def test_run_many_mixes_ref_kinds():
    jobs = [
        (from_mapping(MINI), "25.25.100", 96 * 1024, 1.0, 13),
        ("jess", "25.25.100", 96 * 1024, 0.05, 13),
    ]
    server_stats, bench_stats = run_many(jobs, parallel=False)
    assert server_stats.requests is not None
    assert server_stats.requests.count > 0
    assert bench_stats.requests is None
    assert bench_stats.completed


def test_find_min_heap_accepts_server_spec():
    spec = from_mapping(MINI)
    min_heap = find_min_heap(spec, "gctk:Appel", max_bytes=512 * 1024)
    assert 0 < min_heap <= 512 * 1024
    assert run(spec, "gctk:Appel", min_heap,
               options=RunOptions(seed=13)).completed
