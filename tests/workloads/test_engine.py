"""Open-loop engine semantics: determinism, arrival generation, lifetime
scopes, latency accounting, and partial results on OOM (ISSUE 8)."""

import random

import pytest

from repro.errors import OutOfMemory
from repro.harness.runner import RunOptions, run
from repro.runtime.vm import VM
from repro.workloads import ServerMutator, from_mapping
from repro.workloads.arrivals import generate_arrivals
from repro.workloads.latency import RequestStats
from repro.workloads.model import ArrivalSpec

SEED = 13

#: A small but fully-featured mix: every lifetime scope, cache traffic,
#: session churn.  ~80 requests in 0.1 simulated seconds.
DOC = {
    "name": "mini",
    "duration_s": 0.1,
    "arrival": {"rate_rps": 800},
    "sessions": {"max_concurrent": 4, "requests_per_session": [2, 6],
                 "slots": 6, "seed_objects": 2},
    "cache": {"slots": 48, "ttl_s": [0.005, 0.02]},
    "lifetimes": {"idx": {"lo_bytes": 512, "hi_bytes": 4096}},
    "tasks": [
        {"name": "get", "weight": 3, "cache_lookups": 2, "reads": 1.5,
         "request_bytes": [96, 256],
         "sites": [{"type": "small", "lifetime": "request"}]},
        {"name": "set", "weight": 1, "request_bytes": [128, 384],
         "sites": [
             {"weight": 2, "type": "buf", "lifetime": "cache",
              "length": [8, 24]},
             {"weight": 1, "type": "node", "lifetime": "session",
              "link_prob": 0.5},
             {"weight": 1, "type": "node", "lifetime": "idx"},
         ]},
    ],
}


def serve(collector="25.25.100", heap_kb=96, seed=SEED, doc=None):
    spec = from_mapping(doc or DOC)
    vm = VM(heap_kb * 1024, collector=collector, locality=spec.locality,
            benchmark_name=spec.name)
    engine = ServerMutator(vm, spec, seed=seed)
    return engine.run(), engine


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_repeat_runs_bit_identical():
    a, _ = serve()
    b, _ = serve()
    assert a.requests == b.requests
    assert a.total_cycles == b.total_cycles
    assert a.gc_cycles == b.gc_cycles
    assert a.allocated_bytes == b.allocated_bytes
    assert [p.duration_cycles for p in a.pauses] == \
        [p.duration_cycles for p in b.pauses]


def test_seed_changes_the_run():
    a, _ = serve(seed=13)
    b, _ = serve(seed=14)
    assert a.requests.to_dict() != b.requests.to_dict()


def test_offered_load_is_collector_independent():
    """Open loop: the arrival schedule never depends on service."""
    a, _ = serve(collector="25.25.100")
    b, _ = serve(collector="gctk:Appel")
    assert a.requests.offered == b.requests.offered
    assert a.requests.count == b.requests.count
    assert a.allocations == b.allocations


# ----------------------------------------------------------------------
# Arrival generation
# ----------------------------------------------------------------------
def test_poisson_arrivals_deterministic_and_sorted():
    spec = ArrivalSpec(rate_rps=1000.0)
    a = generate_arrivals(spec, 0.5, random.Random(7))
    b = generate_arrivals(spec, 0.5, random.Random(7))
    assert a == b
    assert a == sorted(a)
    assert all(t >= 0 for t in a)


def test_poisson_rate_approximately_honoured():
    spec = ArrivalSpec(rate_rps=2000.0)
    arrivals = generate_arrivals(spec, 2.0, random.Random(3))
    assert 0.85 * 4000 < len(arrivals) < 1.15 * 4000


def test_bursty_mean_rate_matches_spec():
    spec = ArrivalSpec(process="bursty", rate_rps=500.0,
                       burst_multiplier=4.0, on_s=0.05, off_s=0.15)
    arrivals = generate_arrivals(spec, 4.0, random.Random(5))
    expected = spec.mean_rate_rps * 4.0
    assert 0.85 * expected < len(arrivals) < 1.15 * expected


def test_max_requests_caps_arrivals():
    spec = ArrivalSpec(rate_rps=5000.0)
    arrivals = generate_arrivals(spec, 1.0, random.Random(1), max_requests=25)
    assert len(arrivals) == 25


# ----------------------------------------------------------------------
# Server semantics
# ----------------------------------------------------------------------
def test_sessions_open_and_close():
    stats, engine = serve()
    r = stats.requests
    assert r.sessions_opened > 1
    # the drain closes every connection left open at the end of the run
    assert r.sessions_closed == r.sessions_opened


def test_cache_inserts_and_ttl_expirations():
    stats, _ = serve()
    r = stats.requests
    assert r.cache_inserts > 0
    assert 0 < r.cache_expirations <= r.cache_inserts
    assert r.cache_lookups > 0
    assert 0 <= r.cache_hits <= r.cache_lookups


def test_every_arrival_is_served():
    stats, engine = serve()
    r = stats.requests
    assert r.count == r.offered > 0
    assert stats.completed


def test_latency_population_is_consistent():
    stats, _ = serve()
    r = stats.requests
    assert 0 < r.p50_cycles <= r.p90_cycles <= r.p99_cycles
    assert r.p99_cycles <= r.p999_cycles <= r.max_cycles
    assert r.mean_cycles * r.count == pytest.approx(r.total_latency_cycles)


def test_gc_pauses_land_in_request_timelines():
    """A tight heap collects during the run; some requests must observe
    a pause (their latency includes it) and the tail must stretch."""
    tight, _ = serve(heap_kb=48)
    roomy, _ = serve(heap_kb=512)
    assert tight.collections > roomy.collections
    assert tight.requests.paused_requests > 0


def test_mutator_plus_gc_equals_total():
    stats, _ = serve()
    assert stats.mutator_cycles + stats.gc_cycles == \
        pytest.approx(stats.total_cycles)


def test_counters_merge_request_metrics():
    stats, _ = serve()
    counters = stats.counters()
    assert counters["request_count_total"] == stats.requests.count
    assert counters["request_latency_p99_cycles"] == \
        stats.requests.p99_cycles
    assert counters["cache_inserts_total"] == stats.requests.cache_inserts


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------
def test_oom_reports_partial_latencies():
    """Too-small heap: the harness folds the abort into the report and
    the partial request population is still there."""
    report = run(from_mapping(DOC), "SS", 4 * 1024,
                 options=RunOptions(seed=SEED))
    assert not report.stats.completed
    r = report.requests
    assert isinstance(r, RequestStats)
    assert r.offered > 0
    assert r.count < r.offered


def test_raw_engine_raises_oom():
    with pytest.raises(OutOfMemory):
        serve(collector="SS", heap_kb=4)


# ----------------------------------------------------------------------
# Telemetry hooks
# ----------------------------------------------------------------------
def test_request_events_emitted_when_tracing():
    report = run(from_mapping(DOC), "25.25.100", 96 * 1024,
                 options=RunOptions(seed=SEED, ring_buffer=0))
    kinds = [e.kind for e in report.events]
    starts = kinds.count("request.start")
    ends = kinds.count("request.end")
    assert starts == ends == report.requests.count
    end = next(e for e in report.events if e.kind == "request.end")
    assert end.data["latency_cycles"] > 0
    assert end.data["task"] in ("get", "set")


def test_telemetry_does_not_change_the_run():
    plain = run(from_mapping(DOC), "25.25.100", 96 * 1024,
                options=RunOptions(seed=SEED))
    traced = run(from_mapping(DOC), "25.25.100", 96 * 1024,
                 options=RunOptions(seed=SEED, ring_buffer=0, counters=True))
    assert plain.stats.requests == traced.stats.requests
    assert plain.stats.total_cycles == traced.stats.total_cycles
