"""Unit tests for the cost model, clock and locality penalty."""

import pytest

from repro.sim.clock import Clock
from repro.sim.cost import CostModel, DEFAULT_COST_MODEL, cycles_to_seconds
from repro.sim.locality import LocalityModel, NO_LOCALITY


# ----------------------------------------------------------------------
# CostModel
# ----------------------------------------------------------------------
def test_alloc_cost_scales_with_size():
    cm = DEFAULT_COST_MODEL
    assert cm.mutator_alloc_cost(10) > cm.mutator_alloc_cost(2)
    assert cm.mutator_alloc_cost(0) == cm.alloc_object


def test_collection_cost_components():
    cm = CostModel()
    base = cm.collection_cost(0, 0, 0, 0, 0, 0)
    assert base == cm.gc_setup
    with_copy = cm.collection_cost(1, 10, 0, 0, 0, 0)
    assert with_copy == base + cm.copy_object + 10 * cm.copy_word
    with_boot = cm.collection_cost(0, 0, 0, 0, 0, 0, boot_slots_scanned=5)
    assert with_boot == base + 5 * cm.boot_scan_slot


def test_copying_costs_more_than_allocation():
    cm = DEFAULT_COST_MODEL
    assert cm.copy_word > cm.alloc_word


def test_cycles_to_seconds_positive():
    assert cycles_to_seconds(1e6) > 0


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
def test_clock_accumulates():
    clock = Clock()
    clock.charge_mutator(100)
    record = clock.charge_pause(50, "minor")
    clock.charge_mutator(25)
    assert clock.total_cycles == 175
    assert clock.mutator_cycles == 125
    assert clock.gc_cycles == 50
    assert record.start == 100 and record.end == 150
    assert clock.gc_fraction == pytest.approx(50 / 175)
    assert clock.max_pause == 50


def test_clock_rejects_negative():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.charge_mutator(-1)
    with pytest.raises(ValueError):
        clock.charge_pause(-1, "x")


def test_pause_records_ordered():
    clock = Clock()
    clock.charge_pause(10, "a")
    clock.charge_mutator(5)
    clock.charge_pause(10, "b")
    assert clock.pauses[0].end <= clock.pauses[1].start


# ----------------------------------------------------------------------
# LocalityModel
# ----------------------------------------------------------------------
def test_no_locality_is_unit():
    assert NO_LOCALITY.multiplier(10**9, 10**9) == 1.0


def test_cache_penalty_kicks_in_past_cache():
    model = LocalityModel(cache_words=1000, cache_sensitivity=0.5)
    assert model.multiplier(500, 0) == 1.0
    assert model.multiplier(2000, 0) > 1.0
    # capped overrun
    assert model.multiplier(10**9, 0) == pytest.approx(1.0 + 0.5 * 4.0)


def test_paging_penalty():
    model = LocalityModel(memory_words=1000, paging_factor=4.0)
    assert model.multiplier(0, 900) == 1.0
    assert model.multiplier(0, 1500) == pytest.approx(1.0 + 4.0 * 0.5)


def test_combined_penalties_additive():
    model = LocalityModel(
        cache_words=100, cache_sensitivity=1.0, memory_words=100, paging_factor=1.0
    )
    combined = model.multiplier(200, 200)
    assert combined == pytest.approx(1.0 + 1.0 + 1.0)
