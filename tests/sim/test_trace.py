"""Tests for the event tracer."""

import io

import pytest

from repro.runtime import VM, MutatorContext
from repro.sim.trace import Tracer, load_jsonl


@pytest.fixture
def traced_run():
    vm = VM(heap_bytes=16 * 1024, collector="25.25.100", boot_ballast_slots=0)
    vm.define_type("node", nrefs=2, nscalars=1)
    tracer = Tracer(vm, snapshot_every=3)
    mu = MutatorContext(vm)
    node = vm.types.by_name("node")
    for _ in range(2500):
        mu.alloc(node).drop()
    return vm, tracer


def test_collections_traced(traced_run):
    vm, tracer = traced_run
    events = tracer.collections()
    assert len(events) == len(vm.plan.collections)
    for event in events:
        assert event.data["freed_frames"] >= 0
        assert isinstance(event.data["belts"], list)
        assert event.data["reason"]


def test_event_times_monotone(traced_run):
    vm, tracer = traced_run
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_periodic_snapshots(traced_run):
    vm, tracer = traced_run
    snaps = tracer.snapshots()
    assert len(snaps) >= len(tracer.collections()) // 3
    for snap in snaps:
        assert snap.data["frames_in_use"] <= snap.data["frames_total"]
        assert snap.data["occupied_words"] >= 0


def test_manual_snapshot(traced_run):
    vm, tracer = traced_run
    before = len(tracer.snapshots())
    event = tracer.snapshot()
    assert event.kind == "snapshot"
    assert len(tracer.snapshots()) == before + 1


def test_jsonl_roundtrip(traced_run):
    vm, tracer = traced_run
    buffer = io.StringIO()
    count = tracer.write_jsonl(buffer)
    assert count == len(tracer.events)
    buffer.seek(0)
    parsed = load_jsonl(buffer)
    assert len(parsed) == count
    kinds = {p["kind"] for p in parsed}
    assert kinds == {"collection", "snapshot"}
    first_gc = next(p for p in parsed if p["kind"] == "collection")
    assert "copied_words" in first_gc and "time" in first_gc
