"""Tests for RunStats derived metrics."""

import pytest

from repro.sim.clock import PauseRecord
from repro.sim.stats import RunStats


def make_stats(**kwargs):
    base = dict(benchmark="x", collector="y", heap_bytes=1024)
    base.update(kwargs)
    return RunStats(**base)


def test_gc_fraction():
    stats = make_stats(total_cycles=100.0, gc_cycles=25.0)
    assert stats.gc_fraction == 0.25
    assert make_stats().gc_fraction == 0.0


def test_seconds_conversion_consistent():
    stats = make_stats(total_cycles=1e6, gc_cycles=5e5)
    assert stats.gc_seconds == pytest.approx(stats.total_seconds / 2)


def test_max_pause():
    pauses = [PauseRecord(0, 10, "a"), PauseRecord(20, 55, "b")]
    stats = make_stats(pauses=pauses)
    assert stats.max_pause_cycles == 35
    assert make_stats().max_pause_cycles == 0.0


def test_pause_intervals():
    pauses = [PauseRecord(1, 2, "a")]
    stats = make_stats(pauses=pauses)
    assert stats.pause_intervals() == [(1, 2)]


def test_survival_bytes_per_collection():
    stats = make_stats(copied_bytes=300, collections=3)
    assert stats.survival_bytes_per_collection == 100
    assert make_stats().survival_bytes_per_collection == 0.0


def test_late_occupancy_floor():
    stats = make_stats(post_gc_occupancy_bytes=[100, 90, 80, 50, 70, 60])
    # last half = [50, 70, 60] -> 50
    assert stats.late_occupancy_floor() == 50
    assert make_stats().late_occupancy_floor() == 0
    assert make_stats(post_gc_occupancy_bytes=[5]).late_occupancy_floor() == 0


def test_summary_row_mentions_failure():
    ok = make_stats()
    bad = make_stats(completed=False, failure="OOM")
    assert "ok" in ok.summary_row()
    assert "FAIL" in bad.summary_row()
    assert "OOM" in bad.summary_row()
