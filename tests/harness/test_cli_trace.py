"""``beltway-bench trace`` and the uniform ``--trace`` campaign flag.

The contract: every grid-executing subcommand (minheap/serve/slo/
experiment/all/report) accepts ``--trace PATH`` through one shared flag
group; the ``trace`` subcommand converts any such artefact to Perfetto
JSON; usage errors exit 2.
"""

import json

from repro.harness.cli import build_parser, main
from repro.obs.trace import validate_perfetto

SCALE = "0.05"


def test_trace_flag_is_uniform_across_grid_commands():
    parser = build_parser()
    for command in ("minheap", "serve", "slo", "experiment", "all", "report"):
        actions = {
            a.dest
            for a in parser._subparsers._group_actions[0].choices[command]._actions
        }
        assert "trace" in actions, f"{command} lost --trace"


def test_minheap_trace_roundtrip_to_perfetto(tmp_path, capsys):
    trace = tmp_path / "min.jsonl"
    code = main(["minheap", "--benchmark", "jess", "--collector", "25.25.100",
                 "--scale", SCALE, "--trace", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert f"-> {trace}" in out

    target = tmp_path / "min.perfetto.json"
    assert main(["trace", str(trace), "-o", str(target)]) == 0
    out = capsys.readouterr().out
    assert "spans from" in out
    doc = json.loads(target.read_text())
    assert validate_perfetto(doc) > 0


def test_trace_subcommand_missing_artefact_exits_2(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_trace_subcommand_empty_artefact_exits_2(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 2
    assert "no telemetry events" in capsys.readouterr().err


def test_trace_subcommand_default_output_name(tmp_path, capsys, monkeypatch):
    trace = tmp_path / "campaign.jsonl"
    code = main(["minheap", "--benchmark", "jess", "--collector", "25.25.100",
                 "--scale", SCALE, "--trace", str(trace)])
    assert code == 0
    capsys.readouterr()
    monkeypatch.chdir(tmp_path)
    assert main(["trace", str(trace)]) == 0
    assert "campaign.perfetto.json" in capsys.readouterr().out
    assert (tmp_path / "campaign.perfetto.json").exists()
