"""Tests for the markdown report generator and its CLI command."""

from pathlib import Path

from repro.harness.cli import main
from repro.harness.experiments import ExperimentResult
from repro.harness.report import run_all, to_markdown, write_report


def test_to_markdown_structure():
    results = {
        "figA": ExperimentResult("figA", "SERIES A", checks={"a": True}),
        "figB": ExperimentResult("figB", "SERIES B", checks={"b": False}),
    }
    doc = to_markdown(results)
    assert doc.startswith("# Beltway reproduction report")
    assert "**1/2 experiments pass all shape checks.**" in doc
    assert "## figA" in doc and "SERIES A" in doc
    assert "- [x] a" in doc
    assert "- [ ] b" in doc


def test_run_all_filters_names():
    results = run_all(names=["figure23"])
    assert list(results) == ["figure23"]
    assert results["figure23"].all_checks_pass


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    results = write_report(path, names=["figure23"])
    assert path.exists()
    text = path.read_text()
    assert "figure23" in text
    assert "report generated in" in text
    assert results["figure23"].all_checks_pass


def test_cli_report(tmp_path, capsys):
    out = tmp_path / "r.md"
    code = main(["report", "--only", "figure23", "--output", str(out)])
    assert code == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out
