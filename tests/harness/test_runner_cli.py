"""Tests for the runner, min-heap search, experiments machinery and CLI."""

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.experiments import ExperimentResult, figure23
from repro.harness.runner import FRAME_BYTES, find_min_heap, run_benchmark


def test_run_benchmark_success():
    stats = run_benchmark("jess", "25.25.100", 48 * 1024, scale=0.2)
    assert stats.completed
    assert stats.benchmark == "jess"
    assert stats.collector == "25.25.100"


def test_run_benchmark_failure_reported_not_raised():
    stats = run_benchmark("jess", "gctk:Appel", 2 * 1024, scale=0.2)
    assert not stats.completed
    assert stats.failure


def test_find_min_heap_is_minimal():
    minimum = find_min_heap("jess", "gctk:Appel", scale=0.2)
    assert minimum % FRAME_BYTES == 0
    assert run_benchmark("jess", "gctk:Appel", minimum, scale=0.2).completed
    below = minimum - FRAME_BYTES
    assert not run_benchmark("jess", "gctk:Appel", below, scale=0.2).completed


def test_experiment_result_checks():
    result = ExperimentResult("x", "text", checks={"a": True, "b": False})
    assert not result.all_checks_pass
    assert result.failed_checks() == ["b"]
    assert ExperimentResult("y", "t", checks={"a": True}).all_checks_pass


def test_figure23_structural():
    result = figure23()
    assert result.all_checks_pass, result.failed_checks()
    assert "BSS" in result.text
    assert "belt 0" in result.text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jess" in out
    assert "25.25.100" in out
    assert "figure9" in out


def test_cli_run(capsys):
    code = main(
        ["run", "--benchmark", "jess", "--collector", "25.25.100",
         "--heap-kb", "48", "--scale", "0.1"]
    )
    assert code == 0
    assert "jess" in capsys.readouterr().out


def test_cli_run_failure_exit_code(capsys):
    code = main(
        ["run", "--benchmark", "jess", "--collector", "gctk:Appel",
         "--heap-kb", "2", "--scale", "0.1"]
    )
    assert code == 1


def test_cli_minheap(capsys):
    code = main(["minheap", "--benchmark", "jess", "--scale", "0.1"])
    assert code == 0
    assert "min heap" in capsys.readouterr().out


def test_cli_experiment_figure23(capsys):
    code = main(["experiment", "figure23"])
    assert code == 0
    assert "shape checks PASS" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "figure99"])
