"""Tests for the runner, min-heap search, experiments machinery and CLI."""

import json

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.experiments import ExperimentResult, figure23
from repro.harness.runner import (
    FRAME_BYTES,
    RunOptions,
    RunReport,
    find_min_heap,
    run,
    run_benchmark,
    run_benchmark_profiled,
)


def _stats(benchmark, collector, heap_bytes, scale):
    return run(
        benchmark, collector, heap_bytes, options=RunOptions(scale=scale)
    ).stats


def test_run_success():
    report = run("jess", "25.25.100", 48 * 1024, options=RunOptions(scale=0.2))
    assert isinstance(report, RunReport)
    assert report.completed
    assert report.stats.benchmark == "jess"
    assert report.stats.collector == "25.25.100"
    # No telemetry requested -> no telemetry artefacts.
    assert report.phases is None
    assert report.counters is None
    assert report.events is None
    assert report.trace_events_written == 0


def test_run_failure_reported_not_raised():
    report = run("jess", "gctk:Appel", 2 * 1024, options=RunOptions(scale=0.2))
    assert not report.completed
    assert report.stats.failure


def test_run_default_options():
    assert run("jess", "25.25.100", 48 * 1024).completed


def test_run_profile_phases():
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(scale=0.1, profile=True),
    )
    phases = report.phases
    assert set(phases) == {"mutator", "barrier", "collect", "verify", "total"}
    assert phases["total"] > 0
    assert phases["collect"] > 0
    assert phases["mutator"] + phases["barrier"] + phases["collect"] <= (
        phases["total"] + 1e-9
    )


def test_run_trace_writes_jsonl(tmp_path):
    out = tmp_path / "trace.jsonl"
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(scale=0.1, trace=str(out)),
    )
    assert report.completed
    lines = [json.loads(l) for l in out.read_text().splitlines() if l.strip()]
    assert len(lines) == report.trace_events_written > 0
    kinds = {line["kind"] for line in lines}
    assert {"run.start", "gc.start", "gc.end", "heap.snapshot",
            "phase", "run.end"} <= kinds


def test_run_ring_buffer_and_counters():
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(scale=0.1, ring_buffer=0, counters=True),
    )
    assert report.events
    assert any(e.kind == "gc.end" for e in report.events)
    assert report.counters["run_completed"] == 1.0
    assert report.counters["gc_collections_total"] == float(
        report.stats.collections
    )


def test_deprecated_shims_warn_and_match():
    with pytest.warns(DeprecationWarning):
        stats = run_benchmark("jess", "25.25.100", 48 * 1024, scale=0.2)
    assert stats.completed
    assert stats.total_cycles == _stats(
        "jess", "25.25.100", 48 * 1024, 0.2
    ).total_cycles
    with pytest.warns(DeprecationWarning):
        stats, phases = run_benchmark_profiled(
            "jess", "25.25.100", 48 * 1024, scale=0.1
        )
    assert stats.completed
    assert phases["total"] > 0


def test_find_min_heap_is_minimal():
    minimum = find_min_heap("jess", "gctk:Appel", scale=0.2)
    assert minimum % FRAME_BYTES == 0
    assert _stats("jess", "gctk:Appel", minimum, 0.2).completed
    below = minimum - FRAME_BYTES
    assert not _stats("jess", "gctk:Appel", below, 0.2).completed


def test_experiment_result_checks():
    result = ExperimentResult("x", "text", checks={"a": True, "b": False})
    assert not result.all_checks_pass
    assert result.failed_checks() == ["b"]
    assert ExperimentResult("y", "t", checks={"a": True}).all_checks_pass


def test_figure23_structural():
    result = figure23()
    assert result.all_checks_pass, result.failed_checks()
    assert "BSS" in result.text
    assert "belt 0" in result.text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jess" in out
    assert "25.25.100" in out
    assert "figure9" in out


def test_cli_run(capsys):
    code = main(
        ["run", "--benchmark", "jess", "--collector", "25.25.100",
         "--heap-kb", "48", "--scale", "0.1"]
    )
    assert code == 0
    assert "jess" in capsys.readouterr().out


def test_cli_run_failure_exit_code(capsys):
    code = main(
        ["run", "--benchmark", "jess", "--collector", "gctk:Appel",
         "--heap-kb", "2", "--scale", "0.1"]
    )
    assert code == 1


def test_cli_run_trace(tmp_path, capsys):
    out = tmp_path / "cli-trace.jsonl"
    code = main(
        ["run", "--benchmark", "jess", "--collector", "25.25.100",
         "--heap-kb", "48", "--scale", "0.1", "--trace", str(out)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "trace:" in printed
    lines = [json.loads(l) for l in out.read_text().splitlines() if l.strip()]
    assert any(line["kind"] == "gc.end" for line in lines)


def test_cli_run_profile(capsys):
    code = main(
        ["run", "--benchmark", "jess", "--collector", "25.25.100",
         "--heap-kb", "48", "--scale", "0.1", "--profile"]
    )
    assert code == 0
    assert "phase breakdown" in capsys.readouterr().out


def test_cli_minheap(capsys):
    code = main(["minheap", "--benchmark", "jess", "--scale", "0.1"])
    assert code == 0
    assert "min heap" in capsys.readouterr().out


def test_cli_experiment_figure23(capsys):
    code = main(["experiment", "figure23"])
    assert code == 0
    assert "shape checks PASS" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "figure99"])
