"""``beltway-bench profile``: report artefacts and exit-code contract."""

import json

import pytest

from repro.harness.cli import main


def test_profile_writes_markdown_and_json(tmp_path, capsys):
    md = tmp_path / "jess.md"
    js = tmp_path / "jess.json"
    rc = main([
        "profile", "--benchmark", "jess", "--heap-kb", "48",
        "--scale", "0.2", "--output", str(md), "--json", str(js),
    ])
    assert rc == 0
    text = md.read_text()
    assert "# GC profile: jess / 25.25.100" in text
    assert "## Pause analytics" in text
    report = json.loads(js.read_text())
    assert report["benchmark"] == "jess"
    assert report["completed"] is True
    assert report["pauses"]["count"] == len(report["attribution"])
    out = capsys.readouterr().out
    assert str(md) in out and str(js) in out


def test_profile_to_stdout(capsys):
    rc = main([
        "profile", "--benchmark", "jess", "--heap-kb", "48", "--scale", "0.1",
    ])
    assert rc == 0
    assert "# GC profile: jess / 25.25.100" in capsys.readouterr().out


def test_profile_unwritable_output_is_exit_1(tmp_path, capsys):
    missing_dir = tmp_path / "no" / "such" / "dir" / "out.md"
    rc = main([
        "profile", "--benchmark", "jess", "--heap-kb", "48",
        "--scale", "0.1", "--output", str(missing_dir),
    ])
    assert rc == 1
    assert "cannot write profile report" in capsys.readouterr().err


def test_profile_unwritable_json_is_exit_1(tmp_path, capsys):
    md = tmp_path / "ok.md"
    rc = main([
        "profile", "--benchmark", "jess", "--heap-kb", "48",
        "--scale", "0.1", "--output", str(md),
        "--json", str(tmp_path / "no" / "such.json"),
    ])
    assert rc == 1


def test_profile_requires_heap(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["profile", "--benchmark", "jess"])
    assert exc.value.code == 2  # argparse usage error
