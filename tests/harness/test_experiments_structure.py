"""Structural tests of the experiment harness at reduced scale.

Full experiment validation happens in ``benchmarks/``; these tests check
the *plumbing* quickly — result shapes, caching, series alignment — with
short workloads and tiny grids.
"""

import pytest

from repro.analysis.sweep import heap_multipliers
from repro.harness import experiments as E

SCALE = 0.2
POINTS = 3


@pytest.fixture(autouse=True)
def fresh_caches():
    E.clear_caches()
    yield
    E.clear_caches()


def test_min_heap_cached():
    first = E.min_heap("jess", SCALE)
    assert ("jess", SCALE) in E._min_heap_cache
    assert E.min_heap("jess", SCALE) == first


def test_cached_sweep_reused():
    sweep1 = E.cached_sweep("jess", "gctk:Appel", POINTS, SCALE)
    sweep2 = E.cached_sweep("jess", "gctk:Appel", POINTS, SCALE)
    assert sweep1 is sweep2
    assert len(sweep1.runs) == POINTS


def test_geomean_figure_alignment():
    multipliers, series = E._geomean_figure(
        ["gctk:Appel", "25.25.100"], "total_cycles", ["jess"], POINTS, SCALE
    )
    assert multipliers == heap_multipliers(POINTS)
    for curve in series.values():
        assert len(curve) == POINTS
    finite = [
        v for curve in series.values() for v in curve if v is not None
    ]
    assert finite and min(finite) == pytest.approx(1.0)


def test_figure4_structure():
    result = E.figure4(scale=SCALE)
    assert set(result.data) == {"25.25.100", "Appel", "BOF.25", "gctk:Appel"}
    for entry in result.data.values():
        assert entry["fast"] > 0
    assert "barrier" in result.text


def test_figure1_structure():
    result = E.figure1(points=POINTS, scale=SCALE)
    assert set(result.data["gc_fraction"]) == set(
        ("jess", "raytrace", "db", "javac", "jack", "pseudojbb")
    )
    for curve in result.data["gc_fraction"].values():
        assert len(curve) == POINTS


def test_paired_means_skip_gaps():
    a = [None, 2.0, 4.0]
    b = [1.0, 1.0, 1.0]
    mean_a, mean_b = E._paired_means(a, b, range(3))
    assert mean_a == pytest.approx((2.0 * 4.0) ** 0.5)
    assert mean_b == 1.0
    assert E._paired_means([None], [1.0], [0]) == (None, None)


def test_experiment_registry_complete():
    expected = {
        "table1",
        "figure1",
        "figure23",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure11",
        "responsiveness",
        "slo",
    }
    assert set(E.ALL_EXPERIMENTS) == expected
    for fn in E.ALL_EXPERIMENTS.values():
        assert callable(fn)
