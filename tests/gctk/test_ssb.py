"""Unit tests for the sequential store buffer and boundary barrier."""

import pytest

from repro.gctk.ssb import BoundaryBarrier, SequentialStoreBuffer
from repro.heap import AddressSpace


@pytest.fixture
def env():
    space = AddressSpace(heap_frames=8, frame_shift=8)
    nursery = space.acquire_frame("nursery")
    mature = space.acquire_frame("mature")
    for frame in (nursery, mature):
        space.set_order(frame, 1)
        frame.used_words = frame.size_words
    ssb = SequentialStoreBuffer()
    barrier = BoundaryBarrier(space, ssb)
    barrier.nursery_frames.add(nursery.index)
    return space, nursery, mature, ssb, barrier


def addr_in(space, frame, offset=0):
    return space.frame_base(frame) + offset * 4


def test_old_to_young_recorded(env):
    space, nursery, mature, ssb, barrier = env
    src = addr_in(space, mature)
    tgt = addr_in(space, nursery, 4)
    barrier.write_ref(src, src + 8, tgt)
    assert list(ssb.slots) == [src + 8]
    assert barrier.stats.slow_path == 1
    assert space.load(src + 8) == tgt


def test_young_to_old_not_recorded(env):
    space, nursery, mature, ssb, barrier = env
    src = addr_in(space, nursery)
    tgt = addr_in(space, mature, 4)
    barrier.write_ref(src, src + 8, tgt)
    assert len(ssb) == 0
    assert barrier.stats.fast_path == 1


def test_young_to_young_not_recorded(env):
    space, nursery, mature, ssb, barrier = env
    src = addr_in(space, nursery)
    tgt = addr_in(space, nursery, 8)
    barrier.write_ref(src, src + 8, tgt)
    assert len(ssb) == 0


def test_null_store_filtered(env):
    space, nursery, mature, ssb, barrier = env
    src = addr_in(space, mature)
    barrier.write_ref(src, src + 8, 0)
    assert barrier.stats.null_stores == 1
    assert len(ssb) == 0


def test_ssb_keeps_duplicates():
    """Unlike Beltway's hashed remsets, the SSB records every store."""
    ssb = SequentialStoreBuffer()
    ssb.append(0x100)
    ssb.append(0x100)
    assert len(ssb) == 2
    assert ssb.inserts == 2
    assert ssb.total_entries == 2


def test_ssb_clear():
    ssb = SequentialStoreBuffer()
    ssb.append(0x100)
    ssb.clear()
    assert len(ssb) == 0
    assert ssb.inserts == 1  # cumulative counter survives the clear


def test_duplicate_stores_reprocessed_at_collection(env):
    """The same slot stored twice appears twice — the collection-time cost
    the paper's remset-vs-card discussion weighs."""
    space, nursery, mature, ssb, barrier = env
    src = addr_in(space, mature)
    tgt = addr_in(space, nursery, 4)
    barrier.write_ref(src, src + 8, tgt)
    barrier.write_ref(src, src + 8, tgt)
    assert len(ssb) == 2
