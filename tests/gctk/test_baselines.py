"""Tests for the independent gctk baseline collectors."""

import pytest

from repro.errors import ConfigError, OutOfMemory
from repro.gctk import make_gctk_plan
from repro.runtime import VM, MutatorContext


def make_vm(config, frames=96):
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def churn(vm, mu, n, survive_every=0, keep=None):
    node = vm.types.by_name("node")
    keep = keep if keep is not None else []
    for i in range(n):
        h = mu.alloc(node)
        if survive_every and i % survive_every == 0:
            keep.append(h)
        else:
            h.drop()
    return keep


def test_factory_names():
    vm = VM(heap_bytes=64 * 256, collector="gctk:SS")
    assert vm.collector_name == "gctk:SS"
    vm = VM(heap_bytes=64 * 256, collector="gctk:Appel")
    assert vm.collector_name == "gctk:Appel"
    vm = VM(heap_bytes=64 * 256, collector="gctk:Fixed.25")
    assert vm.collector_name == "gctk:Fixed.25"


def test_factory_rejects_unknown():
    with pytest.raises(ConfigError):
        VM(heap_bytes=64 * 256, collector="gctk:banana")


@pytest.mark.parametrize("config", ["gctk:SS", "gctk:Appel", "gctk:Fixed.25"])
def test_reclamation(config):
    vm, mu = make_vm(config, frames=48)
    node = vm.types.by_name("node")
    heap_words = vm.space.heap_frames * vm.space.frame_words
    total = 0
    for _ in range(5000):
        mu.alloc(node).drop()
        total += node.size_words()
    assert total > 5 * heap_words
    assert vm.plan.collections


@pytest.mark.parametrize("config", ["gctk:SS", "gctk:Appel", "gctk:Fixed.25"])
def test_survivors_intact(config):
    vm, mu = make_vm(config, frames=192)
    node = vm.types.by_name("node")
    head = mu.handle()
    for i in range(300):
        n = mu.alloc(node)
        mu.write_int(n, 0, i)
        mu.write(n, 0, head)
        head.addr = n.addr
        n.drop()
        mu.alloc(node).drop()
        mu.alloc(node).drop()
    expect = 299
    cursor = mu.copy_handle(head)
    while not cursor.is_null:
        assert mu.read_int(cursor, 0) == expect
        expect -= 1
        nxt = mu.read(cursor, 0)
        cursor.drop()
        cursor = nxt
    assert expect == -1
    vm.plan.verify()


def test_appel_minor_then_major():
    vm, mu = make_vm("gctk:Appel", frames=64)
    node = vm.types.by_name("node")
    keep = []
    for i in range(8000):
        h = mu.alloc(node)
        if i % 5 == 0:
            keep.append(h)
            if len(keep) > 100:  # rotate: promoted objects later die,
                keep.pop(0).drop()  # filling the mature space with garbage
        else:
            h.drop()
    reasons = [r.reason for r in vm.plan.collections]
    assert "minor" in reasons
    assert "major" in reasons
    # majors are rarer than minors for a mostly-dying workload
    assert reasons.count("minor") > reasons.count("major")


def test_appel_nursery_shrinks_as_mature_grows():
    vm, mu = make_vm("gctk:Appel", frames=64)
    plan = vm.plan
    cap0 = plan.nursery_capacity_frames()
    churn(vm, mu, 1500, survive_every=8)
    if plan.mature.num_frames:  # after some promotion
        assert plan.nursery_capacity_frames() < cap0


def test_fixed_nursery_is_fixed():
    vm, mu = make_vm("gctk:Fixed.25", frames=64)
    plan = vm.plan
    assert plan.fixed_frames == max(1, (32 * 25) // 100)
    assert plan.nursery_capacity_frames() == plan.fixed_frames
    churn(vm, mu, 2000, survive_every=40)
    assert plan.nursery_capacity_frames() == plan.fixed_frames


def test_fixed_nursery_fails_in_tight_heaps():
    """Fig. 6: fixed-nursery collectors fail outright at small heap sizes
    where Appel still runs."""
    live_nodes = 120

    def attempt(config, frames):
        vm, mu = make_vm(config, frames=frames)
        try:
            churn(vm, mu, 3000, survive_every=3000 // live_nodes)
            return True
        except OutOfMemory:
            return False

    appel_min = next(f for f in range(16, 257, 4) if attempt("gctk:Appel", f))
    fixed_min = next(f for f in range(16, 257, 4) if attempt("gctk:Fixed.50", f))
    assert fixed_min > appel_min


def test_boot_rescan_counted():
    vm, mu = make_vm("gctk:Appel", frames=64)
    churn(vm, mu, 1200, survive_every=10)
    assert vm.plan.collections
    assert all(r.boot_slots_scanned > 0 for r in vm.plan.collections)


def test_beltway_barrier_skips_boot_rescan():
    vm, mu = make_vm("Appel", frames=64)
    churn(vm, mu, 1200, survive_every=10)
    assert vm.plan.collections
    assert all(r.boot_slots_scanned == 0 for r in vm.plan.collections)


def test_boundary_barrier_records_old_to_young():
    vm, mu = make_vm("gctk:Appel", frames=96)
    node = vm.types.by_name("node")
    old = mu.alloc(node)
    # age `old` into the mature space
    churn(vm, mu, 1500)
    assert vm.plan.collections, "nursery never collected"
    before = vm.plan.ssb.inserts
    young = mu.alloc(node)
    mu.write(old, 0, young)  # mature -> nursery: must be remembered
    assert vm.plan.ssb.inserts == before + 1
    mu.write(young, 0, old)  # nursery -> mature: not remembered
    assert vm.plan.ssb.inserts == before + 1


def test_beltway_100_100_tracks_gctk_appel():
    """Fig. 5: Beltway 100.100 behaves like the Appel baseline — same
    collection count on an identical workload (barrier details differ)."""

    def run(config):
        vm, mu = make_vm(config, frames=96)
        churn(vm, mu, 5000, survive_every=20)
        return len(vm.plan.collections)

    beltway = run("100.100")
    gctk = run("gctk:Appel")
    assert abs(beltway - gctk) <= max(2, gctk // 3)


def test_semispace_equivalence_bss():
    def run(config):
        vm, mu = make_vm(config, frames=64)
        churn(vm, mu, 4000, survive_every=40)
        return len(vm.plan.collections)

    assert abs(run("BSS") - run("gctk:SS")) <= 2
