"""Additional gctk mechanics: space accounting, SSB lifecycle across
collections, semi-space budget discipline."""

import pytest

from repro.errors import OutOfMemory
from repro.runtime import VM, MutatorContext


def make_vm(config, frames=64):
    vm = VM(
        heap_bytes=frames * 256,
        collector=config,
        debug_verify=True,
        boot_ballast_slots=0,
    )
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def churn(vm, mu, n):
    node = vm.types.by_name("node")
    for _ in range(n):
        mu.alloc(node).drop()


def test_semispace_never_exceeds_half_before_collection():
    vm, mu = make_vm("gctk:SS", frames=64)
    node = vm.types.by_name("node")
    for _ in range(3000):
        mu.alloc(node).drop()
        assert vm.plan.region.num_frames <= 32


def test_ssb_cleared_by_minor_collection():
    vm, mu = make_vm("gctk:Appel")
    node = vm.types.by_name("node")
    old = mu.alloc(node)
    churn(vm, mu, 1200)  # promote `old`
    assert vm.plan.collections
    young = mu.alloc(node)
    mu.write(old, 0, young)
    assert len(vm.plan.ssb) >= 1
    vm.plan.minor_collect()
    assert len(vm.plan.ssb) == 0
    # the pointer survived the clear: `young`'s new location is reachable
    assert mu.read_addr(old, 0) == young.addr


def test_nursery_frames_tracked_in_barrier():
    vm, mu = make_vm("gctk:Appel")
    mu.alloc_named("node")
    plan = vm.plan
    nursery_indices = {frame.index for frame in plan.nursery.frames}
    assert plan.barrier.nursery_frames == nursery_indices
    plan.minor_collect()
    assert plan.barrier.nursery_frames == set()


def test_major_compacts_mature_space():
    vm, mu = make_vm("gctk:Appel")
    node = vm.types.by_name("node")
    keep = []
    for i in range(3000):
        h = mu.alloc(node)
        if i % 4 == 0:
            keep.append(h)
            if len(keep) > 50:
                keep.pop(0).drop()
        else:
            h.drop()
    before = vm.plan.mature.allocated_words
    vm.plan.major_collect()
    after = vm.plan.mature.allocated_words
    assert after <= before
    # all survivors intact
    for h in keep:
        assert not h.is_null
    vm.plan.verify()


def test_heap_frames_conserved_across_collections():
    """Frames acquired == frames in use + free pool, always."""
    vm, mu = make_vm("gctk:Appel")
    node = vm.types.by_name("node")
    space = vm.space
    for i in range(2500):
        mu.alloc(node).drop()
        assert space.heap_frames_in_use <= space.heap_frames
        assert space.heap_frames_free() >= 0


def test_fixed_nursery_never_grows_past_reservation():
    vm, mu = make_vm("gctk:Fixed.25")
    plan = vm.plan
    node = vm.types.by_name("node")
    for _ in range(2500):
        mu.alloc(node).drop()
        assert plan.nursery.num_frames <= plan.fixed_frames


def test_gctk_out_of_memory_message_names_collector():
    vm, mu = make_vm("gctk:SS", frames=16)
    node = vm.types.by_name("node")
    keep = []
    with pytest.raises(OutOfMemory) as info:
        for _ in range(2000):
            keep.append(mu.alloc(node))
    assert "gctk:SS" in str(info.value) or "heap budget" in str(info.value)
