"""Unit tests for bump allocation over frames."""

import pytest

from repro.errors import OutOfMemory
from repro.heap import AddressSpace, BumpRegion


@pytest.fixture
def space():
    return AddressSpace(heap_frames=8, frame_shift=8)  # 64-word frames


def grown(space, region):
    region.add_frame(space.acquire_frame("test"))
    return region


def test_alloc_bumps_sequentially(space):
    region = grown(space, BumpRegion(space))
    a = region.alloc(4)
    b = region.alloc(6)
    assert b == a + 16
    assert region.allocated_words == 10


def test_alloc_without_frame_returns_zero(space):
    region = BumpRegion(space)
    assert region.alloc(4) == 0


def test_alloc_fills_frame_exactly(space):
    region = grown(space, BumpRegion(space))
    assert region.alloc(64) != 0
    assert region.alloc(1) == 0  # full
    assert region.frame_tail_words() == 0


def test_tail_waste_accounted(space):
    region = grown(space, BumpRegion(space))
    region.alloc(60)
    assert region.alloc(8) == 0  # does not fit in the 4-word tail
    grown(space, region)
    assert region.wasted_words == 4
    assert region.occupancy_words == 64
    new = region.alloc(8)
    assert new != 0


def test_wasted_tail_marks_frame_fully_used(space):
    region = grown(space, BumpRegion(space))
    region.alloc(60)
    first = region.frames[0]
    grown(space, region)
    assert first.used_words == 64  # tail counted so linear walks stop safely


def test_object_larger_than_frame_raises(space):
    region = grown(space, BumpRegion(space))
    with pytest.raises(OutOfMemory):
        region.alloc(65)


def test_used_words_tracks_high_water(space):
    region = grown(space, BumpRegion(space))
    region.alloc(10)
    assert region.frames[-1].used_words == 10
    region.alloc(5)
    assert region.frames[-1].used_words == 15


def test_reset_forgets_everything(space):
    region = grown(space, BumpRegion(space))
    region.alloc(10)
    region.reset()
    assert region.num_frames == 0
    assert region.allocated_words == 0
    assert region.alloc(1) == 0


def test_multi_frame_growth(space):
    region = BumpRegion(space)
    for _ in range(3):
        grown(space, region)
        region.alloc(64)
    assert region.num_frames == 3
    assert region.allocated_words == 192
    assert region.occupancy_words == 192
