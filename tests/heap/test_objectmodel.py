"""Unit tests for the object model: headers, types, field access."""

import pytest

from repro.errors import HeapCorruption
from repro.heap import (
    AddressSpace,
    BootImage,
    HEADER_WORDS,
    ObjectModel,
    TypeKind,
    TypeRegistry,
    WORD_BYTES,
)


@pytest.fixture
def env():
    space = AddressSpace(heap_frames=8, frame_shift=10)
    types = TypeRegistry()
    model = ObjectModel(space, types)
    boot = BootImage(space, types, model)
    return space, types, model, boot


def _alloc(space, model, desc, length=0):
    """Raw test allocation into a dedicated frame (no collector involved)."""
    frame = space.acquire_frame("test")
    frame.collect_order = 1
    space.set_order(frame, 1)
    addr = space.frame_base(frame)
    size = desc.size_words(length)
    frame.used_words = size
    model.init_header(addr, desc, length)
    space.store(addr + WORD_BYTES, desc.addr)  # type slot, raw for tests
    return addr


def test_scalar_type_sizes(env):
    _, _, _, boot = env
    node = boot.define_type("node", nrefs=2, nscalars=3)
    assert node.size_words() == HEADER_WORDS + 5
    assert node.size_bytes() == (HEADER_WORDS + 5) * WORD_BYTES
    assert node.ref_count() == 2


def test_array_type_sizes(env):
    _, _, _, boot = env
    arr = boot.define_ref_array("arr")
    buf = boot.define_scalar_array("buf")
    assert arr.size_words(10) == HEADER_WORDS + 10
    assert arr.ref_count(10) == 10
    assert buf.size_words(6) == HEADER_WORDS + 6
    assert buf.ref_count(6) == 0


def test_negative_field_counts_rejected(env):
    _, types, _, _ = env
    with pytest.raises(HeapCorruption):
        types.define("bad", nrefs=-1)


def test_duplicate_type_name_rejected(env):
    _, _, _, boot = env
    boot.define_type("dup")
    with pytest.raises(HeapCorruption):
        boot.define_type("dup")


def test_header_roundtrip(env):
    space, _, model, boot = env
    node = boot.define_type("node", nrefs=1, nscalars=1)
    obj = _alloc(space, model, node)
    assert model.status(obj) == 0
    assert not model.is_forwarded(obj)
    assert model.type_of(obj) is node
    assert model.length_of(obj) == 0
    assert model.size_words(obj) == node.size_words()


def test_forwarding(env):
    space, _, model, boot = env
    node = boot.define_type("node")
    obj = _alloc(space, model, node)
    target = _alloc(space, model, node)
    model.set_forwarding(obj, target)
    assert model.is_forwarded(obj)
    assert model.forwarding_address(obj) == target
    with pytest.raises(HeapCorruption):
        model.forwarding_address(target)


def test_ref_and_scalar_fields(env):
    space, _, model, boot = env
    node = boot.define_type("node", nrefs=2, nscalars=2)
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_ref_raw(a, 0, b)
    model.set_scalar(a, 1, 12345)
    assert model.get_ref(a, 0) == b
    assert model.get_ref(a, 1) == 0
    assert model.get_scalar(a, 1) == 12345
    assert model.get_scalar(a, 0) == 0


def test_ref_array_elements(env):
    space, _, model, boot = env
    arr = boot.define_ref_array("arr")
    node = boot.define_type("node")
    a = _alloc(space, model, arr, length=4)
    n = _alloc(space, model, node)
    model.set_ref_raw(a, 3, n)
    assert model.get_ref(a, 3) == n
    assert model.length_of(a) == 4


def test_iter_ref_slots_includes_type_slot(env):
    space, _, model, boot = env
    node = boot.define_type("node", nrefs=2, nscalars=1)
    obj = _alloc(space, model, node)
    slots = list(model.iter_ref_slot_addrs(obj))
    assert slots[0] == obj + WORD_BYTES  # type slot first
    assert len(slots) == 3  # type slot + 2 ref fields
    assert space.load(slots[0]) == node.addr


def test_iter_ref_slots_ref_array(env):
    space, _, model, boot = env
    arr = boot.define_ref_array("arr")
    obj = _alloc(space, model, arr, length=5)
    assert len(list(model.iter_ref_slot_addrs(obj))) == 6


def test_scalar_array_has_only_type_ref(env):
    space, _, model, boot = env
    buf = boot.define_scalar_array("buf")
    obj = _alloc(space, model, buf, length=8)
    assert len(list(model.iter_ref_slot_addrs(obj))) == 1


def test_copy_words(env):
    space, _, model, boot = env
    node = boot.define_type("node", nrefs=1, nscalars=2)
    src = _alloc(space, model, node)
    model.set_scalar(src, 0, 7)
    model.set_scalar(src, 1, 8)
    dst_frame = space.acquire_frame("test")
    space.set_order(dst_frame, 2)
    dst = space.frame_base(dst_frame)
    dst_frame.used_words = node.size_words()
    model.copy_words(src, dst, node.size_words())
    assert model.type_of(dst) is node
    assert model.get_scalar(dst, 0) == 7
    assert model.get_scalar(dst, 1) == 8


def test_type_of_garbage_raises(env):
    space, _, model, boot = env
    node = boot.define_type("node")
    obj = _alloc(space, model, node)
    space.store(obj + WORD_BYTES, 12340)  # clobber type slot
    with pytest.raises(HeapCorruption):
        model.type_of(obj)


def test_type_registry_lookup(env):
    _, types, _, boot = env
    node = boot.define_type("node", nrefs=1)
    assert types.by_name("node") is node
    assert types.by_addr(node.addr) is node
    assert node in list(types)
